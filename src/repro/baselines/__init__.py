"""Baseline cache architectures the paper compares against.

* :mod:`repro.baselines.original` — the unmodified set-associative
  cache (all tags compared, all ways read on loads).
* :mod:`repro.baselines.panwar` — Panwar & Rennels [4]: no tag access
  for intra-cache-line sequential instruction flow (Figure 6's
  "approach [4]", also the I-cache baseline of Figure 8).
* :mod:`repro.baselines.set_buffer` — Yang et al. [14]: lightweight
  set buffer for data caches (Figure 4/5's "approach [14]").
* :mod:`repro.baselines.ma_links` — Ma et al. [11]: per-line
  sequential/branch way links (the closest prior art; costs link
  storage + an invalidation mechanism).
* :mod:`repro.baselines.way_prediction` — Inoue et al. [9]: MRU way
  prediction (related work; incurs mispredict cycles).
* :mod:`repro.baselines.filter_cache` — Kin et al. [6]: small L0
  filter cache (related work; incurs L0-miss cycles).
* :mod:`repro.baselines.two_phase` — Hasegawa et al. [8]: sequential
  tag-then-way access (related work; one extra cycle per access).
"""

from repro.baselines.filter_cache import FilterCacheDCache, FilterCacheICache
from repro.baselines.ma_links import MaLinksICache
from repro.baselines.original import OriginalDCache, OriginalICache
from repro.baselines.panwar import PanwarICache
from repro.baselines.set_buffer import SetBufferDCache
from repro.baselines.two_phase import TwoPhaseDCache, TwoPhaseICache
from repro.baselines.way_prediction import (
    WayPredictionDCache,
    WayPredictionICache,
)

__all__ = [
    "FilterCacheDCache",
    "FilterCacheICache",
    "MaLinksICache",
    "OriginalDCache",
    "OriginalICache",
    "PanwarICache",
    "SetBufferDCache",
    "TwoPhaseDCache",
    "TwoPhaseICache",
    "WayPredictionDCache",
    "WayPredictionICache",
]
