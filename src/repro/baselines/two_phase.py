"""Hasegawa et al. [8]: the two-phase (phased) cache.

Phase 1 compares all tags; phase 2 accesses only the hitting data way.
This eliminates wasted way reads entirely but serialises tag and data
access, costing a cycle of latency on every access — the performance
loss the paper's MAB avoids while reaching similar way-access counts.

The cache sees every access exactly once whatever the phase outcome,
so the fast path replays the whole pre-split address stream through
:meth:`SetAssociativeCache.access_fast_batch` and derives the counters
from the totals (every access costs all tags, one way and one cycle)
— a pure function of the columns and packed results
(:meth:`replay_counters`), shareable across architectures by the
replay engine.  :meth:`process_reference` keeps the per-access
object-API loop as the executable specification.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.replay.columns import SharedPass, columns_for_stream
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace


class _TwoPhaseCache:
    replay_batchable = True

    def __init__(self, cache_config: CacheConfig, policy: str):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )

    # -- fast engine ----------------------------------------------------

    def replay_counters(self, cols, shared: SharedPass) -> AccessCounters:
        """Counters from the shared packed results (pure derivation)."""
        counters = AccessCounters()
        n = cols.n
        hits = shared.hit_count
        counters.accesses = n
        counters.cache_hits = hits
        counters.cache_misses = n - hits
        counters.tag_accesses = self.cache.ways * n  # phase 1, every access
        counters.way_accesses = n                # hit way or refill write
        counters.extra_cycles = n                # serialised phases
        cols.apply_load_store(counters)
        return counters

    def process(self, stream) -> AccessCounters:
        cols = columns_for_stream(stream)
        cache = self.cache
        tags, sets = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )
        packed = cache.access_fast_batch(tags, sets, cols.writes())
        return self.replay_counters(cols, SharedPass(packed))

    # -- executable specification ---------------------------------------

    def _access(self, counters: AccessCounters, addr: int,
                write: bool = False) -> None:
        cfg = self.cache_config
        result = self.cache.access(addr, write=write)
        counters.tag_accesses += cfg.ways  # phase 1
        counters.extra_cycles += 1         # serialised phases
        if result.hit:
            counters.cache_hits += 1
            counters.way_accesses += 1     # phase 2: the hit way only
        else:
            counters.cache_misses += 1
            counters.way_accesses += 1     # refill write


class TwoPhaseDCache(_TwoPhaseCache):
    """Phased D-cache."""

    name = "two-phase"

    def __init__(self, cache_config: CacheConfig = FRV_DCACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            self._access(counters, (base + disp) & 0xFFFFFFFF, is_store)
        return counters


class TwoPhaseICache(_TwoPhaseCache):
    """Phased I-cache."""

    name = "two-phase"

    def __init__(self, cache_config: CacheConfig = FRV_ICACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            self._access(counters, addr)
        return counters
