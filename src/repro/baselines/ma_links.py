"""Ma, Zhang & Asanovic [11]: link-based way memoization.

The closest prior art to the paper's MAB: each I-cache line is
augmented with a *sequential link* (valid bit + way of the line
holding the next sequential address) and a *branch link* (valid bit +
way of the last taken-branch target from this line).  A valid link
skips the tag search entirely; invalid links fall back to a full
access and are learned.

The paper's two criticisms, both visible in this model:

* the links add storage to every cache line and their bits are read
  on every access (``aux_accesses`` charges that energy);
* a replacement must invalidate every link *pointing at* the evicted
  line, which needs extra machinery — modelled here with an exact
  reverse index standing in for their invalidation hardware (this is
  generous to [11]: sloppier hardware would lose more links).

Links live at line granularity (one sequential + one branch link per
line); lines containing several distinct taken branches thrash their
branch link, which is the structural disadvantage relative to the
MAB's decoupled address table.

:meth:`MaLinksICache.process` is the fast engine: vectorized address
splitting, packed-int :meth:`SetAssociativeCache.access_fast` calls,
and a single-scan :meth:`SetAssociativeCache.hit_confirm` on the
link-hit path (replacing the historical ``probe()`` + ``access()``
double scan) over the same ``_links``/``_reverse`` dictionaries;
:meth:`process_reference` keeps the object-API loop as the executable
specification.

:meth:`MaLinksICache.replay_counters` goes further for the grouped
replay engine: the cache sees exactly one access per fetch on every
path (a confirmed link hit is state-equivalent to a hitting access),
so link validity can be *derived* from the shared batch results
without replaying the link tables at all.  A link consult at access
``i`` hits iff the most recent prior consult ``m`` with the same
(source line, kind) key targeted the same line and neither that
target line nor the source line was evicted strictly between ``m``
and ``i`` — the previous-consult structure falls out of a stable sort
by key (the way-prediction trick), and the eviction windows out of a
``searchsorted`` over the shared pass's packed eviction events.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.replay.columns import FetchColumns, SharedPass
from repro.sim.fetch import FetchKind, FetchStream

#: Link kinds.
_SEQ, _BRANCH = 0, 1


class MaLinksICache:
    """I-cache with per-line sequential and branch way links."""

    name = "ma-links"
    #: Every fetch touches the cache exactly once on every path, so
    #: the replay engine may derive this architecture's counters from
    #: a shared batch pass (:meth:`replay_counters`).
    replay_batchable = True

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        # (line_addr, kind) -> (target_line_addr, target_way)
        self._links: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # target_line_addr -> set of link keys pointing at it
        self._reverse: Dict[int, Set[Tuple[int, int]]] = {}
        self.cache.add_eviction_listener(self._on_evict)

    # ------------------------------------------------------------------

    def _on_evict(self, tag: int, set_index: int) -> None:
        """Invalidate links pointing at (and owned by) the dead line."""
        line = self.cache_config.join(tag, set_index)
        for key in self._reverse.pop(line, set()):
            self._links.pop(key, None)
        # Links stored WITH the line die with it too.
        for kind in (_SEQ, _BRANCH):
            target = self._links.pop((line, kind), None)
            if target is not None:
                keys = self._reverse.get(target[0])
                if keys is not None:
                    keys.discard((line, kind))

    def _set_link(self, source_line: int, kind: int,
                  target_line: int, way: int) -> None:
        old = self._links.get((source_line, kind))
        if old is not None:
            keys = self._reverse.get(old[0])
            if keys is not None:
                keys.discard((source_line, kind))
        self._links[(source_line, kind)] = (target_line, way)
        self._reverse.setdefault(target_line, set()).add(
            (source_line, kind)
        )

    # ------------------------------------------------------------------

    def process(self, fetch: FetchStream) -> AccessCounters:
        """Replay the fetch stream and return counters (fast engine).

        The cache sees exactly one access per fetch on every path, so
        each iteration is one packed-int kernel call; a valid link is
        verified and completed with a single tag comparison
        (:meth:`~repro.cache.cache.SetAssociativeCache.hit_confirm` —
        the memoized way holds the tag iff any way does), instead of
        the reference's stateless ``probe()`` followed by a second
        full ``access()`` scan.
        """
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        nways = cache.ways
        access_fast = cache.access_fast
        hit_confirm = cache.hit_confirm
        links_get = self._links.get
        set_link = self._set_link
        seq = int(FetchKind.SEQ)
        branch = int(FetchKind.BRANCH)

        addr64 = fetch.addr.astype(np.int64)
        lines = (addr64 & ~np.int64(cfg.line_bytes - 1)).tolist()
        tags = (addr64 >> cache.tag_shift).tolist()
        sets = ((addr64 >> cache.offset_bits) & cache.set_mask).tolist()
        kinds = fetch.kind.tolist()

        last_line: Optional[int] = None

        intra_line_hits = 0
        mab_lookups = 0
        mab_hits = 0
        stale_hits = 0
        cache_hits = 0
        cache_misses = 0
        tag_accesses = 0
        way_accesses = 0

        for i in range(len(kinds)):
            kind = kinds[i]
            line = lines[i]
            tag = tags[i]
            set_index = sets[i]

            if kind == seq and line == last_line:
                # Intra-line sequential: way known, free ([3, 4, 10],
                # which [11] also builds upon).
                intra_line_hits += 1
                access_fast(tag, set_index, False)
                cache_hits += 1
                way_accesses += 1
                continue  # last_line already equals line

            link_kind = _SEQ if kind == seq else _BRANCH
            consults_link = last_line is not None and kind in (seq, branch)
            if consults_link:
                mab_lookups += 1  # link consult (for hit rate)
                link = links_get((last_line, link_kind))
            else:
                link = None
            if link is not None and link[0] == line:
                # Valid link: skip the tag search (single-scan verify).
                if hit_confirm(tag, set_index, link[1], False):
                    mab_hits += 1  # link hit (reuses counter)
                    cache_hits += 1
                    way_accesses += 1
                    last_line = line
                    continue
                stale_hits += 1  # should never happen

            # Full access, then learn the link.
            packed = access_fast(tag, set_index, False)
            tag_accesses += nways
            way = (packed >> 1) & 0xFF
            if packed & 1:
                cache_hits += 1
                way_accesses += nways
            else:
                cache_misses += 1
                way_accesses += nways + 1
            if consults_link:
                set_link(last_line, link_kind, line, way)
            last_line = line

        n = len(kinds)
        counters.accesses = n
        counters.aux_accesses = n  # link bits read with the line
        counters.intra_line_hits = intra_line_hits
        counters.mab_lookups = mab_lookups
        counters.mab_hits = mab_hits
        counters.stale_hits = stale_hits
        counters.cache_hits = cache_hits
        counters.cache_misses = cache_misses
        counters.tag_accesses = tag_accesses
        counters.way_accesses = way_accesses
        return counters

    # ------------------------------------------------------------------
    # grouped replay derivation
    # ------------------------------------------------------------------

    def replay_counters(
        self, cols: FetchColumns, shared: SharedPass
    ) -> AccessCounters:
        """Counters from the shared packed results (pure derivation).

        Valid for a fresh controller (the replay engine always builds
        one): after any consulting access ``m``, the consulted key's
        link is (line_m, resident way of line_m) — the full path wrote
        it, and a link hit means it already held exactly that value —
        so the consult at ``i`` hits iff its most recent same-key
        predecessor ``m`` exists, targeted ``i``'s line, and neither
        the target nor the source line was evicted strictly between
        them (evictions *at* ``m`` precede the link write; the consult
        at ``i`` precedes access ``i``'s eviction).  Stale hits
        provably never fire: a surviving link's target is resident
        with an unchanged way, so ``hit_confirm`` always succeeds.
        """
        if self._links:
            raise ValueError(
                "MA-links replay derivation requires a fresh controller"
            )
        counters = AccessCounters()
        cache = self.cache
        nways = cache.ways
        n = cols.n
        counters.accesses = n
        counters.aux_accesses = n  # link bits read with the line
        if n == 0:
            return counters

        offset_bits = cache.offset_bits
        index_bits = cache.index_bits
        lines = cols.lines_array(offset_bits, index_bits)
        sets = cols.sets_array(offset_bits, index_bits)
        intra = cols.intra_mask(offset_bits, index_bits)
        hit = shared.hit
        if not bool(hit[intra].all()):
            raise AssertionError("intra-line fetch must hit")

        kind = cols.kind
        is_seq = kind == np.uint8(int(FetchKind.SEQ))
        is_branch = kind == np.uint8(int(FetchKind.BRANCH))
        consult = ~intra & (is_seq | is_branch)
        consult[0] = False  # no previous line to link from

        # Most recent prior consult with the same (source line, kind)
        # key: stable-sort the consult subset by key, then the
        # predecessor within each equal-key group is the answer.
        prev_line = np.empty(n, dtype=np.int64)
        prev_line[0] = -1
        prev_line[1:] = lines[:-1]
        ci = np.flatnonzero(consult)
        keys = prev_line[ci] * 2 + is_branch[ci]
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        idx_sorted = ci[order]
        prev_consult = np.full(len(ci), -1, dtype=np.int64)
        if len(ci) > 1:
            same = keys_sorted[1:] == keys_sorted[:-1]
            prev_consult[1:] = np.where(same, idx_sorted[:-1], -1)
        m_of = np.full(n, -1, dtype=np.int64)
        m_of[idx_sorted] = prev_consult

        # Eviction events from the shared pass, as (line, time) keys
        # sorted for windowed membership queries.  packed bit 9 flags
        # an eviction; bits 11+ carry the victim's tag.
        packed64 = shared.packed64
        ev_at = np.flatnonzero((packed64 & (1 << 9)) != 0)
        ev_line = ((packed64[ev_at] >> 11) << index_bits) | sets[ev_at]
        span = np.int64(n + 1)
        ev_keys = np.sort(ev_line * span + ev_at)

        cand = np.flatnonzero(m_of >= 0)
        mm = m_of[cand]
        same_target = lines[mm] == lines[cand]
        cand = cand[same_target]
        mm = mm[same_target]

        def evicted_between(line_ids, lo, hi):
            # Any eviction of `line_ids` at a time strictly inside
            # (lo, hi)?  Keys for one line occupy a private [line*span,
            # line*span + n] range, so a single sorted-array probe
            # answers the window query.
            base = line_ids * span
            pos = np.searchsorted(ev_keys, base + hi)
            prev = ev_keys[np.maximum(pos - 1, 0)]
            return (pos > 0) & (prev > base + lo)

        if len(cand) and len(ev_keys):
            dead = evicted_between(lines[cand], mm, cand)
            dead |= evicted_between(prev_line[mm], mm, cand)
            link_hit_idx = cand[~dead]
        else:
            link_hit_idx = cand
        if not bool(hit[link_hit_idx].all()):
            raise AssertionError("link target must be cache-resident")

        n_intra = int(intra.sum())
        mab_hits = len(link_hit_idx)
        cache_hits = shared.hit_count
        misses = n - cache_hits
        n_full = n - n_intra - mab_hits
        full_hits = n_full - misses  # intra and link hits always hit

        counters.intra_line_hits = n_intra
        counters.mab_lookups = int(consult.sum())
        counters.mab_hits = mab_hits
        counters.stale_hits = 0
        counters.cache_hits = cache_hits
        counters.cache_misses = misses
        counters.tag_accesses = nways * n_full
        counters.way_accesses = (
            n_intra + mab_hits           # single known way
            + full_hits * nways          # parallel fetch
            + misses * (nways + 1)       # parallel fetch + refill
        )
        return counters

    # ------------------------------------------------------------------
    # reference implementation (executable specification)
    # ------------------------------------------------------------------

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        """Replay via the original object-API path (spec for diff tests)."""
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        line_mask = ~(cfg.line_bytes - 1) & 0xFFFFFFFF
        seq = int(FetchKind.SEQ)
        branch = int(FetchKind.BRANCH)

        last_line: Optional[int] = None

        for addr, kind in zip(fetch.addr.tolist(), fetch.kind.tolist()):
            counters.accesses += 1
            counters.aux_accesses += 1  # link bits read with the line
            line = addr & line_mask

            if kind == seq and line == last_line:
                # Intra-line sequential: way known, free ([3, 4, 10],
                # which [11] also builds upon).
                counters.intra_line_hits += 1
                result = cache.access(addr)
                counters.cache_hits += 1
                counters.way_accesses += 1
                last_line = line
                continue

            link_kind = _SEQ if kind == seq else _BRANCH
            consults_link = last_line is not None and kind in (seq, branch)
            if consults_link:
                counters.mab_lookups += 1  # link consult (for hit rate)
            link = (
                self._links.get((last_line, link_kind))
                if consults_link else None
            )
            if link is not None and link[0] == line:
                # Valid link: skip the tag search.
                way = link[1]
                actual = cache.probe(addr)
                if actual == way:
                    counters.mab_hits += 1  # link hit (reuses counter)
                    cache.access(addr)
                    counters.cache_hits += 1
                    counters.way_accesses += 1
                    last_line = line
                    continue
                counters.stale_hits += 1  # should never happen

            # Full access, then learn the link.
            result = cache.access(addr)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += cfg.ways + 1
            if last_line is not None and kind in (seq, branch):
                self._set_link(last_line, link_kind, line, result.way)
            last_line = line

        return counters
