"""Ma, Zhang & Asanovic [11]: link-based way memoization.

The closest prior art to the paper's MAB: each I-cache line is
augmented with a *sequential link* (valid bit + way of the line
holding the next sequential address) and a *branch link* (valid bit +
way of the last taken-branch target from this line).  A valid link
skips the tag search entirely; invalid links fall back to a full
access and are learned.

The paper's two criticisms, both visible in this model:

* the links add storage to every cache line and their bits are read
  on every access (``aux_accesses`` charges that energy);
* a replacement must invalidate every link *pointing at* the evicted
  line, which needs extra machinery — modelled here with an exact
  reverse index standing in for their invalidation hardware (this is
  generous to [11]: sloppier hardware would lose more links).

Links live at line granularity (one sequential + one branch link per
line); lines containing several distinct taken branches thrash their
branch link, which is the structural disadvantage relative to the
MAB's decoupled address table.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.sim.fetch import FetchKind, FetchStream

#: Link kinds.
_SEQ, _BRANCH = 0, 1


class MaLinksICache:
    """I-cache with per-line sequential and branch way links."""

    name = "ma-links"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        # (line_addr, kind) -> (target_line_addr, target_way)
        self._links: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # target_line_addr -> set of link keys pointing at it
        self._reverse: Dict[int, Set[Tuple[int, int]]] = {}
        self.cache.add_eviction_listener(self._on_evict)

    # ------------------------------------------------------------------

    def _on_evict(self, tag: int, set_index: int) -> None:
        """Invalidate links pointing at (and owned by) the dead line."""
        line = self.cache_config.join(tag, set_index)
        for key in self._reverse.pop(line, set()):
            self._links.pop(key, None)
        # Links stored WITH the line die with it too.
        for kind in (_SEQ, _BRANCH):
            target = self._links.pop((line, kind), None)
            if target is not None:
                keys = self._reverse.get(target[0])
                if keys is not None:
                    keys.discard((line, kind))

    def _set_link(self, source_line: int, kind: int,
                  target_line: int, way: int) -> None:
        old = self._links.get((source_line, kind))
        if old is not None:
            keys = self._reverse.get(old[0])
            if keys is not None:
                keys.discard((source_line, kind))
        self._links[(source_line, kind)] = (target_line, way)
        self._reverse.setdefault(target_line, set()).add(
            (source_line, kind)
        )

    # ------------------------------------------------------------------

    def process(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        line_mask = ~(cfg.line_bytes - 1) & 0xFFFFFFFF
        seq = int(FetchKind.SEQ)
        branch = int(FetchKind.BRANCH)

        last_line: Optional[int] = None

        for addr, kind in zip(fetch.addr.tolist(), fetch.kind.tolist()):
            counters.accesses += 1
            counters.aux_accesses += 1  # link bits read with the line
            line = addr & line_mask

            if kind == seq and line == last_line:
                # Intra-line sequential: way known, free ([3, 4, 10],
                # which [11] also builds upon).
                counters.intra_line_hits += 1
                result = cache.access(addr)
                counters.cache_hits += 1
                counters.way_accesses += 1
                last_line = line
                continue

            link_kind = _SEQ if kind == seq else _BRANCH
            consults_link = last_line is not None and kind in (seq, branch)
            if consults_link:
                counters.mab_lookups += 1  # link consult (for hit rate)
            link = (
                self._links.get((last_line, link_kind))
                if consults_link else None
            )
            if link is not None and link[0] == line:
                # Valid link: skip the tag search.
                way = link[1]
                actual = cache.probe(addr)
                if actual == way:
                    counters.mab_hits += 1  # link hit (reuses counter)
                    cache.access(addr)
                    counters.cache_hits += 1
                    counters.way_accesses += 1
                    last_line = line
                    continue
                counters.stale_hits += 1  # should never happen

            # Full access, then learn the link.
            result = cache.access(addr)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += cfg.ways + 1
            if last_line is not None and kind in (seq, branch):
                self._set_link(last_line, link_kind, line, result.way)
            last_line = line

        return counters
