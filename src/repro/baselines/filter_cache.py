"""Kin, Gupta & Mangione-Smith [6]: the filter cache (L0).

A tiny cache sits between the core and L1.  L0 hits are cheap; L0
misses pay one extra cycle plus a full L1 access.  This is the classic
energy/performance trade the paper's zero-penalty technique is set
against.  The L0 is modelled as a small fully-associative cache of L1
line-size lines, kept *inclusive* in L1: when L1 evicts a line the L0
copy is invalidated through the eviction listener, so an L0 hit always
refers to an L1-resident line (without the listener a line could
linger in the L0 after its L1 eviction, and a write-through on such a
stale L0 hit would silently miss-fill L1 with uncharged energy — a
consistency bug the fast/reference differential matrix exposed).

:meth:`_FilterCache._process_fast` is the fast engine: vectorized line
address/tag/set splitting and packed-int
:meth:`SetAssociativeCache.access_fast` calls around the same ``_l0``
MRU list; the per-access object-API loop is retained as the
executable specification for the differential tests.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace

#: Default filter cache size: 256 B of 32 B lines, fully associative.
DEFAULT_L0_LINES = 8


class _FilterCache:
    """Shared L0 + L1 machinery."""

    def __init__(self, cache_config: CacheConfig, l0_lines: int,
                 policy: str):
        if l0_lines < 1:
            raise ValueError("filter cache needs at least one line")
        self.cache_config = cache_config
        self.l0_lines = l0_lines
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self._l0: list = []  # line addresses, MRU at back
        # L0 is inclusive in L1: evicting the L1 line kills the copy.
        self.cache.add_eviction_listener(self._on_l1_evict)

    def _on_l1_evict(self, tag: int, set_index: int) -> None:
        line = self.cache_config.join(tag, set_index)
        if line in self._l0:
            self._l0.remove(line)

    # -- fast engine ----------------------------------------------------

    def _process_fast(self, addr_arr, writes) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        nways = cache.ways
        access_fast = cache.access_fast
        l0 = self._l0
        l0_lines = self.l0_lines

        addr64 = addr_arr.astype(np.int64)
        lines = (addr64 & ~np.int64(cfg.line_bytes - 1)).tolist()
        tags = (addr64 >> cache.tag_shift).tolist()
        sets = ((addr64 >> cache.offset_bits) & cache.set_mask).tolist()
        if writes is None:
            writes = [False] * len(lines)

        cache_hits = 0
        cache_misses = 0
        tag_accesses = 0
        way_accesses = 0
        extra_cycles = 0

        for i in range(len(lines)):
            line = lines[i]
            write = writes[i]
            if line in l0:
                l0.remove(line)
                l0.append(line)
                cache_hits += 1
                if write:
                    # Write-through to L1 state so dirtiness is tracked.
                    access_fast(tags[i], sets[i], True)
                continue

            # L0 miss: one stall cycle, then the full L1 access.
            extra_cycles += 1
            packed = access_fast(tags[i], sets[i], write)
            tag_accesses += nways
            if packed & 1:
                cache_hits += 1
                way_accesses += 1 if write else nways
            else:
                cache_misses += 1
                way_accesses += (1 if write else nways) + 1
            l0.append(line)
            if len(l0) > l0_lines:
                l0.pop(0)

        counters.accesses = len(lines)
        counters.aux_accesses = len(lines)  # L0 probe (cheap)
        counters.cache_hits = cache_hits
        counters.cache_misses = cache_misses
        counters.tag_accesses = tag_accesses
        counters.way_accesses = way_accesses
        counters.extra_cycles = extra_cycles
        return counters

    # -- executable specification ---------------------------------------

    def _access(self, counters: AccessCounters, addr: int,
                write: bool = False) -> None:
        cfg = self.cache_config
        line = cfg.line_addr(addr)
        counters.aux_accesses += 1  # L0 probe (cheap)
        if line in self._l0:
            self._l0.remove(line)
            self._l0.append(line)
            counters.cache_hits += 1
            if write:
                # Write-through to L1 state so dirtiness is tracked.
                self.cache.access(addr, write=True)
            return

        # L0 miss: one stall cycle, then the full L1 access.
        counters.extra_cycles += 1
        result = self.cache.access(addr, write=write)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            counters.way_accesses += 1 if write else cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += (1 if write else cfg.ways) + 1
        self._l0.append(line)
        if len(self._l0) > self.l0_lines:
            self._l0.pop(0)


class FilterCacheDCache(_FilterCache):
    """Filter cache in front of the D-cache."""

    name = "filter-cache"

    def __init__(self, cache_config: CacheConfig = FRV_DCACHE,
                 l0_lines: int = DEFAULT_L0_LINES, policy: str = "lru"):
        super().__init__(cache_config, l0_lines, policy)

    def process(self, trace: DataTrace) -> AccessCounters:
        counters = self._process_fast(trace.addr, trace.store.tolist())
        counters.stores = int(trace.store.sum())
        counters.loads = counters.accesses - counters.stores
        return counters

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            self._access(counters, (base + disp) & 0xFFFFFFFF, is_store)
        return counters


class FilterCacheICache(_FilterCache):
    """Filter cache in front of the I-cache."""

    name = "filter-cache"

    def __init__(self, cache_config: CacheConfig = FRV_ICACHE,
                 l0_lines: int = DEFAULT_L0_LINES, policy: str = "lru"):
        super().__init__(cache_config, l0_lines, policy)

    def process(self, fetch: FetchStream) -> AccessCounters:
        return self._process_fast(fetch.addr, None)

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            self._access(counters, addr)
        return counters
