"""Kin, Gupta & Mangione-Smith [6]: the filter cache (L0).

A tiny cache sits between the core and L1.  L0 hits are cheap; L0
misses pay one extra cycle plus a full L1 access.  This is the classic
energy/performance trade the paper's zero-penalty technique is set
against.  The L0 is modelled as a small fully-associative cache of L1
line-size lines, kept *inclusive* in L1: when L1 evicts a line the L0
copy is invalidated through the eviction listener, so an L0 hit always
refers to an L1-resident line (without the listener a line could
linger in the L0 after its L1 eviction, and a write-through on such a
stale L0 hit would silently miss-fill L1 with uncharged energy — a
consistency bug the fast/reference differential matrix exposed).

:meth:`_FilterCache.process_columns` is the fast engine, driven by the
shared columnar pre-split (:mod:`repro.replay.columns`).  L0 hits skip
L1 entirely, so this design cannot ride the shared batch sweep — the
L1 access subsequence depends on the L0 classification.  But the
coupling in the *other* direction is almost nil: the L0 (an LRU list
over lines) evolves independently of L1 except when an L1 eviction
invalidates an L0-resident line through the inclusion listener, which
requires L1 to evict a line out of the L0's tiny recent working set —
measured at ~6 events per 20k accesses on the benchmark traces.  The
replay therefore runs *optimistically*: per chunk it classifies every
access assuming no invalidations land (a vectorized candidate filter
proves almost all accesses are L0 misses outright; the few possible
hits are resolved by a short exact Python walk), feeds the whole
derived L1 subsequence — run-head misses plus write-through stores —
through one :meth:`SetAssociativeCache.access_fast_batch`, and then
*validates* the assumption against the packed eviction results: an
eviction whose line was possibly L0-resident at eviction time means
the classification may diverge there, so the chunk's L1 snapshot is
restored, the proven prefix is committed, and replay resumes just
past the divergence (degrading to the scalar per-head walk if a chunk
keeps misbehaving, as tiny thrashing geometries do).  The per-access
object-API loop is retained as the executable specification for the
differential tests.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.replay.columns import columns_for_stream
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace

#: Default filter cache size: 256 B of 32 B lines, fully associative.
DEFAULT_L0_LINES = 8

#: Accesses per optimistic replay chunk (bounds the work redone when a
#: chunk's no-invalidation assumption fails).
_CHUNK = 8192
#: Optimistic restarts tolerated per chunk before the scalar walk.
_MAX_RESTARTS = 4

_F_HIT = 1
_F_EVICTED = 1 << 9
_F_WRITEBACK = 1 << 10
_F_TAG_SHIFT = 11


class _FilterCache:
    """Shared L0 + L1 machinery."""

    def __init__(self, cache_config: CacheConfig, l0_lines: int,
                 policy: str):
        if l0_lines < 1:
            raise ValueError("filter cache needs at least one line")
        self.cache_config = cache_config
        self.l0_lines = l0_lines
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self._l0: list = []  # line addresses, MRU at back
        # L0 is inclusive in L1: evicting the L1 line kills the copy.
        self.cache.add_eviction_listener(self._on_l1_evict)

    def _on_l1_evict(self, tag: int, set_index: int) -> None:
        line = self.cache_config.join(tag, set_index)
        if line in self._l0:
            self._l0.remove(line)

    # -- fast engine ----------------------------------------------------

    def process_columns(self, cols) -> AccessCounters:
        """Replay from the shared columnar pre-split (fast engine).

        Chunked optimistic replay (see the module docstring): each
        chunk is classified assuming no L1-eviction invalidation lands
        in an L0-resident line, the implied L1 subsequence runs
        through one batch kernel call, and the assumption is validated
        against the packed eviction results afterwards.  Failed chunks
        restore the L1 snapshot, commit their proven prefix and
        resume; chunks that keep failing (tiny thrashing geometries)
        fall back to the exact scalar per-head walk.
        """
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        n = cols.n
        counters.accesses = n
        counters.aux_accesses = n  # L0 probe (cheap)
        cols.apply_load_store(counters)
        if n == 0:
            return counters

        lines64 = cols.addr64 & ~np.int64(cfg.line_bytes - 1)
        store_mask = getattr(cols, "store_mask", None)
        if store_mask is None or not counters.stores:
            store_mask = None

        # l0_misses, cache_misses, way_accesses
        acc = [0, 0, 0]
        if cache._lru is None:
            # Snapshots cover only LRU replacement state; other
            # policies take the exact scalar walk end to end.
            self._walk_span_scalar(cols, lines64, store_mask, 0, n, acc)
        else:
            tags_np = np.asarray(
                cols.tags_array(cache.offset_bits, cache.index_bits)
            )
            sets_np = np.asarray(
                cols.sets_array(cache.offset_bits, cache.index_bits)
            )
            pos = 0
            while pos < n:
                end = min(pos + _CHUNK, n)
                restarts = 0
                while pos < end:
                    pos, clean = self._optimistic_span(
                        cols, lines64, store_mask, tags_np, sets_np,
                        pos, end, acc,
                    )
                    if not clean:
                        restarts += 1
                        if restarts > _MAX_RESTARTS and pos < end:
                            self._walk_span_scalar(
                                cols, lines64, store_mask, pos, end, acc
                            )
                            pos = end

        l0_misses, cache_misses, way_accesses = acc
        counters.cache_hits = n - cache_misses
        counters.cache_misses = cache_misses
        counters.tag_accesses = cache.ways * l0_misses
        counters.way_accesses = way_accesses
        counters.extra_cycles = l0_misses
        return counters

    # -- optimistic chunk machinery -------------------------------------

    def _snapshot_l1(self):
        cache = self.cache
        return (
            [row[:] for row in cache._tags],
            [row[:] for row in cache._dirty],
            [row[:] for row in cache._lru],
            cache.hits, cache.misses, cache.evictions, cache.writebacks,
        )

    def _restore_l1(self, snap) -> None:
        cache = self.cache
        tags, dirty, lru, hits, misses, evictions, writebacks = snap
        for row, saved in zip(cache._tags, tags):
            row[:] = saved
        for row, saved in zip(cache._dirty, dirty):
            row[:] = saved
        for row, saved in zip(cache._lru, lru):
            row[:] = saved
        cache.hits = hits
        cache.misses = misses
        cache.evictions = evictions
        cache.writebacks = writebacks

    def _accumulate_packed(self, pk, pfull, pwrites, acc) -> None:
        """Fold a committed batch's packed results into the counters."""
        if ((~pfull) & ((pk & _F_HIT) == 0)).any():
            raise AssertionError(
                "write-through must hit (L0 inclusive in L1)"
            )
        nways = self.cache.ways
        full_pk = pk[pfull]
        hit = (full_pk & _F_HIT) != 0
        ways = np.where(pwrites[pfull], 1, nways) + np.where(hit, 0, 1)
        acc[0] += len(full_pk)
        acc[1] += int((~hit).sum())
        acc[2] += int(ways.sum())

    @staticmethod
    def _replay_l0(start, head_list, hit_ks, upto, l0_lines):
        """L0 content after heads ``0..upto`` given their classification.

        ``hit_ks`` are the head indices classified as L0 hits; every
        other head is a miss-append.  Misses between hits batch into
        one extend + trim (pops always take the front, so content and
        order survive bulk application).
        """
        l0 = list(start)
        prev = 0
        for k in hit_ks:
            if k > upto:
                break
            seg = head_list[prev:k]
            if seg:
                l0.extend(seg)
                del l0[:-l0_lines]
            line = head_list[k]
            l0.remove(line)
            l0.append(line)
            prev = k + 1
        seg = head_list[prev:upto + 1]
        if seg:
            l0.extend(seg)
            del l0[:-l0_lines]
        return l0

    def _vector_batch_2way(self, ptags, psets, pwrites):
        """Vectorized replacement for ``access_fast_batch`` (2-way LRU).

        A 2-way LRU set always holds the last two distinct lines
        referenced in it, so the whole L1 evolution falls out of array
        scans: per set-chain, the resident "other" line is the last
        value differing from the current one (a segmented running
        maximum over change positions), the filled way alternates on
        every line change (a prefix XOR), and dirtiness is an
        any-write over each residency episode (a segmented cumsum in
        line order).  Cache state and counters are updated exactly as
        the scalar kernel would; the packed results carry the hit,
        eviction, writeback and evicted-tag bits (way bits are not
        reconstructed — no fast-path consumer reads them).
        """
        cache = self.cache
        tag_shift = cache.tag_shift
        offset_bits = cache.offset_bits
        npp = len(ptags)
        pk = np.zeros(npp, dtype=np.int64)
        if npp == 0:
            return pk
        ctags = cache._tags
        cdirty = cache._dirty
        clru = cache._lru

        # Warm sets contribute their residents as pseudo accesses —
        # LRU line first, then MRU — so the chain logic sees the same
        # "last two distinct lines" the physical arrays hold.  A
        # single-resident set's valid line is always the MRU.
        nsets = len(ctags)
        touched = np.flatnonzero(np.bincount(psets, minlength=nsets))
        all_tags = np.array(ctags, dtype=np.int64)
        all_lru = np.array(clru, dtype=np.int64)
        all_dirty = np.array(cdirty, dtype=bool)
        lru_way = all_lru[touched, 0]
        mru_way = all_lru[touched, 1]
        lru_tag = all_tags[touched, lru_way]
        mru_tag = all_tags[touched, mru_way]
        has_lru = lru_tag >= 0
        has_mru = mru_tag >= 0
        ps_sets = np.concatenate([touched[has_lru], touched[has_mru]])
        ps_tags = np.concatenate([lru_tag[has_lru], mru_tag[has_mru]])
        ps_writes = np.concatenate([
            all_dirty[touched, lru_way][has_lru],
            all_dirty[touched, mru_way][has_mru],
        ])
        npseudo = len(ps_sets)

        ch_sets = np.concatenate([ps_sets, psets])
        ch_tags = np.concatenate([ps_tags, np.asarray(ptags, np.int64)])
        ch_writes = np.concatenate([ps_writes, pwrites])
        orig = np.concatenate([
            np.full(npseudo, -1, dtype=np.int64), np.arange(npp)
        ])

        # Radix sorts on narrow keys: set indices fit 16 bits for any
        # realistic geometry, line keys (tag+index) fit 32.
        if nsets <= (1 << 16):
            sidx = np.argsort(ch_sets.astype(np.uint16), kind="stable")
        else:
            sidx = np.argsort(ch_sets, kind="stable")
        ssets = ch_sets[sidx].astype(np.int64)
        lines = (ch_tags[sidx] << tag_shift) | (ssets << offset_bits)
        writes = ch_writes[sidx]
        orig = orig[sidx]
        m = len(lines)
        idx = np.arange(m)
        bnd = np.empty(m, dtype=bool)
        bnd[0] = True
        bnd[1:] = ssets[1:] != ssets[:-1]
        segstart = np.maximum.accumulate(np.where(bnd, idx, -1))

        # Last same-segment position whose line differs from ours.
        diff = np.zeros(m, dtype=bool)
        diff[1:] = (lines[1:] != lines[:-1]) & ~bnd[1:]
        mx = np.maximum.accumulate(np.where(diff, idx - 1, -1))
        mxvalid = mx >= segstart

        prev_line = np.empty(m, dtype=np.int64)
        prev_line[0] = -1
        prev_line[1:] = lines[:-1]
        prev_line[bnd] = -1
        other_valid = np.zeros(m, dtype=bool)
        other_valid[1:] = mxvalid[:-1]
        other_valid &= ~bnd
        pm = np.empty(m, dtype=np.int64)
        pm[0] = 0
        pm[1:] = np.maximum(mx[:-1], 0)
        other_before = np.where(other_valid, lines[pm], -2)

        hit = (lines == prev_line) | (lines == other_before)
        evict = ~hit & other_valid

        # Dirtiness: any write during a line's residency episode
        # (fill to eviction).  In line order the episodes are the
        # segments between misses, so a cumsum gives the running OR.
        # A write-free span (the whole I-cache side) skips all of it.
        if ch_writes.any():
            lkey = lines >> offset_bits
            if 0 <= int(lkey.min()) and int(lkey.max()) < (1 << 32):
                lidx = np.argsort(lkey.astype(np.uint32),
                                  kind="stable")
            else:
                lidx = np.argsort(lkey, kind="stable")
            wl = writes[lidx]
            sl = lines[lidx]
            epb = np.empty(m, dtype=bool)
            epb[0] = True
            epb[1:] = sl[1:] != sl[:-1]
            epb |= ~hit[lidx]
            epstart = np.maximum.accumulate(np.where(epb, idx, -1))
            wcum = np.cumsum(wl)
            anyw_sorted = (wcum - (wcum[epstart] - wl[epstart])) > 0
            anyw = np.empty(m, dtype=bool)
            anyw[lidx] = anyw_sorted
        else:
            anyw = np.zeros(m, dtype=bool)

        real = orig >= 0
        epos = np.flatnonzero(evict)
        wb = anyw[pm[epos]]
        cache.hits += int((hit & real).sum())
        cache.misses += int((~hit & real).sum())
        cache.evictions += len(epos)
        cache.writebacks += int(wb.sum())

        pk[orig[real]] = hit[real].astype(np.int64)
        ev_entry = (
            _F_EVICTED
            | ((other_before[epos] >> tag_shift) << _F_TAG_SHIFT)
            | np.where(wb, _F_WRITEBACK, 0)
        )
        pk[orig[epos]] |= ev_entry

        # Final per-set state: MRU = last chain entry, other = its
        # last differing line; the filled way flips on every line
        # change (two residents always occupy distinct ways).
        starts = np.flatnonzero(bnd)
        ends = np.append(starts[1:] - 1, m - 1)
        dcum = np.cumsum(diff)
        startway = np.where(has_lru, lru_way,
                            np.where(has_mru, mru_way, 0))
        way_e = (startway ^ (dcum[ends] - dcum[starts])) & 1
        oth_ok = mxvalid[ends]
        oth_idx = np.maximum(mx[ends], 0)
        for s, w, mt, md, ov, ot, od in zip(
            touched.tolist(), way_e.tolist(),
            (lines[ends] >> tag_shift).tolist(), anyw[ends].tolist(),
            oth_ok.tolist(), (lines[oth_idx] >> tag_shift).tolist(),
            anyw[oth_idx].tolist(),
        ):
            trow = ctags[s]
            drow = cdirty[s]
            trow[w] = mt
            drow[w] = md
            if ov:
                trow[1 - w] = ot
                drow[1 - w] = od
            lrow = clru[s]
            lrow[0] = 1 - w
            lrow[1] = w
        return pk

    def _optimistic_span(self, cols, lines64, store_mask, tags_np,
                         sets_np, a, b, acc):
        """Optimistically replay accesses ``[a, b)``.

        Returns ``(resume, clean)``: ``clean`` means the whole span
        committed; otherwise the proven prefix committed and replay
        must resume at ``resume`` (always ``> a``).
        """
        cache = self.cache
        l0_lines = self.l0_lines
        c = b - a
        cl = lines64[a:b]

        head = np.empty(c, dtype=bool)
        head[0] = a == 0 or cl[0] != lines64[a - 1]
        if c > 1:
            np.not_equal(cl[1:], cl[:-1], out=head[1:])
        hpos = np.flatnonzero(head)

        # Previous occurrence (local index) of each access's line, via
        # one stable sort: equal lines land adjacent in position
        # order.  The offset bits of a line address are zero, so the
        # shifted key preserves the order and usually fits a 32-bit
        # radix sort.
        ckey = cl >> cache.offset_bits
        if 0 <= int(ckey.min()) and int(ckey.max()) < (1 << 32):
            order = np.argsort(ckey.astype(np.uint32), kind="stable")
        else:
            order = np.argsort(cl, kind="stable")
        scl = cl[order]
        prev = np.full(c, -1, dtype=np.int64)
        if c > 1:
            same = scl[1:] == scl[:-1]
            prev[order[1:][same]] = order[:-1][same]

        start_l0 = self._l0
        # Once warm the simulated L0 never shrinks, so ``l0_lines``
        # misses after a line's last touch guarantee it was popped; a
        # cold/killed L0 defers pops, doubling the safe bound.
        bound = l0_lines if len(start_l0) >= l0_lines else 2 * l0_lines
        in_init = np.zeros(c, dtype=bool)
        for line in start_l0:
            in_init |= cl == line
        has_prev = prev >= 0
        reachable = head & (has_prev | in_init)

        # Candidate filter: a head can only be an L0 hit if fewer than
        # ``bound`` definite misses separate it from its line's last
        # touch (entry at -1 for start-resident lines).  Iterate the
        # definite-miss set to a (sound, monotone) fixpoint.
        sure = np.zeros(c, dtype=bool)
        cand = reachable
        for _ in range(4):
            cum = np.zeros(c + 1, dtype=np.int64)
            np.cumsum(sure, out=cum[1:])
            gap = cum[:c] - cum[prev + 1]
            new_cand = reachable & (gap < bound)
            new_sure = head & ~new_cand
            if np.array_equal(new_sure, sure):
                cand = new_cand
                break
            sure = new_sure
            cand = new_cand

        # Exact resolution: bulk-apply the definite misses, test only
        # the candidates against the live list.
        head_list = cl[hpos].tolist()
        l0 = list(start_l0)
        hit_ks: list = []
        walked = 0
        for k in np.flatnonzero(cand[hpos]).tolist():
            seg = head_list[walked:k]
            if seg:
                l0.extend(seg)
                del l0[:-l0_lines]
            line = head_list[k]
            if line in l0:
                l0.remove(line)
                l0.append(line)
                hit_ks.append(k)
            else:
                l0.append(line)
                del l0[:-l0_lines]
            walked = k + 1
        seg = head_list[walked:]
        if seg:
            l0.extend(seg)
            del l0[:-l0_lines]

        miss_ind = np.zeros(c, dtype=bool)
        miss_ind[hpos] = True
        if hit_ks:
            miss_ind[hpos[np.array(hit_ks)]] = False

        # L1 subsequence: run-head misses plus write-through stores.
        if store_mask is not None:
            st = store_mask[a:b]
            pend_mask = miss_ind | (st & ~miss_ind)
        else:
            st = None
            pend_mask = miss_ind
        ppos = np.flatnonzero(pend_mask)
        pfull = miss_ind[ppos]
        if st is not None:
            pwrites = np.where(pfull, st[ppos], True)
        else:
            pwrites = np.zeros(len(ppos), dtype=bool)
        gpos = ppos + a
        ptags = tags_np[gpos]
        psets = sets_np[gpos]

        snap = self._snapshot_l1()
        if cache.ways == 2:
            pk = self._vector_batch_2way(ptags, psets, pwrites)
        else:
            # Detach the inclusion listener for the batch: kills are
            # read back from the packed eviction bits, and the
            # listener's per-event address math would dominate the
            # whole replay.
            listeners = cache._eviction_listeners
            cache._eviction_listeners = []
            try:
                packed = cache.access_fast_batch(
                    ptags.tolist(), psets.tolist(), pwrites.tolist()
                )
            finally:
                cache._eviction_listeners = listeners
            pk = np.array(packed, dtype=np.int64)

        # Validate: an eviction whose line may have been L0-resident at
        # eviction time breaks the no-invalidation assumption.
        ev = np.flatnonzero(pk & _F_EVICTED)
        flagged = None
        if len(ev):
            ev_pos = ppos[ev]
            ev_line = (
                ((pk[ev] >> _F_TAG_SHIFT) << cache.tag_shift)
                | (psets[ev].astype(np.int64) << cache.offset_bits)
            )
            miss_cum = np.zeros(c + 1, dtype=np.int64)
            np.cumsum(miss_ind, out=miss_cum[1:])
            # Last touch of each evicted line strictly before ev_pos.
            bnd = np.empty(c, dtype=bool)
            bnd[0] = True
            if c > 1:
                bnd[1:] = ~same
            uniq = scl[bnd]
            ranked = np.cumsum(bnd) - 1
            # rank*c + pos fits 32 bits for any sane chunk size, and
            # int32 binary searches are measurably cheaper.
            keys = (ranked * c + order).astype(np.int32)
            ev_rank = np.searchsorted(uniq, ev_line)
            in_chunk = (ev_rank < len(uniq)) & (
                uniq[np.minimum(ev_rank, len(uniq) - 1)] == ev_line
            )
            query = (
                np.where(in_chunk, ev_rank, 0) * c + ev_pos
            ).astype(np.int32)
            loc = np.searchsorted(keys, query)
            near = keys[np.maximum(loc - 1, 0)]
            touched = (
                (loc > 0)
                & in_chunk
                & (near // c == np.where(in_chunk, ev_rank, -1))
            )
            last_touch = np.where(touched, near % c, -1)
            ev_in_init = np.zeros(len(ev), dtype=bool)
            for line in start_l0:
                ev_in_init |= ev_line == line
            ev_gap = miss_cum[ev_pos] - miss_cum[last_touch + 1]
            ev_reach = touched | ev_in_init
            maybe = ev_reach & (ev_gap < bound)
            if maybe.any():
                # Kills defer pops: every applied kill extends lines'
                # survival by one miss, so widen the window until the
                # flagged set stops growing (events before the first
                # one are exact no-kill territory and stay unflagged).
                first = int(np.flatnonzero(maybe)[0])
                kills = int(maybe.sum())
                for _ in range(4):
                    wide = ev_reach & (ev_gap < bound + kills)
                    wide[:first] = False
                    wide[first] = True
                    grown = int(wide.sum())
                    if grown == kills:
                        break
                    kills = grown
                else:
                    wide = ev_reach.copy()
                    wide[:first] = False
                    wide[first] = True
                    kills = int(wide.sum())
                flagged = np.flatnonzero(wide)

        if flagged is None:
            self._accumulate_packed(pk, pfull, pwrites, acc)
            self._l0 = l0
            return b, True

        # Possible divergence: re-simulate the L0 alone (no L1 calls)
        # from the first possible kill with the recorded invalidations
        # applied, checking every head that could plausibly hit under
        # the widened window.  If no classification flips, the batch
        # already on the books is exact and the span still commits.
        kill_hs = np.searchsorted(hpos, ev_pos[flagged])
        kill_lines = ev_line[flagged].tolist()
        hb0 = int(kill_hs[0])
        gap2 = miss_cum[hpos] - miss_cum[
            np.where(hpos > 0, prev[hpos], -1) + 1
        ]
        cand2 = np.flatnonzero(
            (reachable[hpos])
            & (gap2 < bound + kills)
            & (hpos > hpos[hb0])
        )
        l0_resim = self._replay_l0(start_l0, head_list, hit_ks,
                                   hb0 - 1, l0_lines)
        hit_set = set(hit_ks)
        flip, l0_resim = self._resim_kills(
            head_list, hit_set, cand2.tolist(),
            kill_hs.tolist(), kill_lines, l0_resim, hb0, l0_lines,
        )
        if flip is None:
            self._accumulate_packed(pk, pfull, pwrites, acc)
            self._l0 = l0_resim
            return b, True

        # Genuine divergence at head ``flip``: restore, re-apply the
        # proven prefix (everything before the flipped head), and
        # resume there — ``l0_resim`` is exact up to that point.
        resume = int(hpos[flip])
        self._restore_l1(snap)
        keep = int(np.searchsorted(ppos, resume))
        listeners = cache._eviction_listeners
        cache._eviction_listeners = []
        try:
            cache.access_fast_batch(
                ptags[:keep].tolist(), psets[:keep].tolist(),
                pwrites[:keep].tolist(),
            )
        finally:
            cache._eviction_listeners = listeners
        self._accumulate_packed(pk[:keep], pfull[:keep], pwrites[:keep],
                                acc)
        self._l0 = l0_resim
        return a + resume, False

    @staticmethod
    def _resim_kills(head_list, hit_set, cand2, kill_hs, kill_lines,
                     l0, hb0, l0_lines):
        """Exact L0 walk from the first kill with invalidations applied.

        Walks only the heads that could plausibly hit (``cand2``) plus
        the kill sites, bulk-applying the definite misses in between.
        Returns ``(flip, l0)``: ``flip`` is the first head index whose
        hit/miss outcome differs from the no-kill classification (the
        l0 returned is then exact *up to* that head), or None when the
        whole span re-simulates identically (l0 is the exact final
        state).
        """
        events: dict = {}
        for k in cand2:
            events[k] = None
        for k, line in zip(kill_hs, kill_lines):
            events[k] = line
        prev = hb0
        # Head hb0 itself: an orig-miss whose access evicted; apply
        # the kill between the (already consistent) membership check
        # and the fill, like the scalar loop does.
        first_kill = events.pop(hb0, None)
        if first_kill is not None and first_kill in l0:
            l0.remove(first_kill)
        l0.append(head_list[hb0])
        del l0[:-l0_lines]
        prev = hb0 + 1
        for k in sorted(events):
            seg = head_list[prev:k]
            if seg:
                l0.extend(seg)
                del l0[:-l0_lines]
            line = head_list[k]
            # Membership check precedes the kill in scalar order.
            present = line in l0
            if present != (k in hit_set):
                return k, l0
            if present:
                l0.remove(line)
                l0.append(line)
            else:
                kill = events[k]
                if kill is not None and kill in l0:
                    l0.remove(kill)
                l0.append(line)
                del l0[:-l0_lines]
            prev = k + 1
        seg = head_list[prev:]
        if seg:
            l0.extend(seg)
            del l0[:-l0_lines]
        return None, l0

    # -- exact scalar walk (fallback engine) ----------------------------

    def _walk_span_scalar(self, cols, lines64, store_mask, a, b,
                          acc) -> None:
        """Per-head walk of ``[a, b)`` over the live ``_l0`` — exact
        under any replacement policy and any invalidation pattern."""
        cache = self.cache
        nways = cache.ways
        n = b - a
        head = np.empty(n, dtype=bool)
        head[0] = a == 0 or lines64[a] != lines64[a - 1]
        if n > 1:
            np.not_equal(lines64[a + 1:b], lines64[a:b - 1], out=head[1:])
        head_idx = np.flatnonzero(head) + a
        m = len(head_idx)
        head_pos = head_idx.tolist()
        head_lines = lines64[head_idx].tolist()
        tag_list, set_list = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )

        if store_mask is not None:
            span_stores = np.flatnonzero(store_mask[a:b])
            store_pos = (span_stores + a).tolist()
            head_store = store_mask[head_idx].tolist()
        else:
            store_pos = []
            head_store = [False] * m
        n_stores = len(store_pos)

        access_fast = cache.access_fast
        access_fast_batch = cache.access_fast_batch
        l0 = self._l0
        l0_lines = self.l0_lines
        pending_tags: list = []
        pending_sets: list = []

        sp = 0  # pointer into the ordered store positions
        l0_misses = 0
        cache_misses = 0
        way_accesses = 0

        for k in range(m):
            pos = head_pos[k]
            line = head_lines[k]
            write = head_store[k]
            if line in l0:
                l0.remove(line)
                l0.append(line)
                if write:
                    # Write-through to L1 state so dirtiness is
                    # tracked; guaranteed hit, deferred to the next
                    # flush (hits never evict, so the L0 cannot
                    # diverge in between).
                    pending_tags.append(tag_list[pos])
                    pending_sets.append(set_list[pos])
            else:
                # L0 miss: L1 sees a real access that may evict, so
                # the L1 LRU state must be current — flush first.
                if pending_tags:
                    packed = access_fast_batch(
                        pending_tags, pending_sets,
                        [True] * len(pending_tags),
                    )
                    if not all(p & 1 for p in packed):
                        raise AssertionError(
                            "write-through must hit (L0 inclusive in L1)"
                        )
                    pending_tags = []
                    pending_sets = []
                l0_misses += 1
                packed_one = access_fast(tag_list[pos], set_list[pos], write)
                if packed_one & 1:
                    way_accesses += 1 if write else nways
                else:
                    cache_misses += 1
                    way_accesses += (1 if write else nways) + 1
                l0.append(line)
                if len(l0) > l0_lines:
                    l0.pop(0)

            # Write-throughs inside the run tail (all L0 hits).
            if sp < n_stores:
                end = head_pos[k + 1] if k + 1 < m else b
                while sp < n_stores and store_pos[sp] < end:
                    p = store_pos[sp]
                    if p > pos:
                        pending_tags.append(tag_list[p])
                        pending_sets.append(set_list[p])
                    sp += 1

        if pending_tags:
            packed = access_fast_batch(
                pending_tags, pending_sets, [True] * len(pending_tags)
            )
            if not all(p & 1 for p in packed):
                raise AssertionError(
                    "write-through must hit (L0 inclusive in L1)"
                )

        acc[0] += l0_misses
        acc[1] += cache_misses
        acc[2] += way_accesses

    # -- executable specification ---------------------------------------

    def _access(self, counters: AccessCounters, addr: int,
                write: bool = False) -> None:
        cfg = self.cache_config
        line = cfg.line_addr(addr)
        counters.aux_accesses += 1  # L0 probe (cheap)
        if line in self._l0:
            self._l0.remove(line)
            self._l0.append(line)
            counters.cache_hits += 1
            if write:
                # Write-through to L1 state so dirtiness is tracked.
                self.cache.access(addr, write=True)
            return

        # L0 miss: one stall cycle, then the full L1 access.
        counters.extra_cycles += 1
        result = self.cache.access(addr, write=write)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            counters.way_accesses += 1 if write else cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += (1 if write else cfg.ways) + 1
        self._l0.append(line)
        if len(self._l0) > self.l0_lines:
            self._l0.pop(0)


class FilterCacheDCache(_FilterCache):
    """Filter cache in front of the D-cache."""

    name = "filter-cache"

    def __init__(self, cache_config: CacheConfig = FRV_DCACHE,
                 l0_lines: int = DEFAULT_L0_LINES, policy: str = "lru"):
        super().__init__(cache_config, l0_lines, policy)

    def process(self, trace: DataTrace) -> AccessCounters:
        return self.process_columns(columns_for_stream(trace))

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            self._access(counters, (base + disp) & 0xFFFFFFFF, is_store)
        return counters


class FilterCacheICache(_FilterCache):
    """Filter cache in front of the I-cache."""

    name = "filter-cache"

    def __init__(self, cache_config: CacheConfig = FRV_ICACHE,
                 l0_lines: int = DEFAULT_L0_LINES, policy: str = "lru"):
        super().__init__(cache_config, l0_lines, policy)

    def process(self, fetch: FetchStream) -> AccessCounters:
        return self.process_columns(columns_for_stream(fetch))

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            self._access(counters, addr)
        return counters
