"""Kin, Gupta & Mangione-Smith [6]: the filter cache (L0).

A tiny cache sits between the core and L1.  L0 hits are cheap; L0
misses pay one extra cycle plus a full L1 access.  This is the classic
energy/performance trade the paper's zero-penalty technique is set
against.  The L0 is modelled as a small fully-associative cache of L1
line-size lines.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace

#: Default filter cache size: 256 B of 32 B lines, fully associative.
DEFAULT_L0_LINES = 8


class _FilterCache:
    """Shared L0 + L1 machinery."""

    def __init__(self, cache_config: CacheConfig, l0_lines: int,
                 policy: str):
        if l0_lines < 1:
            raise ValueError("filter cache needs at least one line")
        self.cache_config = cache_config
        self.l0_lines = l0_lines
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self._l0: list = []  # line addresses, MRU at back

    def _access(self, counters: AccessCounters, addr: int,
                write: bool = False) -> None:
        cfg = self.cache_config
        line = cfg.line_addr(addr)
        counters.aux_accesses += 1  # L0 probe (cheap)
        if line in self._l0:
            self._l0.remove(line)
            self._l0.append(line)
            counters.cache_hits += 1
            if write:
                # Write-through to L1 state so dirtiness is tracked.
                self.cache.access(addr, write=True)
            return

        # L0 miss: one stall cycle, then the full L1 access.
        counters.extra_cycles += 1
        result = self.cache.access(addr, write=write)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            counters.way_accesses += 1 if write else cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += (1 if write else cfg.ways) + 1
        self._l0.append(line)
        if len(self._l0) > self.l0_lines:
            self._l0.pop(0)


class FilterCacheDCache(_FilterCache):
    """Filter cache in front of the D-cache."""

    name = "filter-cache"

    def __init__(self, cache_config: CacheConfig = FRV_DCACHE,
                 l0_lines: int = DEFAULT_L0_LINES, policy: str = "lru"):
        super().__init__(cache_config, l0_lines, policy)

    def process(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            self._access(counters, (base + disp) & 0xFFFFFFFF, is_store)
        return counters


class FilterCacheICache(_FilterCache):
    """Filter cache in front of the I-cache."""

    name = "filter-cache"

    def __init__(self, cache_config: CacheConfig = FRV_ICACHE,
                 l0_lines: int = DEFAULT_L0_LINES, policy: str = "lru"):
        super().__init__(cache_config, l0_lines, policy)

    def process(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            self._access(counters, addr)
        return counters
