"""Inoue, Ishihara & Murakami [9]: way-predicting set-associative cache.

A per-set MRU table predicts the way; first cycle accesses only the
predicted way's tag + data.  On a correct prediction the access costs
one tag and one way.  On a misprediction a second cycle probes the
remaining ways (their tags and data), costing one extra cycle — the
performance loss the paper's MAB technique avoids.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace


class _WayPredictingCache:
    """Shared machinery for I/D way-predicting caches."""

    def __init__(self, cache_config: CacheConfig, policy: str):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        # MRU prediction table: one way number per set.
        self._predicted = [0] * cache_config.sets

    def _access(self, counters: AccessCounters, addr: int,
                write: bool = False) -> None:
        cfg = self.cache_config
        _, set_index, _ = cfg.split(addr)
        prediction = self._predicted[set_index]
        counters.aux_accesses += 1  # prediction table read
        result = self.cache.access(addr, write=write)

        # First phase: predicted way only.
        counters.tag_accesses += 1
        counters.way_accesses += 1
        if result.hit and result.way == prediction:
            counters.cache_hits += 1
        else:
            # Mispredict (or miss): second phase probes the remaining
            # ways in parallel — one extra cycle.
            counters.extra_cycles += 1
            counters.tag_accesses += cfg.ways - 1
            counters.way_accesses += cfg.ways - 1
            if result.hit:
                counters.cache_hits += 1
            else:
                counters.cache_misses += 1
                counters.way_accesses += 1  # refill write
        self._predicted[set_index] = result.way


class WayPredictionDCache(_WayPredictingCache):
    """Way-predicting D-cache."""

    name = "way-prediction"

    def __init__(self, cache_config: CacheConfig = FRV_DCACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            self._access(counters, (base + disp) & 0xFFFFFFFF, is_store)
        return counters


class WayPredictionICache(_WayPredictingCache):
    """Way-predicting I-cache."""

    name = "way-prediction"

    def __init__(self, cache_config: CacheConfig = FRV_ICACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            self._access(counters, addr)
        return counters
