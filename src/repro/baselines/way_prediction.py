"""Inoue, Ishihara & Murakami [9]: way-predicting set-associative cache.

A per-set MRU table predicts the way; first cycle accesses only the
predicted way's tag + data.  On a correct prediction the access costs
one tag and one way.  On a misprediction a second cycle probes the
remaining ways (their tags and data), costing one extra cycle — the
performance loss the paper's MAB technique avoids.

The prediction table never influences which line the cache loads —
every access touches the cache exactly once — so the fast path batches
the whole address stream through
:meth:`SetAssociativeCache.access_fast_batch` and then replays the
packed (hit, way) results through a light integer loop that evolves
the MRU table and counts second-phase probes
(:meth:`replay_counters`, shareable across architectures by the
replay engine since it never touches the cache itself).
:meth:`process_reference` keeps the per-access object-API loop as the
executable specification.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.replay.columns import SharedPass, columns_for_stream
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace


class _WayPredictingCache:
    """Shared machinery for I/D way-predicting caches."""

    replay_batchable = True

    def __init__(self, cache_config: CacheConfig, policy: str):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        # MRU prediction table: one way number per set.
        self._predicted = [0] * cache_config.sets

    # -- fast engine ----------------------------------------------------

    def replay_counters(self, cols, shared: SharedPass) -> AccessCounters:
        """Evolve the MRU table over the shared packed results."""
        counters = AccessCounters()
        cache = self.cache
        nways = cache.ways
        sets = cols.cache_streams(cache.offset_bits, cache.index_bits)[1]

        pred = self._predicted
        hits = 0
        misses = 0
        second = 0  # accesses that needed the second phase
        for set_index, p in zip(sets, shared.packed):
            way = (p >> 1) & 0xFF
            if p & 1:
                hits += 1
                if pred[set_index] != way:
                    second += 1
            else:
                misses += 1
                second += 1
            pred[set_index] = way

        n = cols.n
        counters.accesses = n
        counters.aux_accesses = n  # prediction table read per access
        counters.cache_hits = hits
        counters.cache_misses = misses
        counters.extra_cycles = second
        # First phase always probes the predicted way; the second phase
        # probes the remaining ways in parallel; a miss adds one refill
        # way write.
        counters.tag_accesses = n + second * (nways - 1)
        counters.way_accesses = n + second * (nways - 1) + misses
        cols.apply_load_store(counters)
        return counters

    def process(self, stream) -> AccessCounters:
        cols = columns_for_stream(stream)
        cache = self.cache
        tags, sets = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )
        packed = cache.access_fast_batch(tags, sets, cols.writes())
        return self.replay_counters(cols, SharedPass(packed))

    # -- executable specification ---------------------------------------

    def _access(self, counters: AccessCounters, addr: int,
                write: bool = False) -> None:
        cfg = self.cache_config
        _, set_index, _ = cfg.split(addr)
        prediction = self._predicted[set_index]
        counters.aux_accesses += 1  # prediction table read
        result = self.cache.access(addr, write=write)

        # First phase: predicted way only.
        counters.tag_accesses += 1
        counters.way_accesses += 1
        if result.hit and result.way == prediction:
            counters.cache_hits += 1
        else:
            # Mispredict (or miss): second phase probes the remaining
            # ways in parallel — one extra cycle.
            counters.extra_cycles += 1
            counters.tag_accesses += cfg.ways - 1
            counters.way_accesses += cfg.ways - 1
            if result.hit:
                counters.cache_hits += 1
            else:
                counters.cache_misses += 1
                counters.way_accesses += 1  # refill write
        self._predicted[set_index] = result.way


class WayPredictionDCache(_WayPredictingCache):
    """Way-predicting D-cache."""

    name = "way-prediction"

    def __init__(self, cache_config: CacheConfig = FRV_DCACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            self._access(counters, (base + disp) & 0xFFFFFFFF, is_store)
        return counters


class WayPredictionICache(_WayPredictingCache):
    """Way-predicting I-cache."""

    name = "way-prediction"

    def __init__(self, cache_config: CacheConfig = FRV_ICACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            self._access(counters, addr)
        return counters
