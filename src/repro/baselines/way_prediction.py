"""Inoue, Ishihara & Murakami [9]: way-predicting set-associative cache.

A per-set MRU table predicts the way; first cycle accesses only the
predicted way's tag + data.  On a correct prediction the access costs
one tag and one way.  On a misprediction a second cycle probes the
remaining ways (their tags and data), costing one extra cycle — the
performance loss the paper's MAB technique avoids.

The prediction table never influences which line the cache loads —
every access touches the cache exactly once — so the fast path batches
the whole address stream through
:meth:`SetAssociativeCache.access_fast_batch` and then derives the MRU
table's behaviour from the packed (hit, way) results *without any
per-access loop* (:meth:`replay_counters`, shareable across
architectures by the replay engine since it never touches the cache
itself): a stable sort groups accesses by set, so each access's
predicted way is simply the previous resident way *within its set
group* — numpy shifts and a segment-boundary mask replace the MRU
table evolution entirely.  :meth:`process_reference` keeps the
per-access object-API loop as the executable specification.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.replay.columns import SharedPass, columns_for_stream
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace


class _WayPredictingCache:
    """Shared machinery for I/D way-predicting caches."""

    replay_batchable = True

    def __init__(self, cache_config: CacheConfig, policy: str):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        # MRU prediction table: one way number per set.
        self._predicted = [0] * cache_config.sets

    # -- fast engine ----------------------------------------------------

    def replay_counters(self, cols, shared: SharedPass) -> AccessCounters:
        """Derive the MRU table's behaviour from the shared results.

        The prediction for an access is the resident way of the
        previous access *to the same set* (or the table's entry for
        sets not yet touched).  A stable sort by set index makes that
        neighbour adjacent, so the whole derivation — including the
        final MRU table state for chunked processing — is numpy
        shifts and boolean reductions; no per-access loop.
        """
        counters = AccessCounters()
        cache = self.cache
        nways = cache.ways
        n = cols.n
        if n == 0:
            cols.apply_load_store(counters)
            return counters
        sets = cols.cache_arrays(cache.offset_bits, cache.index_bits)["sets"]

        order = np.argsort(sets, kind="stable")
        s_sorted = sets[order]
        w_sorted = shared.ways[order]
        h_sorted = shared.hit[order]
        boundary = s_sorted[1:] != s_sorted[:-1]

        # Predicted way = previous resident way within the set group;
        # group heads read the carried-in MRU table instead.
        pred_table = np.asarray(self._predicted, dtype=np.int64)
        predicted = np.empty(n, dtype=np.int64)
        predicted[1:] = w_sorted[:-1]
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = boundary
        predicted[first] = pred_table[s_sorted[first]]

        # Second phase fires on every miss and every mispredicted hit.
        correct = h_sorted & (predicted == w_sorted)
        second = n - int(correct.sum())
        hits = shared.hit_count
        misses = n - hits

        # Carry the MRU table forward: each touched set ends at its
        # group's last resident way (exactly what the scalar loop's
        # final writes leave behind).
        last = np.empty(n, dtype=bool)
        last[:-1] = boundary
        last[-1] = True
        pred_table[s_sorted[last]] = w_sorted[last]
        self._predicted = pred_table.tolist()

        counters.accesses = n
        counters.aux_accesses = n  # prediction table read per access
        counters.cache_hits = hits
        counters.cache_misses = misses
        counters.extra_cycles = second
        # First phase always probes the predicted way; the second phase
        # probes the remaining ways in parallel; a miss adds one refill
        # way write.
        counters.tag_accesses = n + second * (nways - 1)
        counters.way_accesses = n + second * (nways - 1) + misses
        cols.apply_load_store(counters)
        return counters

    def process(self, stream) -> AccessCounters:
        cols = columns_for_stream(stream)
        cache = self.cache
        tags, sets = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )
        packed = cache.access_fast_batch(tags, sets, cols.writes())
        return self.replay_counters(cols, SharedPass(packed))

    # -- executable specification ---------------------------------------

    def _access(self, counters: AccessCounters, addr: int,
                write: bool = False) -> None:
        cfg = self.cache_config
        _, set_index, _ = cfg.split(addr)
        prediction = self._predicted[set_index]
        counters.aux_accesses += 1  # prediction table read
        result = self.cache.access(addr, write=write)

        # First phase: predicted way only.
        counters.tag_accesses += 1
        counters.way_accesses += 1
        if result.hit and result.way == prediction:
            counters.cache_hits += 1
        else:
            # Mispredict (or miss): second phase probes the remaining
            # ways in parallel — one extra cycle.
            counters.extra_cycles += 1
            counters.tag_accesses += cfg.ways - 1
            counters.way_accesses += cfg.ways - 1
            if result.hit:
                counters.cache_hits += 1
            else:
                counters.cache_misses += 1
                counters.way_accesses += 1  # refill write
        self._predicted[set_index] = result.way


class WayPredictionDCache(_WayPredictingCache):
    """Way-predicting D-cache."""

    name = "way-prediction"

    def __init__(self, cache_config: CacheConfig = FRV_DCACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            self._access(counters, (base + disp) & 0xFFFFFFFF, is_store)
        return counters


class WayPredictionICache(_WayPredictingCache):
    """Way-predicting I-cache."""

    name = "way-prediction"

    def __init__(self, cache_config: CacheConfig = FRV_ICACHE,
                 policy: str = "lru"):
        super().__init__(cache_config, policy)

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            self._access(counters, addr)
        return counters
