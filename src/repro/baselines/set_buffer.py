"""Yang, Yu & Zhang [14]: lightweight set buffer for data caches.

The set buffer keeps, for a handful of recently touched *sets*, a copy
of that set's tags.  When an access finds its set buffered, the tag
comparison happens against the cheap buffer copy instead of the cache
tag array, and only the resolved way is accessed — with no cycle
penalty on a buffer miss (unlike line/filter buffers).  The paper notes
the technique "cannot exploit inter-cache-line access locality" at the
*address* level: it memoizes per-set tag state, so it keeps paying the
buffer lookup and cannot skip way resolution the way the MAB does.

Accounting (Figure 4's "approach [14]" bars):

* buffer hit + tag match: 0 cache tag reads, 1 way; one buffer probe.
* buffer hit + tag mismatch: the access is a cache miss — full miss
  handling, buffered tag copy updated.
* buffer miss: full parallel access (all tags, all ways for loads) and
  the set's tags are copied into the buffer (LRU replacement).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.sim.trace import DataTrace


class SetBufferDCache:
    """D-cache fronted by an N-entry set buffer.

    The default of two buffered sets reflects the "lightweight"
    sizing of [14] (the technique targets streaming multimedia code
    whose set-wise locality is shallow).
    """

    name = "set-buffer"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        entries: int = 2,
        policy: str = "lru",
    ):
        if entries < 1:
            raise ValueError("set buffer needs at least one entry")
        self.cache_config = cache_config
        self.entries = entries
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.write_buffer = WriteBuffer(cache_config)
        # set_index -> copy of that set's tags (way -> Optional[tag]).
        self._buffer: Dict[int, List[Optional[int]]] = {}
        self._lru: List[int] = []  # set indices, LRU first

    # ------------------------------------------------------------------

    def _snapshot_set(self, set_index: int) -> List[Optional[int]]:
        tags: List[Optional[int]] = []
        for way in range(self.cache_config.ways):
            line = self.cache.line_state(set_index, way)
            tags.append(line.tag if line.valid else None)
        return tags

    def _touch(self, set_index: int) -> None:
        if set_index in self._lru:
            self._lru.remove(set_index)
        self._lru.append(set_index)

    def _allocate(self, set_index: int) -> None:
        if set_index not in self._buffer and len(self._buffer) >= self.entries:
            victim = self._lru.pop(0)
            del self._buffer[victim]
        self._buffer[set_index] = self._snapshot_set(set_index)
        self._touch(set_index)

    # ------------------------------------------------------------------

    def process(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache

        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            addr = (base + disp) & 0xFFFFFFFF
            tag, set_index, _ = cfg.split(addr)
            counters.aux_accesses += 1  # the buffer is probed every access
            if is_store:
                self.write_buffer.push(addr)

            buffered = self._buffer.get(set_index)
            if buffered is not None and tag in buffered:
                # Buffer hit with matching tag: single-way access, no
                # cache tag reads.
                result = cache.access(addr, write=is_store)
                assert result.hit, "buffered tag must be cache-resident"
                counters.cache_hits += 1
                counters.way_accesses += 1
                self._touch(set_index)
                continue

            # Either the set is not buffered, or the buffered tags do
            # not contain this address (which implies a cache miss,
            # since the buffer mirrors the set's tags exactly).
            result = cache.access(addr, write=is_store)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += 1 if is_store else cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += (1 if is_store else cfg.ways) + 1
            self._allocate(set_index)

        counters.notes["set_buffer_entries"] = self.entries
        return counters
