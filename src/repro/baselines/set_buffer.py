"""Yang, Yu & Zhang [14]: lightweight set buffer for data caches.

The set buffer keeps, for a handful of recently touched *sets*, a copy
of that set's tags.  When an access finds its set buffered, the tag
comparison happens against the cheap buffer copy instead of the cache
tag array, and only the resolved way is accessed — with no cycle
penalty on a buffer miss (unlike line/filter buffers).  The paper notes
the technique "cannot exploit inter-cache-line access locality" at the
*address* level: it memoizes per-set tag state, so it keeps paying the
buffer lookup and cannot skip way resolution the way the MAB does.

Accounting (Figure 4's "approach [14]" bars):

* buffer hit + tag match: 0 cache tag reads, 1 way; one buffer probe.
* buffer hit + tag mismatch: the access is a cache miss — full miss
  handling, buffered tag copy updated.
* buffer miss: full parallel access (all tags, all ways for loads) and
  the set's tags are copied into the buffer (LRU replacement).

:meth:`SetBufferDCache.process` is the fast engine: vectorized address
splitting, packed-int :meth:`SetAssociativeCache.access_fast` calls
and inlined buffer allocate/touch over the same ``_buffer``/``_lru``
structures; :meth:`process_reference` keeps the object-API loop as the
executable specification.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.sim.trace import DataTrace


class SetBufferDCache:
    """D-cache fronted by an N-entry set buffer.

    The default of two buffered sets reflects the "lightweight"
    sizing of [14] (the technique targets streaming multimedia code
    whose set-wise locality is shallow).
    """

    name = "set-buffer"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        entries: int = 2,
        policy: str = "lru",
    ):
        if entries < 1:
            raise ValueError("set buffer needs at least one entry")
        self.cache_config = cache_config
        self.entries = entries
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.write_buffer = WriteBuffer(cache_config)
        # set_index -> copy of that set's tags (way -> Optional[tag]).
        self._buffer: Dict[int, List[Optional[int]]] = {}
        self._lru: List[int] = []  # set indices, LRU first

    # ------------------------------------------------------------------

    def _snapshot_set(self, set_index: int) -> List[Optional[int]]:
        tags: List[Optional[int]] = []
        for way in range(self.cache_config.ways):
            line = self.cache.line_state(set_index, way)
            tags.append(line.tag if line.valid else None)
        return tags

    def _touch(self, set_index: int) -> None:
        if set_index in self._lru:
            self._lru.remove(set_index)
        self._lru.append(set_index)

    def _allocate(self, set_index: int) -> None:
        if set_index not in self._buffer and len(self._buffer) >= self.entries:
            victim = self._lru.pop(0)
            del self._buffer[victim]
        self._buffer[set_index] = self._snapshot_set(set_index)
        self._touch(set_index)

    # ------------------------------------------------------------------

    def process(self, trace: DataTrace) -> AccessCounters:
        """Replay ``trace`` and return the access counters (fast engine).

        The cache is accessed once per reference on both buffer paths,
        so every access is one :meth:`access_fast` call; the buffer
        probe, LRU touch and snapshot refresh are inlined over the
        shared ``_buffer``/``_lru`` state (a snapshot is a copy of the
        live flat tag row, with invalid ways as ``None`` exactly like
        the reference's ``line_state`` form).
        """
        counters = AccessCounters()
        cache = self.cache
        nways = cache.ways
        access_fast = cache.access_fast
        ctags = cache._tags
        wbuf_push = self.write_buffer.push
        buffer = self._buffer
        buffer_get = buffer.get
        lru = self._lru
        entries = self.entries

        addr_arr = trace.addr
        addrs = addr_arr.tolist()
        tags = (addr_arr >> cache.tag_shift).tolist()
        sets = ((addr_arr >> cache.offset_bits) & cache.set_mask).tolist()
        stores = trace.store.tolist()

        cache_hits = 0
        cache_misses = 0
        tag_accesses = 0
        way_accesses = 0

        for i in range(len(addrs)):
            tag = tags[i]
            set_index = sets[i]
            is_store = stores[i]
            if is_store:
                wbuf_push(addrs[i])

            buffered = buffer_get(set_index)
            if buffered is not None and tag in buffered:
                # Buffer hit with matching tag: single-way access, no
                # cache tag reads.
                packed = access_fast(tag, set_index, is_store)
                assert packed & 1, "buffered tag must be cache-resident"
                cache_hits += 1
                way_accesses += 1
                if lru[-1] != set_index:
                    lru.remove(set_index)
                    lru.append(set_index)
                continue

            # Either the set is not buffered, or the buffered tags do
            # not contain this address (which implies a cache miss,
            # since the buffer mirrors the set's tags exactly).
            packed = access_fast(tag, set_index, is_store)
            tag_accesses += nways
            if packed & 1:
                cache_hits += 1
                way_accesses += 1 if is_store else nways
            else:
                cache_misses += 1
                way_accesses += (1 if is_store else nways) + 1
            # Allocate/refresh the snapshot (inline _allocate).
            if buffered is None:
                if len(buffer) >= entries:
                    del buffer[lru.pop(0)]
                lru.append(set_index)
            elif lru[-1] != set_index:
                lru.remove(set_index)
                lru.append(set_index)
            buffer[set_index] = [
                t if t >= 0 else None for t in ctags[set_index]
            ]

        n = len(addrs)
        num_stores = int(trace.store.sum())
        counters.accesses = n
        counters.loads = n - num_stores
        counters.stores = num_stores
        counters.aux_accesses = n  # the buffer is probed every access
        counters.cache_hits = cache_hits
        counters.cache_misses = cache_misses
        counters.tag_accesses = tag_accesses
        counters.way_accesses = way_accesses
        counters.notes["set_buffer_entries"] = self.entries
        return counters

    # ------------------------------------------------------------------
    # reference implementation (executable specification)
    # ------------------------------------------------------------------

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        """Replay via the original object-API path (spec for diff tests)."""
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache

        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            addr = (base + disp) & 0xFFFFFFFF
            tag, set_index, _ = cfg.split(addr)
            counters.aux_accesses += 1  # the buffer is probed every access
            if is_store:
                self.write_buffer.push(addr)

            buffered = self._buffer.get(set_index)
            if buffered is not None and tag in buffered:
                # Buffer hit with matching tag: single-way access, no
                # cache tag reads.
                result = cache.access(addr, write=is_store)
                assert result.hit, "buffered tag must be cache-resident"
                counters.cache_hits += 1
                counters.way_accesses += 1
                self._touch(set_index)
                continue

            # Either the set is not buffered, or the buffered tags do
            # not contain this address (which implies a cache miss,
            # since the buffer mirrors the set's tags exactly).
            result = cache.access(addr, write=is_store)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += 1 if is_store else cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += (1 if is_store else cfg.ways) + 1
            self._allocate(set_index)

        counters.notes["set_buffer_entries"] = self.entries
        return counters
