"""Yang, Yu & Zhang [14]: lightweight set buffer for data caches.

The set buffer keeps, for a handful of recently touched *sets*, a copy
of that set's tags.  When an access finds its set buffered, the tag
comparison happens against the cheap buffer copy instead of the cache
tag array, and only the resolved way is accessed — with no cycle
penalty on a buffer miss (unlike line/filter buffers).  The paper notes
the technique "cannot exploit inter-cache-line access locality" at the
*address* level: it memoizes per-set tag state, so it keeps paying the
buffer lookup and cannot skip way resolution the way the MAB does.

Accounting (Figure 4's "approach [14]" bars):

* buffer hit + tag match: 0 cache tag reads, 1 way; one buffer probe.
* buffer hit + tag mismatch: the access is a cache miss — full miss
  handling, buffered tag copy updated.
* buffer miss: full parallel access (all tags, all ways for loads) and
  the set's tags are copied into the buffer (LRU replacement).

:meth:`SetBufferDCache.process` is the fast engine.  The cache is
accessed exactly once per reference on both buffer paths, so the whole
address stream batches through
:meth:`SetAssociativeCache.access_fast_batch` and the buffer's
behaviour is *derived* from the packed results without a per-access
loop (:meth:`replay_counters`, shareable across architectures by the
replay engine): the buffered snapshot of a set always mirrors the live
tag row, so "buffered tag matches" is exactly "the set is buffered and
the access hits", and buffer membership is a pure function of the set
index stream — the LRU set of the last ``entries`` distinct set
indices.  Collapsing the stream into runs of equal set index makes
membership vectorizable (for the default two-entry buffer a run head
is buffered iff its set recurs two runs back); :meth:`process` adds
the state carry (final LRU list + snapshots) for chunked replay.
:meth:`process_reference` keeps the object-API loop as the executable
specification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.replay.columns import DataColumns, SharedPass, columns_for_stream
from repro.sim.trace import DataTrace


class SetBufferDCache:
    """D-cache fronted by an N-entry set buffer.

    The default of two buffered sets reflects the "lightweight"
    sizing of [14] (the technique targets streaming multimedia code
    whose set-wise locality is shallow).
    """

    name = "set-buffer"
    #: Every access touches the cache exactly once regardless of the
    #: buffer outcome, so the replay engine may derive this
    #: architecture's counters from a shared batch pass.
    replay_batchable = True

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        entries: int = 2,
        policy: str = "lru",
    ):
        if entries < 1:
            raise ValueError("set buffer needs at least one entry")
        self.cache_config = cache_config
        self.entries = entries
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.write_buffer = WriteBuffer(cache_config)
        # set_index -> copy of that set's tags (way -> Optional[tag]).
        self._buffer: Dict[int, List[Optional[int]]] = {}
        self._lru: List[int] = []  # set indices, LRU first

    # ------------------------------------------------------------------

    def _snapshot_set(self, set_index: int) -> List[Optional[int]]:
        tags: List[Optional[int]] = []
        for way in range(self.cache_config.ways):
            line = self.cache.line_state(set_index, way)
            tags.append(line.tag if line.valid else None)
        return tags

    def _touch(self, set_index: int) -> None:
        if set_index in self._lru:
            self._lru.remove(set_index)
        self._lru.append(set_index)

    def _allocate(self, set_index: int) -> None:
        if set_index not in self._buffer and len(self._buffer) >= self.entries:
            victim = self._lru.pop(0)
            del self._buffer[victim]
        self._buffer[set_index] = self._snapshot_set(set_index)
        self._touch(set_index)

    # ------------------------------------------------------------------
    # fast engine
    # ------------------------------------------------------------------

    def _derive(
        self, cols: DataColumns, hit: np.ndarray
    ) -> Tuple[AccessCounters, np.ndarray]:
        """Counters from the per-access hit vector (pure derivation).

        The buffered snapshot of a set always mirrors that set's live
        tag row (hits never change tags, other sets can't touch this
        row, and every mismatch path refreshes the snapshot after the
        access), so a buffered-tag match is exactly ``in_buffer & hit``.
        Buffer membership is the LRU set of the last ``entries``
        distinct set indices, which collapses into runs of equal set
        index: every non-head access is buffered; a run head is
        buffered iff its set is among the previous ``entries`` distinct
        run values (adjacent run values always differ, so for the
        default ``entries == 2`` that is ``r[k] == r[k - 2]``, with the
        first ``entries`` run heads consulting the carried-in LRU
        state).  Returns (counters, run values) so callers can carry
        the buffer state forward.
        """
        counters = AccessCounters()
        nways = self.cache_config.ways
        entries = self.entries
        n = cols.n
        counters.notes["set_buffer_entries"] = entries
        if n == 0:
            cols.apply_load_store(counters)
            return counters, np.empty(0, dtype=np.int64)

        cache = self.cache
        sets = cols.sets_array(cache.offset_bits, cache.index_bits)
        head = np.empty(n, dtype=bool)
        head[0] = True
        head[1:] = sets[1:] != sets[:-1]
        head_idx = np.flatnonzero(head)
        runs = sets[head_idx]
        m = len(runs)

        head_in = np.zeros(m, dtype=bool)
        if entries <= 2:
            if entries == 2 and m > 2:
                head_in[2:] = runs[2:] == runs[:-2]
            seeded = min(m, entries)
        else:
            seeded = m
        # The first `entries` run heads (or every head, for larger
        # buffers) consult the carried-in LRU membership directly.
        members = dict.fromkeys(self._lru)
        for k in range(seeded):
            value = int(runs[k])
            if value in members:
                head_in[k] = True
                del members[value]
            members[value] = None
            if len(members) > entries:
                del members[next(iter(members))]

        in_buffer = np.ones(n, dtype=bool)
        in_buffer[head_idx] = head_in
        matched = in_buffer & hit

        store = cols.store_mask
        unmatched_hit = ~matched & hit
        unmatched_miss = ~hit  # a match implies a hit: misses all unmatched
        n_matched = int(matched.sum())
        hit_stores = int((unmatched_hit & store).sum())
        hit_loads = int(unmatched_hit.sum()) - hit_stores
        miss_stores = int((unmatched_miss & store).sum())
        miss_loads = int(unmatched_miss.sum()) - miss_stores

        hits = int(hit.sum())
        counters.accesses = n
        counters.aux_accesses = n  # the buffer is probed every access
        counters.cache_hits = hits
        counters.cache_misses = n - hits
        counters.tag_accesses = nways * (n - n_matched)
        counters.way_accesses = (
            n_matched                        # single-way buffered access
            + hit_stores                     # single-way store
            + hit_loads * nways              # parallel load
            + miss_stores * 2                # store + refill write
            + miss_loads * (nways + 1)       # parallel load + refill
        )
        cols.apply_load_store(counters)
        return counters, runs

    def replay_counters(
        self, cols: DataColumns, shared: SharedPass
    ) -> AccessCounters:
        """Counters from the shared packed results (pure derivation).

        The write buffer and the snapshot refreshes are side state
        only — no counter reads them — so the shared-pass path may
        skip both entirely and leave the controller untouched.
        """
        counters, _ = self._derive(cols, shared.hit)
        return counters

    def process(self, trace: DataTrace) -> AccessCounters:
        """Replay ``trace`` and return the access counters (fast engine).

        Batches the whole stream through the cache kernel, derives the
        buffer's behaviour from the hit vector, and reconstructs the
        end-of-chunk buffer state: the final LRU list is the last
        ``entries`` distinct run values by last occurrence, and each
        surviving snapshot is a copy of the live flat tag row (with
        invalid ways as ``None``, exactly like the reference's
        ``line_state`` form) — the invariant the derivation rests on.
        """
        cols = columns_for_stream(trace)
        cache = self.cache
        # The write buffer only sees the ordered store sub-stream and
        # the cache sees every access regardless of the buffer outcome,
        # so the replays decouple (same argument as the original
        # D-cache): push the stores, then batch the access stream.
        wbuf_push = self.write_buffer.push
        for addr in cols.store_addrs():
            wbuf_push(addr)
        tags, sets = cols.cache_streams(cache.offset_bits, cache.index_bits)
        packed = cache.access_fast_batch(tags, sets, cols.writes())
        shared = SharedPass(packed)
        counters, runs = self._derive(cols, shared.hit)

        # Carry the buffer state: membership/order by last touch.
        members = dict.fromkeys(self._lru)
        for value in runs.tolist():
            members.pop(value, None)
            members[value] = None
        final = list(members)[-self.entries:]
        ctags = cache._tags
        self._lru = final
        self._buffer = {
            s: [t if t >= 0 else None for t in ctags[s]] for s in final
        }
        return counters

    # ------------------------------------------------------------------
    # reference implementation (executable specification)
    # ------------------------------------------------------------------

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        """Replay via the original object-API path (spec for diff tests)."""
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache

        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            addr = (base + disp) & 0xFFFFFFFF
            tag, set_index, _ = cfg.split(addr)
            counters.aux_accesses += 1  # the buffer is probed every access
            if is_store:
                self.write_buffer.push(addr)

            buffered = self._buffer.get(set_index)
            if buffered is not None and tag in buffered:
                # Buffer hit with matching tag: single-way access, no
                # cache tag reads.
                result = cache.access(addr, write=is_store)
                assert result.hit, "buffered tag must be cache-resident"
                counters.cache_hits += 1
                counters.way_accesses += 1
                self._touch(set_index)
                continue

            # Either the set is not buffered, or the buffered tags do
            # not contain this address (which implies a cache miss,
            # since the buffer mirrors the set's tags exactly).
            result = cache.access(addr, write=is_store)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += 1 if is_store else cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += (1 if is_store else cfg.ways) + 1
            self._allocate(set_index)

        counters.notes["set_buffer_entries"] = self.entries
        return counters
