"""Panwar & Rennels [4]: intra-line sequential-flow tag elision.

For instruction fetches that stay within the current cache line and
arrive sequentially, the way is known from the previous access, so no
tag compare is needed and only that way is read.  All other flows —
inter-line sequential, taken branches, returns — pay the full parallel
access.  This is the left-most bar of the paper's Figure 6 and the
I-cache baseline in Figure 8 ("original + approach [4]").
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.sim.fetch import FetchKind, FetchStream


class PanwarICache:
    """I-cache with intra-cache-line sequential-flow optimisation only."""

    name = "panwar"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )

    def process(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        line_mask = ~(cfg.line_bytes - 1) & 0xFFFFFFFF
        seq = int(FetchKind.SEQ)
        last_line = None

        for addr, kind in zip(fetch.addr.tolist(), fetch.kind.tolist()):
            counters.accesses += 1
            line = addr & line_mask
            if kind == seq and line == last_line:
                counters.intra_line_hits += 1
                result = cache.access(addr)
                assert result.hit, "intra-line fetch must hit"
                counters.cache_hits += 1
                counters.way_accesses += 1
            else:
                result = cache.access(addr)
                counters.tag_accesses += cfg.ways
                if result.hit:
                    counters.cache_hits += 1
                    counters.way_accesses += cfg.ways
                else:
                    counters.cache_misses += 1
                    counters.way_accesses += cfg.ways + 1
            last_line = line
        return counters
