"""Panwar & Rennels [4]: intra-line sequential-flow tag elision.

For instruction fetches that stay within the current cache line and
arrive sequentially, the way is known from the previous access, so no
tag compare is needed and only that way is read.  All other flows —
inter-line sequential, taken branches, returns — pay the full parallel
access.  This is the left-most bar of the paper's Figure 6 and the
I-cache baseline in Figure 8 ("original + approach [4]").

Whether a fetch is intra-line depends only on the stream (its kind and
the previous access's line), never on cache state, and the cache is
accessed once per fetch either way.  The fast path therefore reads the
intra-line mask off the columnar pre-split, replays the address stream
through :meth:`SetAssociativeCache.access_fast_batch`, and derives all
counters from the packed hit bits — a pure function of (columns,
packed results) exposed as :meth:`replay_counters` for the shared
multi-architecture replay pass.  :meth:`process_reference` keeps the
per-access object-API loop as the executable specification.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.replay.columns import (
    FetchColumns,
    SharedPass,
    columns_for_stream,
)
from repro.sim.fetch import FetchKind, FetchStream


class PanwarICache:
    """I-cache with intra-cache-line sequential-flow optimisation only."""

    name = "panwar"
    replay_batchable = True

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )

    # -- fast engine ----------------------------------------------------

    def replay_counters(
        self, cols: FetchColumns, shared: SharedPass
    ) -> AccessCounters:
        """Counters from the shared packed results (pure derivation)."""
        counters = AccessCounters()
        n = cols.n
        if n == 0:
            return counters
        cache = self.cache
        nways = cache.ways
        intra = cols.intra_mask(cache.offset_bits, cache.index_bits)
        hit = shared.hit
        if not bool(hit[intra].all()):
            raise AssertionError("intra-line fetch must hit")

        n_intra = int(intra.sum())
        full_hits = shared.hit_count - n_intra
        misses = n - n_intra - full_hits

        counters.accesses = n
        counters.intra_line_hits = n_intra
        counters.cache_hits = n_intra + full_hits
        counters.cache_misses = misses
        counters.tag_accesses = (n - n_intra) * nways
        counters.way_accesses = (
            n_intra + full_hits * nways + misses * (nways + 1)
        )
        return counters

    def process(self, fetch: FetchStream) -> AccessCounters:
        if len(fetch) == 0:
            return AccessCounters()
        cols = columns_for_stream(fetch)
        cache = self.cache
        tags, sets = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )
        packed = cache.access_fast_batch(tags, sets)
        return self.replay_counters(cols, SharedPass(packed))

    # -- executable specification ---------------------------------------

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        line_mask = ~(cfg.line_bytes - 1) & 0xFFFFFFFF
        seq = int(FetchKind.SEQ)
        last_line = None

        for addr, kind in zip(fetch.addr.tolist(), fetch.kind.tolist()):
            counters.accesses += 1
            line = addr & line_mask
            if kind == seq and line == last_line:
                counters.intra_line_hits += 1
                result = cache.access(addr)
                assert result.hit, "intra-line fetch must hit"
                counters.cache_hits += 1
                counters.way_accesses += 1
            else:
                result = cache.access(addr)
                counters.tag_accesses += cfg.ways
                if result.hit:
                    counters.cache_hits += 1
                    counters.way_accesses += cfg.ways
                else:
                    counters.cache_misses += 1
                    counters.way_accesses += cfg.ways + 1
            last_line = line
        return counters
