"""The unmodified ("original") cache architecture.

Every access compares all ways' tags in parallel.  Loads and
instruction fetches also read all data ways in parallel (way selection
happens after tag compare); stores resolve the way first through the
write-back buffer and write a single way (paper Section 4, which is why
the original D-cache's ways-per-access is below 2 in Figure 4).
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace


class OriginalDCache:
    """Baseline D-cache: parallel tag + data access, single-way stores."""

    name = "original"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.write_buffer = WriteBuffer(cache_config)

    def process(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
                self.write_buffer.push((base + disp) & 0xFFFFFFFF)
            else:
                counters.loads += 1
            addr = (base + disp) & 0xFFFFFFFF
            result = cache.access(addr, write=is_store)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += 1 if is_store else cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += (1 if is_store else cfg.ways) + 1
        return counters


class OriginalICache:
    """Baseline I-cache: every fetch reads all tags and all ways."""

    name = "original"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )

    def process(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            result = cache.access(addr)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += cfg.ways + 1
        return counters
