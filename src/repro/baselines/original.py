"""The unmodified ("original") cache architecture.

Every access compares all ways' tags in parallel.  Loads and
instruction fetches also read all data ways in parallel (way selection
happens after tag compare); stores resolve the way first through the
write-back buffer and write a single way (paper Section 4, which is why
the original D-cache's ways-per-access is below 2 in Figure 4).

Both controllers run on the flat ``access_fast`` kernel with
vectorized address splitting and local counter accumulation — the
baseline is replayed once per benchmark in every figure experiment, so
its throughput matters as much as the way-memo controllers'.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace


class OriginalDCache:
    """Baseline D-cache: parallel tag + data access, single-way stores."""

    name = "original"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.write_buffer = WriteBuffer(cache_config)

    def process(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        cache = self.cache
        nways = cache.ways
        access_fast = cache.access_fast
        wbuf_push = self.write_buffer.push

        addr_arr = trace.addr
        addrs = addr_arr.tolist()
        stores = trace.store.tolist()
        tags = (addr_arr >> cache.tag_shift).tolist()
        sets = ((addr_arr >> cache.offset_bits) & cache.set_mask).tolist()

        cache_hits = 0
        cache_misses = 0
        way_accesses = 0

        for i in range(len(addrs)):
            is_store = stores[i]
            if is_store:
                wbuf_push(addrs[i])
            packed = access_fast(tags[i], sets[i], is_store)
            if packed & 1:
                cache_hits += 1
                way_accesses += 1 if is_store else nways
            else:
                cache_misses += 1
                way_accesses += (1 if is_store else nways) + 1

        num_stores = int(trace.store.sum())
        counters.accesses = len(addrs)
        counters.loads = len(addrs) - num_stores
        counters.stores = num_stores
        counters.cache_hits = cache_hits
        counters.cache_misses = cache_misses
        counters.tag_accesses = nways * len(addrs)
        counters.way_accesses = way_accesses
        return counters


class OriginalICache:
    """Baseline I-cache: every fetch reads all tags and all ways."""

    name = "original"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )

    def process(self, fetch: FetchStream) -> AccessCounters:
        counters = AccessCounters()
        cache = self.cache
        nways = cache.ways
        access_fast = cache.access_fast

        tags = (fetch.addr >> cache.tag_shift).tolist()
        sets = (
            (fetch.addr >> cache.offset_bits) & cache.set_mask
        ).tolist()

        cache_hits = 0
        cache_misses = 0
        way_accesses = 0

        for tag, set_index in zip(tags, sets):
            packed = access_fast(tag, set_index, False)
            if packed & 1:
                cache_hits += 1
                way_accesses += nways
            else:
                cache_misses += 1
                way_accesses += nways + 1

        counters.accesses = len(tags)
        counters.cache_hits = cache_hits
        counters.cache_misses = cache_misses
        counters.tag_accesses = nways * len(tags)
        counters.way_accesses = way_accesses
        return counters
