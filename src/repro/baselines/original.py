"""The unmodified ("original") cache architecture.

Every access compares all ways' tags in parallel.  Loads and
instruction fetches also read all data ways in parallel (way selection
happens after tag compare); stores resolve the way first through the
write-back buffer and write a single way (paper Section 4, which is why
the original D-cache's ways-per-access is below 2 in Figure 4).

Both controllers run on the shared ``access_fast_batch`` kernel with
the columnar pre-split from :mod:`repro.replay.columns`; the counters
are a pure function of the columns and the packed per-access results
(:meth:`replay_counters`), which lets the multi-architecture replay
engine share one batch sweep across every batchable architecture.
``process_reference`` keeps the original object-API loops as the
executable specification for the differential tests.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.replay.columns import (
    DataColumns,
    FetchColumns,
    SharedPass,
    columns_for_stream,
)
from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace


class OriginalDCache:
    """Baseline D-cache: parallel tag + data access, single-way stores."""

    name = "original"
    #: The cache access stream is state-independent: the replay engine
    #: may derive this architecture's counters from a shared batch pass.
    replay_batchable = True

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.write_buffer = WriteBuffer(cache_config)

    def replay_counters(
        self, cols: DataColumns, shared: SharedPass
    ) -> AccessCounters:
        """Counters from the shared packed results (pure derivation).

        The write buffer is side state only — no counter reads it —
        so the shared-pass path may skip it entirely.
        """
        counters = AccessCounters()
        nways = self.cache.ways
        n = cols.n
        hit = shared.hit
        num_stores = cols.num_stores
        store_hits = int(hit[cols.store_mask].sum())
        cache_hits = shared.hit_count
        load_hits = cache_hits - store_hits
        store_misses = num_stores - store_hits
        load_misses = (n - num_stores) - load_hits

        counters.accesses = n
        counters.cache_hits = cache_hits
        counters.cache_misses = n - cache_hits
        counters.tag_accesses = nways * n
        counters.way_accesses = (
            store_hits                       # single-way store
            + load_hits * nways              # parallel load
            + store_misses * 2               # store + refill write
            + load_misses * (nways + 1)      # parallel load + refill
        )
        cols.apply_load_store(counters)
        return counters

    def process(self, trace: DataTrace) -> AccessCounters:
        cols = columns_for_stream(trace)
        cache = self.cache
        tags, sets = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )
        # The write buffer only sees the ordered store sub-stream, and
        # the cache sees every access regardless of hit/miss or store
        # flag, so the two replays decouple: push the stores, then run
        # the whole access stream through the shared batch kernel.
        wbuf_push = self.write_buffer.push
        for addr in cols.store_addrs():
            wbuf_push(addr)
        packed = cache.access_fast_batch(tags, sets, cols.writes())
        return self.replay_counters(cols, SharedPass(packed))

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        """Replay via the original object-API path (spec for diff tests)."""
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
                self.write_buffer.push((base + disp) & 0xFFFFFFFF)
            else:
                counters.loads += 1
            addr = (base + disp) & 0xFFFFFFFF
            result = cache.access(addr, write=is_store)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += 1 if is_store else cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += (1 if is_store else cfg.ways) + 1
        return counters


class OriginalICache:
    """Baseline I-cache: every fetch reads all tags and all ways."""

    name = "original"
    replay_batchable = True

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )

    def replay_counters(
        self, cols: FetchColumns, shared: SharedPass
    ) -> AccessCounters:
        """Counters from the shared packed results (pure derivation)."""
        counters = AccessCounters()
        nways = self.cache.ways
        n = cols.n
        cache_hits = shared.hit_count
        cache_misses = n - cache_hits

        counters.accesses = n
        counters.cache_hits = cache_hits
        counters.cache_misses = cache_misses
        counters.tag_accesses = nways * n
        counters.way_accesses = (
            cache_hits * nways + cache_misses * (nways + 1)
        )
        return counters

    def process(self, fetch: FetchStream) -> AccessCounters:
        cols = columns_for_stream(fetch)
        cache = self.cache
        tags, sets = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )
        packed = cache.access_fast_batch(tags, sets)
        return self.replay_counters(cols, SharedPass(packed))

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        """Replay via the original object-API path (spec for diff tests)."""
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        for addr in fetch.addr.tolist():
            counters.accesses += 1
            result = cache.access(addr)
            counters.tag_accesses += cfg.ways
            if result.hit:
                counters.cache_hits += 1
                counters.way_accesses += cfg.ways
            else:
                counters.cache_misses += 1
                counters.way_accesses += cfg.ways + 1
        return counters
