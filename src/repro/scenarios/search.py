"""Scenario search: hunt the generator space for divergent workloads.

``repro search`` runs a seeded hill-climb over the synthetic-generator
parameter space (every registered ``kind`` and a bounded choice grid
per parameter), scoring each candidate workload with one of:

* ``divergence`` — spread in average power (max - min ``total_mw``)
  across the comparison architecture set: the workloads where the
  *choice* of technique matters most;
* ``miss-storm`` — the original cache's miss rate: worst-case miss
  patterns;
* ``mab-thrash`` — the way-memo design's tags-per-access: streams
  that defeat base-register memoization.

The search is fully deterministic: the mutation RNG derives from
``--seed``, candidate generators use a fixed stream seed, evaluation
is the same byte-stable :func:`~repro.api.evaluate.evaluate_many`
everything else uses, and ties never replace the incumbent — so
repeated runs with the same arguments emit byte-identical winning
scenario files (asserted by CI).  The winner is re-evaluated cache-off
before writing, proving the emitted scenario reproduces its score.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.evaluate import evaluate_many
from repro.api.registry import comparison_archs
from repro.api.spec import RunSpec
from repro.experiments.registry import keyed_results
from repro.experiments.reporting import render
from repro.scenarios.scenario import (
    METRICS,
    ArchEntry,
    Scenario,
    average,
)

#: Bounded choice grid per data-side generator kind.  Sizes and stream
#: seeds are pinned by the harness, not searched.
DATA_SPACE: Dict[str, Dict[str, Tuple[Any, ...]]] = {
    "pointers": {
        "num_bases": (1, 2, 4, 8),
        "base_region_bytes": (1 << 12, 1 << 14, 1 << 16),
        "max_disp": (16, 64, 256),
        "large_disp_fraction": (0.0, 0.1, 0.5),
        "store_fraction": (0.0, 0.3, 0.6),
    },
    "markov": {
        "num_regions": (2, 4, 8, 16),
        "region_bytes": (1 << 10, 1 << 12, 1 << 14),
        "p_jump": (0.01, 0.05, 0.2, 0.5),
        "max_disp": (16, 64, 256),
        "store_fraction": (0.0, 0.3),
    },
    "loop-nest": {
        "arrays": (2, 3, 4, 6),
        "inner": (16, 64, 256),
        "array_bytes": (1 << 12, 1 << 14),
        "store_fraction": (0.0, 0.25),
    },
    "pointer-chase": {
        "num_nodes": (256, 1024, 4096, 16384),
        "node_bytes": (8, 16, 32),
        "store_fraction": (0.0, 0.2),
    },
    "phase": {
        "num_phases": (2, 4, 8),
        "hot_bytes": (1 << 8, 1 << 10, 1 << 12),
        "cold_bytes": (1 << 15, 1 << 17),
        "max_disp": (16, 64),
    },
    "context-switch": {
        "processes": (2, 3, 4),
        "quantum": (64, 256, 1024),
        "region_bytes": (1 << 12, 1 << 14),
    },
    "mab-thrash": {
        "mab_tags": (1, 2, 4),
        "mab_sets": (4, 8, 16),
        "spacing_bytes": (1 << 14, 1 << 16),
        "store_fraction": (0.0, 0.2),
    },
}

#: Bounded choice grid per fetch-side generator kind.
FETCH_SPACE: Dict[str, Dict[str, Tuple[Any, ...]]] = {
    "blocks": {
        "block_packets": (2, 6, 10),
        "num_targets": (4, 8, 32),
        "text_bytes": (1 << 12, 1 << 14, 1 << 16),
    },
    "loop-nest": {
        "inner_blocks": (2, 4, 8),
        "inner_iters": (2, 8, 32),
        "num_nests": (2, 4, 8),
        "nest_bytes": (1 << 10, 1 << 12),
    },
    "phase": {
        "num_phases": (2, 4, 8),
        "num_targets": (4, 8),
        "phase_text_bytes": (1 << 12, 1 << 13),
    },
    "mab-thrash": {
        "mab_sets": (4, 8, 16),
        "num_targets": (2, 3, 5),
        "spacing_bytes": (1 << 13, 1 << 15),
    },
}

OBJECTIVES = ("divergence", "miss-storm", "mab-thrash")

#: Stream seed pinned into every candidate (the search RNG mutates
#: *parameters*; candidate streams themselves stay content-addressed).
STREAM_SEED = 1


def _space(cache: str) -> Dict[str, Dict[str, Tuple[Any, ...]]]:
    return DATA_SPACE if cache == "dcache" else FETCH_SPACE


def _size_params(cache: str, kind: str, quick: bool) -> Dict[str, int]:
    n = 4096 if quick else 16_384
    if cache == "dcache":
        return {"num_accesses": n}
    if kind == "mab-thrash":
        return {"num_fetches": n}
    # Fetch generators count blocks; each block is a handful of
    # packets, so divide to keep candidate cost comparable.
    return {"num_blocks": max(n // 8, 64)}


def objective_archs(cache: str, objective: str) -> Tuple[str, ...]:
    if objective == "divergence":
        return comparison_archs(cache)
    if objective == "miss-storm":
        return ("original",)
    if objective == "mab-thrash":
        return ("way-memo-2x8",) if cache == "dcache" \
            else ("way-memo-2x16",)
    raise ValueError(
        f"objective must be one of {OBJECTIVES}, not {objective!r}"
    )


def score_results(objective: str, results) -> float:
    """The scalar score of one candidate's evaluated architectures."""
    if objective == "divergence":
        powers = [METRICS["total_mw"](r) for r in results]
        return max(powers) - min(powers)
    if objective == "miss-storm":
        return average([METRICS["miss_rate"](r) for r in results])
    return average([METRICS["tags_per_access"](r) for r in results])


def candidate_workload(cache: str, kind: str,
                       params: Dict[str, Any], quick: bool) -> str:
    merged = {
        "kind": kind, "seed": STREAM_SEED,
        **_size_params(cache, kind, quick), **params,
    }
    body = ",".join(f"{k}={merged[k]}" for k in sorted(merged))
    return f"synthetic:{body}"


class ScenarioSearch:
    """Seeded hill-climb over one cache side's generator space."""

    def __init__(self, cache: str, objective: str, seed: int,
                 budget: int, workers: Optional[int], quick: bool):
        self.cache = cache
        self.objective = objective
        self.seed = seed
        self.budget = budget
        self.workers = workers
        self.quick = quick
        self.rng = np.random.default_rng(seed)
        self.archs = objective_archs(cache, objective)
        self.space = _space(cache)
        self.evaluations = 0
        self.scores: Dict[str, float] = {}

    # -- candidate evaluation -------------------------------------------

    def _specs(self, workload: str) -> List[RunSpec]:
        return [
            RunSpec(cache=self.cache, arch=arch, workload=workload)
            for arch in self.archs
        ]

    def score(self, kind: str, params: Dict[str, Any],
              use_cache: bool = True) -> Tuple[str, float]:
        workload = candidate_workload(
            self.cache, kind, params, self.quick)
        if workload in self.scores:
            return workload, self.scores[workload]
        results = evaluate_many(
            self._specs(workload), workers=self.workers,
            use_cache=use_cache,
        )
        value = score_results(self.objective, results)
        self.scores[workload] = value
        self.evaluations += 1
        return workload, value

    # -- mutation -------------------------------------------------------

    def _initial(self, kind: str) -> Dict[str, Any]:
        return {
            param: choices[0]
            for param, choices in sorted(self.space[kind].items())
        }

    def _random(self, kind: str) -> Dict[str, Any]:
        return {
            param: choices[int(self.rng.integers(len(choices)))]
            for param, choices in sorted(self.space[kind].items())
        }

    def _mutate(self, kind: str,
                params: Dict[str, Any]) -> Dict[str, Any]:
        names = sorted(self.space[kind])
        mutated = dict(params)
        count = 1 + int(self.rng.integers(2))  # flip 1 or 2 params
        for index in self.rng.choice(
                len(names), size=min(count, len(names)),
                replace=False):
            param = names[int(index)]
            choices = [
                value for value in self.space[kind][param]
                if value != mutated[param]
            ]
            if choices:
                mutated[param] = choices[
                    int(self.rng.integers(len(choices)))
                ]
        return mutated

    # -- the climb ------------------------------------------------------

    def run(self, log=lambda message: None):
        """Hill-climb under the budget; return (kind, params, score)."""
        best: Optional[Tuple[str, Dict[str, Any], float]] = None
        # Seed the climb with every kind's baseline candidate.
        for kind in sorted(self.space):
            if self.evaluations >= self.budget:
                break
            params = self._initial(kind)
            workload, value = self.score(kind, params)
            log(f"  [{self.evaluations}/{self.budget}] "
                f"{value:10.4f}  {workload}")
            if best is None or value > best[2]:
                best = (kind, params, value)
        assert best is not None, "budget too small to seed the search"
        while self.evaluations < self.budget:
            if self.rng.random() < 0.25:
                kind = sorted(self.space)[
                    int(self.rng.integers(len(self.space)))
                ]
                params = self._random(kind)
            else:
                kind = best[0]
                params = self._mutate(kind, best[1])
            workload, value = self.score(kind, params)
            log(f"  [{self.evaluations}/{self.budget}] "
                f"{value:10.4f}  {workload}")
            if value > best[2]:
                best = (kind, params, value)
        return best

    # -- the emitted scenario -------------------------------------------

    def winning_scenario(self, kind: str, params: Dict[str, Any],
                         value: float) -> Scenario:
        workload = candidate_workload(
            self.cache, kind, params, self.quick)
        name = (
            f"search-{self.cache}-{self.objective}-s{self.seed}"
        )
        description = (
            f"Found by `repro search --cache {self.cache} "
            f"--objective {self.objective} --seed {self.seed} "
            f"--budget {self.budget}"
            + (" --quick" if self.quick else "")
            + f"`: score {value:.6f} over {len(self.archs)} "
            f"architecture(s) after {self.evaluations} evaluations."
        )
        return Scenario(
            name=name,
            title=(
                f"Scenario search winner: {self.objective} "
                f"({self.cache})"
            ),
            description=description,
            architectures=(
                (self.cache, tuple(
                    ArchEntry(arch=arch) for arch in self.archs
                )),
            ),
            workloads=(workload,),
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro search",
        description=(
            "Search the synthetic-generator space for a scenario "
            "maximizing an objective; emits the winner as a "
            "reloadable scenario file."
        ),
    )
    parser.add_argument("--cache", choices=("dcache", "icache"),
                        default="dcache")
    parser.add_argument("--objective", choices=OBJECTIVES,
                        default="divergence")
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--budget", type=int, default=24,
                        help="candidate evaluation budget")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", type=Path, default=None,
                        help="output scenario file "
                             "(default <scenario-name>.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small streams + budget cap (CI smoke)")
    args = parser.parse_args(argv)
    if args.budget < 1:
        parser.error("--budget must be >= 1")
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    budget = min(args.budget, 8) if args.quick else args.budget

    search = ScenarioSearch(
        cache=args.cache, objective=args.objective, seed=args.seed,
        budget=budget, workers=args.workers or None,
        quick=args.quick,
    )
    print(
        f"searching {args.cache} for {args.objective} "
        f"(seed {args.seed}, budget {budget}, "
        f"{len(search.archs)} archs/candidate)"
    )
    kind, params, value = search.run(log=print)
    scenario = search.winning_scenario(kind, params, value)
    workload = scenario.workloads[0]

    # Re-evaluate the winner cache-off: the emitted file must
    # reproduce its score from nothing but its own bytes.
    fresh = evaluate_many(
        scenario.specs(), workers=args.workers or None,
        use_cache=False,
    )
    fresh_score = score_results(args.objective, fresh)
    if f"{fresh_score:.9g}" != f"{value:.9g}":
        print(
            f"error: winner failed re-evaluation: search score "
            f"{value:.9g} != fresh score {fresh_score:.9g}",
            file=sys.stderr,
        )
        return 1

    out = args.out or Path(f"{scenario.name}.json")
    out.write_text(scenario.canonical_json())
    print(f"\nwinner: {workload}")
    print(f"score:  {value:.6f} ({args.objective}, re-verified)")
    print(f"wrote:  {out}")
    print()
    print(render(scenario.tabulate(
        keyed_results(scenario.specs(), fresh)
    )))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
