"""Declarative scenarios: experiment definitions as data.

A *scenario* is a JSON file naming a workload mix, an architecture set
(optionally with per-architecture parameter sweeps), the simulation
models and a list of expected invariants.  Scenarios load as
first-class experiments (``scenario:<name>`` in the registry, so
``repro run scenario:thrash-adversarial`` works locally and over the
service), expand to plain :class:`~repro.api.spec.RunSpec` batches
(``repro eval @scenario.json``), and round-trip losslessly through
their canonical serialization — file → :class:`Scenario` → file is
byte-identical for every shipped scenario.

:mod:`repro.scenarios.search` hunts the synthetic-generator parameter
space for scenarios that maximize a scored objective (energy
divergence between techniques, worst-case miss patterns) and emits
the winner as a reloadable scenario file.
"""

from repro.scenarios.scenario import (
    METRICS,
    SCENARIO_SCHEMA_VERSION,
    ArchEntry,
    Scenario,
    ScenarioError,
    ScenarioInvariantError,
    scenario_experiment,
)
from repro.scenarios.library import (
    SCENARIO_DIR_ENV,
    load_scenario_file,
    load_shipped,
    register_scenario,
    scenario_dir,
    shipped_scenario_names,
)

__all__ = [
    "METRICS",
    "SCENARIO_DIR_ENV",
    "SCENARIO_SCHEMA_VERSION",
    "ArchEntry",
    "Scenario",
    "ScenarioError",
    "ScenarioInvariantError",
    "load_scenario_file",
    "load_shipped",
    "register_scenario",
    "scenario_dir",
    "scenario_experiment",
    "shipped_scenario_names",
]
