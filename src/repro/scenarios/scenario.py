"""The versioned declarative scenario format.

A scenario document looks like::

    {
      "scenario_version": 1,
      "name": "thrash-adversarial",
      "title": "Adversarial MAB thrash",
      "description": "...",
      "architectures": {
        "dcache": [
          "original",
          {"arch": "way-memo", "params": {"tag_entries": 2}},
          {"arch": "way-memo",
           "sweep": {"index_entries": [4, 8, 16]}}
        ]
      },
      "workloads": ["synthetic:kind=mab-thrash,num_accesses=8000"],
      "engine": "fast",
      "technology": "frv",
      "invariants": [
        {"kind": "no_slowdown", "cache": "dcache", "arch": "original"}
      ]
    }

Validation is eager and total: unknown fields at any level, a bad
schema version, unknown metrics or invariant kinds, and architecture
or workload names the registry rejects all fail at load time with the
offending field named — never inside a worker.  ``to_dict`` emits the
canonical form (sorted sweep axes, plain strings for parameter-less
entries), and every shipped file is stored canonically, so
``file → Scenario → canonical_json()`` is byte-identical.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.result import RunResult
from repro.api.spec import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult

#: Version of the scenario document layout.
SCENARIO_SCHEMA_VERSION = 1

#: The sides a scenario may target, in canonical order.
_SIDES = ("dcache", "icache")

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]*$")


class ScenarioError(ValueError):
    """A scenario document failed validation."""


class ScenarioInvariantError(RuntimeError):
    """A scenario's declared invariant does not hold on the results."""


#: Metrics an invariant (and the scenario table) may reference, each a
#: pure function of one :class:`RunResult`.
METRICS: Dict[str, Callable[[RunResult], float]] = {
    "total_mw": lambda r: r.power.total_mw,
    "mab_hit_rate": lambda r: r.counters.mab_hit_rate,
    "cache_hit_rate": lambda r: r.counters.cache_hit_rate,
    "tags_per_access": lambda r: r.counters.tags_per_access,
    "ways_per_access": lambda r: r.counters.ways_per_access,
    "miss_rate": lambda r: (
        r.counters.cache_misses / r.counters.accesses
        if r.counters.accesses else 0.0
    ),
    "extra_cycles": lambda r: float(r.counters.extra_cycles),
    "slowdown_pct": lambda r: (
        100.0 * r.counters.extra_cycles / r.cycles if r.cycles else 0.0
    ),
}

_INVARIANT_FIELDS = {
    "no_slowdown": {"kind", "cache", "arch"},
    "metric_le": {"kind", "cache", "arch", "metric", "ref_arch",
                  "factor"},
    "metric_range": {"kind", "cache", "arch", "metric", "min", "max"},
}

_INVARIANT_REQUIRED = {
    "no_slowdown": {"kind", "cache", "arch"},
    "metric_le": {"kind", "cache", "arch", "metric", "ref_arch"},
    "metric_range": {"kind", "cache", "arch", "metric"},
}


def _reject_unknown(payload: Mapping[str, Any], allowed: set,
                    what: str) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise ScenarioError(
            f"unknown {what} field(s): {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


def average(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class ArchEntry:
    """One architecture in a scenario, with params and sweep axes."""

    arch: str
    params: Tuple[Tuple[str, Any], ...] = ()
    sweep: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    @classmethod
    def from_value(cls, value: Any) -> "ArchEntry":
        if isinstance(value, str):
            return cls(arch=value)
        if not isinstance(value, Mapping):
            raise ScenarioError(
                f"architecture entries must be strings or objects, "
                f"got {value!r}"
            )
        _reject_unknown(value, {"arch", "params", "sweep"},
                        "architecture entry")
        if "arch" not in value or not isinstance(value["arch"], str):
            raise ScenarioError(
                f"architecture entry needs a string 'arch', "
                f"got {value!r}"
            )
        params = value.get("params") or {}
        sweep = value.get("sweep") or {}
        if not isinstance(params, Mapping):
            raise ScenarioError(
                f"'params' of {value['arch']!r} must be an object"
            )
        if not isinstance(sweep, Mapping):
            raise ScenarioError(
                f"'sweep' of {value['arch']!r} must be an object "
                f"mapping parameter -> list of values"
            )
        axes = []
        for param, values in sorted(sweep.items()):
            if (not isinstance(values, Sequence)
                    or isinstance(values, str) or not values):
                raise ScenarioError(
                    f"sweep axis {param!r} of {value['arch']!r} must "
                    f"be a non-empty list of values"
                )
            axes.append((str(param), tuple(values)))
        overlap = set(params) & {param for param, _ in axes}
        if overlap:
            raise ScenarioError(
                f"parameter(s) {sorted(overlap)} of {value['arch']!r} "
                f"appear in both 'params' and 'sweep'"
            )
        return cls(
            arch=value["arch"],
            params=tuple(sorted((str(k), v) for k, v in params.items())),
            sweep=tuple(axes),
        )

    def points(self) -> List[Dict[str, Any]]:
        """Every concrete parameter dict this entry expands to."""
        base = dict(self.params)
        if not self.sweep:
            return [base]
        names = [param for param, _ in self.sweep]
        axes = [values for _, values in self.sweep]
        return [
            {**base, **dict(zip(names, combo))}
            for combo in itertools.product(*axes)
        ]

    def label(self, point: Mapping[str, Any]) -> str:
        """Display label for one expanded point."""
        if not point:
            return self.arch
        inner = ",".join(f"{k}={v}" for k, v in sorted(point.items()))
        return f"{self.arch}[{inner}]"

    def to_value(self) -> Any:
        """Canonical serialized form (a plain string when possible)."""
        if not self.params and not self.sweep:
            return self.arch
        doc: Dict[str, Any] = {"arch": self.arch}
        if self.params:
            doc["params"] = dict(self.params)
        if self.sweep:
            doc["sweep"] = {
                param: list(values) for param, values in self.sweep
            }
        return doc


@dataclass(frozen=True, eq=False)
class Scenario:
    """One validated scenario: workload mix x architecture set."""

    name: str
    title: str
    architectures: Tuple[Tuple[str, Tuple[ArchEntry, ...]], ...]
    workloads: Tuple[str, ...]
    description: str = ""
    engine: str = "fast"
    technology: str = "frv"
    invariants: Tuple[Mapping[str, Any], ...] = ()
    #: Spec list per (side, entry, point), computed eagerly so a bad
    #: scenario fails at load time; same flat order as ``specs()``.
    _expanded: Tuple[Tuple[str, ArchEntry, Dict[str, Any],
                           Tuple[RunSpec, ...]], ...] = field(
        default=(), repr=False, compare=False)

    def __post_init__(self):
        if not _NAME_RE.match(self.name):
            raise ScenarioError(
                f"scenario name {self.name!r} must match "
                f"{_NAME_RE.pattern}"
            )
        if not self.workloads:
            raise ScenarioError("scenario declares no workloads")
        if not self.architectures:
            raise ScenarioError("scenario declares no architectures")
        expanded = []
        for side, entries in self.architectures:
            if side not in _SIDES:
                raise ScenarioError(
                    f"architectures side must be one of {_SIDES}, "
                    f"not {side!r}"
                )
            if not entries:
                raise ScenarioError(
                    f"architectures[{side!r}] is empty"
                )
            for entry in entries:
                for point in entry.points():
                    # RunSpec construction *is* the deep validation:
                    # arch ids, parameter names, workload syntax.
                    try:
                        specs = tuple(
                            RunSpec(
                                cache=side, arch=entry.arch,
                                workload=workload, params=point,
                                engine=self.engine,
                                technology=self.technology,
                            )
                            for workload in self.workloads
                        )
                    except (KeyError, ValueError) as exc:
                        raise ScenarioError(
                            f"scenario {self.name!r}: invalid design "
                            f"point {entry.label(point)}: {exc}"
                        ) from None
                    expanded.append((side, entry, point, specs))
        object.__setattr__(self, "_expanded", tuple(expanded))
        self._validate_invariants()

    def _entry_labels(self, side: str) -> List[str]:
        return [
            entry.label(point)
            for s, entry, point, _ in self._expanded if s == side
        ]

    def _validate_invariants(self) -> None:
        for inv in self.invariants:
            kind = inv.get("kind")
            if kind not in _INVARIANT_FIELDS:
                raise ScenarioError(
                    f"unknown invariant kind {kind!r}; available: "
                    f"{sorted(_INVARIANT_FIELDS)}"
                )
            _reject_unknown(inv, _INVARIANT_FIELDS[kind],
                            f"invariant ({kind})")
            missing = _INVARIANT_REQUIRED[kind] - set(inv)
            if missing:
                raise ScenarioError(
                    f"invariant ({kind}) is missing field(s): "
                    f"{sorted(missing)}"
                )
            side = inv["cache"]
            sides = {s for s, _ in self.architectures}
            if side not in sides:
                raise ScenarioError(
                    f"invariant references side {side!r} but the "
                    f"scenario only targets {sorted(sides)}"
                )
            if "metric" in inv and inv["metric"] not in METRICS:
                raise ScenarioError(
                    f"unknown invariant metric {inv['metric']!r}; "
                    f"available: {sorted(METRICS)}"
                )
            labels = self._entry_labels(side)
            for key in ("arch", "ref_arch"):
                if key in inv and inv[key] not in labels:
                    raise ScenarioError(
                        f"invariant {key} {inv[key]!r} does not match "
                        f"any {side} design point; have: {labels}"
                    )

    # -- expansion ------------------------------------------------------

    def specs(self) -> List[RunSpec]:
        """Every design point, flat: side -> entry -> point -> workload."""
        return [
            spec
            for _, _, _, specs in self._expanded
            for spec in specs
        ]

    # -- tabulation -----------------------------------------------------

    def tabulate(self, results: ResultMap) -> ExperimentResult:
        """The scenario's table, pure over ``{spec.key(): RunResult}``.

        One aggregated row per design point (averaged over the
        workload mix), then the declared invariants are checked — a
        violated invariant raises :class:`ScenarioInvariantError`
        naming the scenario and the observed value, never a silently
        wrong table.
        """
        table = ExperimentResult(
            name=f"scenario:{self.name}",
            title=self.title,
            columns=(
                "cache", "architecture", "avg_power_mw",
                "avg_mab_hit_rate", "avg_tags_per_access",
                "avg_miss_rate", "avg_slowdown_pct",
            ),
        )
        point_results: Dict[Tuple[str, str], List[RunResult]] = {}
        for side, entry, point, specs in self._expanded:
            rs = [spec_result(results, spec) for spec in specs]
            point_results[(side, entry.label(point))] = rs
            table.add_row(
                cache=side,
                architecture=entry.label(point),
                avg_power_mw=average(
                    [METRICS["total_mw"](r) for r in rs]),
                avg_mab_hit_rate=average(
                    [METRICS["mab_hit_rate"](r) for r in rs]),
                avg_tags_per_access=average(
                    [METRICS["tags_per_access"](r) for r in rs]),
                avg_miss_rate=average(
                    [METRICS["miss_rate"](r) for r in rs]),
                avg_slowdown_pct=average(
                    [METRICS["slowdown_pct"](r) for r in rs]),
            )
        if self.description:
            table.notes.append(self.description)
        table.notes.append(
            f"{len(point_results)} design points x "
            f"{len(self.workloads)} workloads"
        )
        for inv in self.invariants:
            table.notes.append(
                "invariant ok: " + self._check_invariant(
                    inv, point_results)
            )
        return table

    def _check_invariant(
        self, inv: Mapping[str, Any],
        point_results: Mapping[Tuple[str, str], List[RunResult]],
    ) -> str:
        """Check one invariant; return its note or raise."""
        kind = inv["kind"]
        side = inv["cache"]
        rs = point_results[(side, inv["arch"])]
        if kind == "no_slowdown":
            extra = sum(r.counters.extra_cycles for r in rs)
            if extra:
                self._invariant_failed(
                    inv, f"observed {extra} extra cycles"
                )
            return (
                f"no_slowdown({side}/{inv['arch']}): 0 extra cycles"
            )
        metric = METRICS[inv["metric"]]
        value = average([metric(r) for r in rs])
        if kind == "metric_le":
            factor = float(inv.get("factor", 1.0))
            ref = average(
                [metric(r)
                 for r in point_results[(side, inv["ref_arch"])]]
            )
            bound = factor * ref
            if value > bound:
                self._invariant_failed(
                    inv,
                    f"observed {inv['metric']}={value:.6g} > "
                    f"{bound:.6g} ({inv['ref_arch']} x {factor:g})"
                )
            return (
                f"metric_le({side}/{inv['arch']}): "
                f"{inv['metric']}={value:.6g} <= {bound:.6g}"
            )
        # metric_range
        lo = inv.get("min")
        hi = inv.get("max")
        if lo is not None and value < lo:
            self._invariant_failed(
                inv, f"observed {inv['metric']}={value:.6g} < {lo:g}"
            )
        if hi is not None and value > hi:
            self._invariant_failed(
                inv, f"observed {inv['metric']}={value:.6g} > {hi:g}"
            )
        bounds = (
            f"[{'-inf' if lo is None else lo:}, "
            f"{'inf' if hi is None else hi}]"
        )
        return (
            f"metric_range({side}/{inv['arch']}): "
            f"{inv['metric']}={value:.6g} in {bounds}"
        )

    def _invariant_failed(self, inv: Mapping[str, Any],
                          detail: str) -> None:
        raise ScenarioInvariantError(
            f"scenario {self.name!r}: invariant "
            f"{json.dumps(dict(inv), sort_keys=True)} failed: {detail}"
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "scenario_version": SCENARIO_SCHEMA_VERSION,
            "name": self.name,
            "title": self.title,
            "architectures": {
                side: [entry.to_value() for entry in entries]
                for side, entries in self.architectures
            },
            "workloads": list(self.workloads),
            "engine": self.engine,
            "technology": self.technology,
        }
        if self.description:
            doc["description"] = self.description
        if self.invariants:
            doc["invariants"] = [dict(inv) for inv in self.invariants]
        return doc

    def canonical_json(self) -> str:
        """The canonical file serialization (stable bytes)."""
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True
        ) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        if not isinstance(payload, Mapping):
            raise ScenarioError(
                f"scenario document must be an object, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("scenario_version")
        if version != SCENARIO_SCHEMA_VERSION:
            raise ScenarioError(
                f"unsupported scenario_version {version!r} "
                f"(this build speaks {SCENARIO_SCHEMA_VERSION})"
            )
        _reject_unknown(
            payload,
            {"scenario_version", "name", "title", "description",
             "architectures", "workloads", "engine", "technology",
             "invariants"},
            "scenario",
        )
        for key in ("name", "title", "architectures", "workloads"):
            if key not in payload:
                raise ScenarioError(f"scenario is missing {key!r}")
        archs = payload["architectures"]
        if not isinstance(archs, Mapping):
            raise ScenarioError(
                "'architectures' must map cache side -> entry list"
            )
        architectures = tuple(
            (side, tuple(
                ArchEntry.from_value(value) for value in archs[side]
            ))
            for side in _SIDES if side in archs
        )
        if len(architectures) != len(archs):
            bad = sorted(set(archs) - set(_SIDES))
            raise ScenarioError(
                f"architectures side must be one of {_SIDES}, "
                f"not {bad[0]!r}"
            )
        workloads = payload["workloads"]
        if (not isinstance(workloads, Sequence)
                or isinstance(workloads, str)
                or not all(isinstance(w, str) for w in workloads)):
            raise ScenarioError(
                "'workloads' must be a list of workload names"
            )
        invariants = payload.get("invariants") or ()
        if not isinstance(invariants, Sequence):
            raise ScenarioError("'invariants' must be a list")
        return cls(
            name=payload["name"],
            title=payload["title"],
            description=payload.get("description", ""),
            architectures=architectures,
            workloads=tuple(workloads),
            engine=payload.get("engine", "fast"),
            technology=payload.get("technology", "frv"),
            invariants=tuple(dict(inv) for inv in invariants),
        )

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}")
        return cls.from_dict(payload)


def scenario_experiment(scenario: Scenario) -> Experiment:
    """Wrap a scenario as a first-class registry experiment."""
    return Experiment(
        name=f"scenario:{scenario.name}",
        title=scenario.title,
        specs=scenario.specs,
        tabulate=scenario.tabulate,
        category="scenario",
    )
