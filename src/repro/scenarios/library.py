"""The shipped scenario library and its registry bridge.

Shipped scenarios live as canonical JSON files under ``scenarios/`` at
the repository root (override with ``$REPRO_SCENARIO_DIR``); each file
``<name>.json`` declares a scenario whose ``name`` field matches its
stem, and loads as the registry experiment ``scenario:<name>``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple

from repro.experiments import registry
from repro.scenarios.scenario import (
    Scenario,
    ScenarioError,
    scenario_experiment,
)

#: Environment override for the scenario library directory.
SCENARIO_DIR_ENV = "REPRO_SCENARIO_DIR"


def scenario_dir() -> Path:
    """The scenario library directory (env override or repo root)."""
    override = os.environ.get(SCENARIO_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "scenarios"


def shipped_scenario_names() -> Tuple[str, ...]:
    """Sorted stems of every ``*.json`` in the library directory."""
    directory = scenario_dir()
    if not directory.is_dir():
        return ()
    return tuple(sorted(
        path.stem for path in directory.glob("*.json")
    ))


def load_scenario_file(path) -> Scenario:
    """Load and validate one scenario file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}")
    try:
        return Scenario.from_json(text)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}") from None


def load_shipped(name: str) -> Scenario:
    """Load one shipped scenario by name (its file stem)."""
    path = scenario_dir() / f"{name}.json"
    if not path.is_file():
        raise KeyError(
            f"unknown scenario {name!r}; shipped: "
            f"{list(shipped_scenario_names())}"
        )
    scenario = load_scenario_file(path)
    if scenario.name != name:
        raise ScenarioError(
            f"{path}: file stem {name!r} does not match scenario "
            f"name {scenario.name!r}"
        )
    return scenario


def register_scenario(scenario: Scenario) -> registry.Experiment:
    """Register ``scenario`` as ``scenario:<name>`` (idempotent).

    Re-registering the *same* name returns the already-registered
    record, so loading a scenario twice (CLI + registry fallback) is
    harmless; the registry's duplicate-name error still protects
    everything else.
    """
    name = f"scenario:{scenario.name}"
    existing = registry.peek(name)
    if existing is not None:
        return existing
    return registry.register(scenario_experiment(scenario))
