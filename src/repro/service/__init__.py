"""``repro.service`` — simulation as a service.

An HTTP front-end (:mod:`repro.service.server`, stdlib only) and a
thin client (:mod:`repro.service.client`) over the declarative
``RunSpec``/``evaluate_many`` layer.  Batches are deduplicated, fanned
out over the shared worker pool and backed by the persistent result
store, and responses are byte-identical to in-process evaluation —
the service adds transport, never semantics.

CLI: ``repro serve`` starts it, ``repro submit`` talks to it.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    EvaluationServer,
    create_server,
    serve,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "EvaluationServer",
    "ServiceClient",
    "ServiceError",
    "create_server",
    "serve",
]
