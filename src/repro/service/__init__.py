"""``repro.service`` — simulation as a fault-tolerant service.

An HTTP front-end (:mod:`repro.service.server`, stdlib only) over a
durable SQLite job queue (:mod:`repro.service.jobs`) and supervised
worker subprocesses (:mod:`repro.service.workers`), plus a resilient
client (:mod:`repro.service.client`) — batches are deduplicated and
single-flighted, crashed/hung workers are retried with backoff, jobs
survive server restarts, and responses stay byte-identical to
in-process evaluation: the service adds transport and survivability,
never semantics.

CLI: ``repro serve`` starts it, ``repro submit`` talks to it,
``repro jobs`` inspects the queue.
"""

import time

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JOB_DB_ENV, JobQueue, job_db_path
from repro.service.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    EvaluationServer,
    create_server,
    serve,
)
from repro.service.workers import WorkerPool


def wait_for_port_file(path, timeout: float = 30.0) -> int:
    """Poll ``--port-file`` until the server writes its bound port."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            with open(path) as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    raise TimeoutError(
        f"no port appeared in {path} within {timeout:g}s"
    )


def wait_until_ready(
    url: str, timeout: float = 30.0, poll: float = 0.1
) -> dict:
    """Block until ``GET /v1/healthz`` answers (readiness).

    The bounded replacement for sleep-and-hope startup loops in tests
    and CI: polls with a short-timeout, non-retrying client and
    returns the healthz payload, or raises ``TimeoutError`` with the
    last failure after ``timeout`` seconds.  Readiness is *listening
    and answering* — a server that reports honest degradation (say, a
    zero-capacity queue or a read-only store) is still ready; callers
    inspect the returned payload when they need full health.
    """
    client = ServiceClient(url, timeout=min(5.0, timeout), retries=0)
    deadline = time.time() + timeout
    last = "no response"
    while time.time() < deadline:
        try:
            payload = client.healthz()
            if payload.get("status") in ("ok", "degraded"):
                return payload
            last = f"unexpected healthz payload: {payload}"
        except ServiceError as exc:
            last = exc.message
        time.sleep(poll)
    raise TimeoutError(
        f"service at {url} not ready within {timeout:g}s ({last})"
    )


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "EvaluationServer",
    "JOB_DB_ENV",
    "JobQueue",
    "ServiceClient",
    "ServiceError",
    "WorkerPool",
    "create_server",
    "job_db_path",
    "serve",
    "wait_for_port_file",
    "wait_until_ready",
]
