"""Resilient stdlib client for the evaluation service.

Speaks exactly the documents :mod:`repro.service.server` serves:
specs go out as ``RunSpec.to_dict()``, results come back as
schema-versioned ``RunResult`` documents and are re-hydrated through
``RunResult.from_dict`` — so a remote evaluation is interchangeable,
byte for byte, with a local :func:`repro.api.evaluate_many` call.

Every failure surfaces as one exception type, :class:`ServiceError`,
with a ``retryable`` flag instead of a zoo of raw ``urllib`` /
``socket`` exceptions.  Transient failures — dropped connections,
socket timeouts, 5xx responses, load-shedding 503s — are retried
with capped exponential backoff plus jitter, honoring the server's
``Retry-After`` header when it sends one.  Retrying is safe by
construction: every endpoint is deterministic and content-addressed,
so replaying a request can only re-answer the same question.
``wait_job`` keeps polling an async job across transient outages
(including a server restart — jobs are durable), which is what lets
``repro submit/run --url/report --url`` survive a flapping service.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.api import RunResult, RunSpec

from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

SpecLike = Union[RunSpec, Mapping[str, Any]]

#: ``ServiceError.status`` for failures that never got an HTTP status
#: (refused connections, timeouts, resets mid-response).
TRANSPORT_ERROR = 0


class ServiceError(RuntimeError):
    """A failed service interaction (HTTP error or transport fault).

    ``status`` is the HTTP status code, or :data:`TRANSPORT_ERROR`
    (0) when the failure happened below HTTP.  ``retryable`` marks
    faults a retry can plausibly cure (connection errors, timeouts,
    5xx); ``retry_after`` carries the server's ``Retry-After`` hint
    in seconds when one was sent (load-shedding 503s).
    """

    def __init__(
        self,
        status: int,
        message: str,
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ):
        label = "transport error" if status == TRANSPORT_ERROR else status
        super().__init__(f"service returned {label}: {message}")
        self.status = status
        self.message = message
        self.retryable = retryable
        self.retry_after = retry_after


class ServiceHealth(Dict[str, Any]):
    """A typed view over the ``/v1/healthz`` document.

    Still a plain dict (``health["status"]`` keeps working for every
    existing caller), with properties for the degraded-state flags the
    server reports — absent keys read as healthy defaults, so a
    client pointed at an older server degrades gracefully.
    """

    @property
    def ok(self) -> bool:
        return self.get("status") == "ok"

    @property
    def degraded_reasons(self) -> List[str]:
        return list(self.get("degraded") or [])

    @property
    def read_only(self) -> bool:
        return bool(self.get("read_only"))

    @property
    def store_available(self) -> bool:
        return bool(self.get("store"))

    @property
    def store_configured(self) -> bool:
        return bool(self.get("store_configured", self.get("store")))

    @property
    def draining(self) -> bool:
        return bool(self.get("draining"))

    @property
    def queue_depth(self) -> int:
        return int(self.get("queue_depth", 0))

    @property
    def queue_limit(self) -> Optional[int]:
        value = self.get("queue_limit")
        return None if value is None else int(value)

    @property
    def uptime_seconds(self) -> Optional[float]:
        value = self.get("uptime_seconds")
        return None if value is None else float(value)


def _spec_dict(spec: SpecLike) -> Dict[str, Any]:
    if isinstance(spec, RunSpec):
        return spec.to_dict()
    return dict(spec)


def _retry_after_seconds(headers) -> Optional[float]:
    value = headers.get("Retry-After") if headers else None
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://host:8323")``.

    ``retries`` bounds how many times a *retryable* failure is
    re-attempted (so a request is sent at most ``retries + 1``
    times); delays grow as ``backoff * 2**attempt`` capped at
    ``backoff_cap``, with up to ``jitter`` fractional randomization
    so a thundering herd of clients spreads out.  ``retries=0``
    restores fail-fast behavior.
    """

    def __init__(
        self,
        base_url: str = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}",
        timeout: float = 300.0,
        retries: int = 2,
        backoff: float = 0.2,
        backoff_cap: float = 5.0,
        jitter: float = 0.1,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter

    # -- transport -----------------------------------------------------

    def _request_once(
        self, path: str, payload: Optional[Any] = None
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except (json.JSONDecodeError, ValueError):
                message = str(exc)
            raise ServiceError(
                exc.code, message,
                retryable=exc.code >= 500 or exc.code == 429,
                retry_after=_retry_after_seconds(exc.headers),
            ) from None
        except urllib.error.URLError as exc:
            # Refused/unreachable, DNS failures, and socket timeouts
            # wrapped by urllib all land here.
            raise ServiceError(
                TRANSPORT_ERROR, str(exc.reason), retryable=True
            ) from None
        except (socket.timeout, TimeoutError, ConnectionError,
                http.client.HTTPException, OSError) as exc:
            # Resets and truncations mid-response bypass URLError.
            raise ServiceError(
                TRANSPORT_ERROR,
                f"{type(exc).__name__}: {exc}",
                retryable=True,
            ) from None
        except json.JSONDecodeError as exc:
            # A truncated/garbled body from a dying server.
            raise ServiceError(
                TRANSPORT_ERROR,
                f"invalid JSON in response: {exc}",
                retryable=True,
            ) from None

    def _retry_delay(self, attempt: int,
                     hint: Optional[float]) -> float:
        delay = min(self.backoff_cap, self.backoff * (2 ** attempt))
        if hint is not None:
            delay = max(delay, hint)
        if self.jitter:
            delay *= 1.0 + random.random() * self.jitter
        return delay

    def _request(
        self, path: str, payload: Optional[Any] = None
    ) -> Any:
        attempt = 0
        while True:
            try:
                return self._request_once(path, payload)
            except ServiceError as exc:
                if not exc.retryable or attempt >= self.retries:
                    raise
                time.sleep(self._retry_delay(attempt, exc.retry_after))
                attempt += 1

    # -- GET endpoints -------------------------------------------------

    def healthz(self) -> ServiceHealth:
        """``GET /v1/healthz`` as a :class:`ServiceHealth` (a dict
        subclass with typed degraded-state properties)."""
        return ServiceHealth(self._request("/v1/healthz"))

    def metrics(self) -> str:
        """``GET /v1/metrics``: raw Prometheus text exposition."""
        url = f"{self.base_url}/v1/metrics"
        request = urllib.request.Request(url)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                exc.code, str(exc), retryable=exc.code >= 500
            ) from None
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                TRANSPORT_ERROR, str(exc), retryable=True
            ) from None

    def verify_fingerprint(self, remote: Optional[str] = None) -> str:
        """Refuse a version-skewed server (the one defining site).

        A server running different code could answer with numbers
        that differ from a local run — and nothing would look wrong.
        Checks ``remote`` (or ``GET /v1/healthz``'s fingerprint when
        not given) against this client's and raises a 409-coded
        :class:`ServiceError` on mismatch; returns the fingerprint.
        """
        from repro.store import code_fingerprint

        local = code_fingerprint()
        if remote is None:
            remote = self.healthz().get("fingerprint")
        if remote != local:
            raise ServiceError(
                409,
                f"server runs code fingerprint {remote}, this client "
                f"runs {local}; remote results would not be "
                "byte-identical — update one side",
            )
        return local

    def architectures(self) -> Dict[str, Any]:
        return self._request("/v1/architectures")

    def experiments(self) -> List[Dict[str, Any]]:
        """``GET /v1/experiments``: the registered experiment records."""
        return self._request("/v1/experiments")["experiments"]

    def store_stats(self) -> Dict[str, Any]:
        return self._request("/v1/store/stats")

    # -- evaluation ----------------------------------------------------

    def evaluate(self, spec: SpecLike) -> RunResult:
        """``POST /v1/eval``: one spec, one re-hydrated result."""
        return RunResult.from_dict(
            self._request("/v1/eval", _spec_dict(spec))
        )

    def evaluate_many(
        self,
        specs: Sequence[SpecLike],
        workers: Optional[int] = None,
        claim_fingerprint: bool = False,
    ) -> List[RunResult]:
        """``POST /v1/batch``: results in input order, deduped remotely.

        ``claim_fingerprint`` sends this client's code fingerprint
        with the batch, making the server refuse (409) before
        evaluating if it runs different code — closing the window
        between a ``healthz`` pre-check and the batch itself.  Raw
        spec batches (``repro submit``) stay version-agnostic.
        """
        payload = self._batch_payload(
            specs, workers, claim_fingerprint
        )
        response = self._request("/v1/batch", payload)
        return [
            RunResult.from_dict(document)
            for document in response["results"]
        ]

    def _batch_payload(
        self,
        specs: Sequence[SpecLike],
        workers: Optional[int],
        claim_fingerprint: bool,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "specs": [_spec_dict(spec) for spec in specs],
        }
        if claim_fingerprint:
            from repro.store import code_fingerprint

            payload["fingerprint"] = code_fingerprint()
        if workers is not None:
            payload["workers"] = workers
        return payload

    # -- async jobs ----------------------------------------------------

    def submit_async(
        self,
        specs: Sequence[SpecLike],
        claim_fingerprint: bool = False,
    ) -> str:
        """``POST /v1/batch`` with ``mode=async``: returns the job id
        immediately; poll it with :meth:`job_status` /
        :meth:`wait_job`.  The job is durable — it survives a server
        restart and completes under the next incarnation."""
        payload = self._batch_payload(specs, None, claim_fingerprint)
        payload["mode"] = "async"
        return self._request("/v1/batch", payload)["job_id"]

    def job_status(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}``: progress plus partial results."""
        return self._request(f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /v1/jobs``: newest-first job summaries."""
        return self._request("/v1/jobs")["jobs"]

    def wait_job(
        self,
        job_id: str,
        poll: float = 0.25,
        timeout: Optional[float] = None,
        outage_budget: float = 60.0,
        on_progress=None,
    ) -> List[RunResult]:
        """Poll a job to completion; returns results in input order.

        Polling survives transient outages: any retryable failure
        (connection refused while the server restarts, a flapping
        proxy) keeps the loop alive until ``outage_budget`` seconds
        of *consecutive* failure — the job itself is durable, so the
        next healthy poll picks up exactly where the queue is.
        Raises :class:`ServiceError` on a failed job, a vanished job
        id, or ``TimeoutError`` after ``timeout`` seconds.

        ``on_progress`` (when given) receives each polled status
        document — including the retry/backoff telemetry the server
        reports (``attempts``, ``retrying``, ``task_errors`` with
        per-task attempt counts and last errors) — so callers can
        narrate flapping workers instead of polling silently.
        """
        deadline = None if timeout is None else time.time() + timeout
        outage_start: Optional[float] = None
        while True:
            try:
                status = self.job_status(job_id)
                outage_start = None
                if on_progress is not None:
                    on_progress(status)
            except ServiceError as exc:
                if not exc.retryable:
                    raise
                now = time.time()
                if outage_start is None:
                    outage_start = now
                if now - outage_start > outage_budget:
                    raise ServiceError(
                        exc.status,
                        f"job {job_id}: service unreachable for "
                        f"{outage_budget:g}s while polling "
                        f"({exc.message})",
                    ) from None
                status = None
            if status is not None:
                if status["state"] == "done":
                    results = status["results"]
                    return [
                        RunResult.from_dict(results[key])
                        for key in status["keys"]
                    ]
                if status["state"] == "failed":
                    errors = "; ".join(
                        f"{key}: {message}" for key, message
                        in sorted(status["errors"].items())
                    )
                    raise ServiceError(
                        500, f"job {job_id} failed: {errors}"
                    )
            if deadline is not None and time.time() > deadline:
                raise TimeoutError(
                    f"job {job_id} not finished after {timeout:g}s"
                )
            time.sleep(poll)

    def run_experiment(
        self, name: str, workers: Optional[int] = None
    ) -> Dict[str, RunResult]:
        """``POST /v1/experiments/{name}``: evaluate server-side.

        Returns ``{spec.key(): RunResult}`` — the mapping the
        experiment's pure ``tabulate`` consumes, so
        ``get_experiment(name).tabulate(client.run_experiment(name))``
        is byte-identical to running the experiment in-process.  A
        server running different code is refused: its numbers could
        differ from a local run, and the whole point of the remote
        path is that nobody can tell where the table was evaluated.
        """
        from repro.store import code_fingerprint

        payload: Dict[str, Any] = {"fingerprint": code_fingerprint()}
        if workers is not None:
            payload["workers"] = workers
        # The server checks the claimed fingerprint BEFORE evaluating
        # (409 on skew, no wasted computation); the response echo is
        # re-checked here in case an intermediary stripped the claim.
        response = self._request(f"/v1/experiments/{name}", payload)
        self.verify_fingerprint(response.get("fingerprint"))
        return {
            key: RunResult.from_dict(document)
            for key, document in response["results"].items()
        }
