"""Thin stdlib client for the evaluation service.

Speaks exactly the documents :mod:`repro.service.server` serves:
specs go out as ``RunSpec.to_dict()``, results come back as
schema-versioned ``RunResult`` documents and are re-hydrated through
``RunResult.from_dict`` — so a remote evaluation is interchangeable,
byte for byte, with a local :func:`repro.api.evaluate_many` call.
Used by ``repro submit`` and the determinism/CI smoke checks.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.api import RunResult, RunSpec

from repro.service.server import DEFAULT_HOST, DEFAULT_PORT

SpecLike = Union[RunSpec, Mapping[str, Any]]


class ServiceError(RuntimeError):
    """An HTTP error response from the service (status + message)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"service returned {status}: {message}")
        self.status = status
        self.message = message


def _spec_dict(spec: SpecLike) -> Dict[str, Any]:
    if isinstance(spec, RunSpec):
        return spec.to_dict()
    return dict(spec)


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://host:8323")``."""

    def __init__(
        self,
        base_url: str = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}",
        timeout: float = 300.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self, path: str, payload: Optional[Any] = None
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except (json.JSONDecodeError, ValueError):
                message = str(exc)
            raise ServiceError(exc.code, message) from None

    # -- GET endpoints -------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("/v1/healthz")

    def verify_fingerprint(self, remote: Optional[str] = None) -> str:
        """Refuse a version-skewed server (the one defining site).

        A server running different code could answer with numbers
        that differ from a local run — and nothing would look wrong.
        Checks ``remote`` (or ``GET /v1/healthz``'s fingerprint when
        not given) against this client's and raises a 409-coded
        :class:`ServiceError` on mismatch; returns the fingerprint.
        """
        from repro.store import code_fingerprint

        local = code_fingerprint()
        if remote is None:
            remote = self.healthz().get("fingerprint")
        if remote != local:
            raise ServiceError(
                409,
                f"server runs code fingerprint {remote}, this client "
                f"runs {local}; remote results would not be "
                "byte-identical — update one side",
            )
        return local

    def architectures(self) -> Dict[str, Any]:
        return self._request("/v1/architectures")

    def experiments(self) -> List[Dict[str, Any]]:
        """``GET /v1/experiments``: the registered experiment records."""
        return self._request("/v1/experiments")["experiments"]

    def store_stats(self) -> Dict[str, Any]:
        return self._request("/v1/store/stats")

    # -- evaluation ----------------------------------------------------

    def evaluate(self, spec: SpecLike) -> RunResult:
        """``POST /v1/eval``: one spec, one re-hydrated result."""
        return RunResult.from_dict(
            self._request("/v1/eval", _spec_dict(spec))
        )

    def evaluate_many(
        self,
        specs: Sequence[SpecLike],
        workers: Optional[int] = None,
        claim_fingerprint: bool = False,
    ) -> List[RunResult]:
        """``POST /v1/batch``: results in input order, deduped remotely.

        ``claim_fingerprint`` sends this client's code fingerprint
        with the batch, making the server refuse (409) before
        evaluating if it runs different code — closing the window
        between a ``healthz`` pre-check and the batch itself.  Raw
        spec batches (``repro submit``) stay version-agnostic.
        """
        payload: Dict[str, Any] = {
            "specs": [_spec_dict(spec) for spec in specs],
        }
        if claim_fingerprint:
            from repro.store import code_fingerprint

            payload["fingerprint"] = code_fingerprint()
        if workers is not None:
            payload["workers"] = workers
        response = self._request("/v1/batch", payload)
        return [
            RunResult.from_dict(document)
            for document in response["results"]
        ]

    def run_experiment(
        self, name: str, workers: Optional[int] = None
    ) -> Dict[str, RunResult]:
        """``POST /v1/experiments/{name}``: evaluate server-side.

        Returns ``{spec.key(): RunResult}`` — the mapping the
        experiment's pure ``tabulate`` consumes, so
        ``get_experiment(name).tabulate(client.run_experiment(name))``
        is byte-identical to running the experiment in-process.  A
        server running different code is refused: its numbers could
        differ from a local run, and the whole point of the remote
        path is that nobody can tell where the table was evaluated.
        """
        from repro.store import code_fingerprint

        payload: Dict[str, Any] = {"fingerprint": code_fingerprint()}
        if workers is not None:
            payload["workers"] = workers
        # The server checks the claimed fingerprint BEFORE evaluating
        # (409 on skew, no wasted computation); the response echo is
        # re-checked here in case an intermediary stripped the claim.
        response = self._request(f"/v1/experiments/{name}", payload)
        self.verify_fingerprint(response.get("fingerprint"))
        return {
            key: RunResult.from_dict(document)
            for key, document in response["results"].items()
        }
