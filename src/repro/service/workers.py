"""Supervised worker subprocesses for the evaluation service.

Simulation moves off the HTTP request thread: every task claimed from
the :class:`~repro.service.jobs.JobQueue` is evaluated in a **fresh
subprocess** supervised by a pool thread.  The subprocess is the
isolation boundary the request thread never had —

* a **hung** simulation is killed at the per-task wall-clock timeout,
* a **crashed** worker (segfault, ``os._exit``, OOM kill) is detected
  by its exit code,

and in both cases the supervisor just fails the task back to the
queue, which retries it with backoff or dead-letters it.  The parent
process performs no simulation and no store writes in-request;
completed results are written through to the result store
best-effort (a broken store degrades to a logged warning — the
simulation already succeeded and the queue holds the result).

Fault injection (``$REPRO_FAULTS``, see :mod:`repro.testing.faults`)
hooks the subprocess entry: ``worker_crash`` exits hard before
simulating, ``worker_hang`` sleeps past any sane timeout.  The chaos
suite uses these to prove a batch completes byte-identically through
crashes and timeouts.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Optional

from repro.api.parallel import resolve_worker_count, warm_trace_cache
from repro.api.spec import RunSpec
from repro.telemetry import metrics as telemetry
from repro.testing import faults

from repro.service.jobs import JobQueue

#: How long a stopped/hung subprocess gets between SIGTERM and SIGKILL.
_KILL_GRACE = 5.0


def _subprocess_entry(spec_jsons, pipe) -> None:
    """Worker subprocess body: a task group in, result JSONs out.

    Runs with ``use_cache=False`` semantics — the subprocess touches
    neither the in-memory result cache nor the store; persistence is
    the supervisor's job.  A multi-spec group (same workload, fast
    engine, grouped by :meth:`JobQueue.claim_group`) goes through
    ``evaluate_many``, whose replay planner runs the shared workload
    in a single pass.  Fault hooks fire once per subprocess, *before*
    the simulation, so an injected crash never wastes completed
    results.

    The reply is a dict — ``{"results": [...]}`` on success,
    ``{"error": ...}`` on failure — and either shape carries a
    ``"metrics"`` registry snapshot, which the supervisor merges into
    the parent registry: ``/v1/metrics`` reports simulations and
    replay traffic performed by every worker the service ever
    spawned, not just the parent process's.
    """
    # A forked child inherits the parent's registry; drop it so the
    # snapshot shipped back is this worker's own traffic, not a second
    # copy of everything the parent had already counted.
    telemetry.registry().reset()
    try:
        if faults.should_fire("worker_crash"):
            os._exit(3)
        if faults.should_fire("worker_hang"):
            time.sleep(3600.0)
        from repro.api.evaluate import evaluate_many

        results = evaluate_many(
            [RunSpec.from_json(payload) for payload in spec_jsons],
            workers=1,
            use_cache=False,
        )
        pipe.send({
            "results": [result.to_json() for result in results],
            "metrics": telemetry.snapshot(),
        })
    except Exception as exc:   # noqa: BLE001 — report, don't hang
        pipe.send({
            "error": f"{type(exc).__name__}: {exc}",
            "metrics": telemetry.snapshot(),
        })
    finally:
        pipe.close()


class WorkerPool:
    """N supervisor threads, each running one subprocess at a time."""

    def __init__(
        self,
        queue: JobQueue,
        count: Optional[int] = None,
        task_timeout: float = 300.0,
        lease_seconds: Optional[float] = None,
        poll_interval: float = 0.2,
        on_result=None,
        group_limit: int = 8,
    ):
        self.queue = queue
        self.count = resolve_worker_count(count)
        self.task_timeout = task_timeout
        #: Max tasks claimed as one shared-workload replay group (one
        #: fatter subprocess instead of N); clamped to 1 when grouped
        #: replay is disabled via $REPRO_REPLAY.
        self.group_limit = max(1, group_limit)
        #: The lease must outlive a full attempt (timeout + kill
        #: grace), or a *live* worker's task would be double-claimed.
        self.lease_seconds = (
            lease_seconds
            if lease_seconds is not None
            else task_timeout + _KILL_GRACE + 30.0
        )
        self.poll_interval = poll_interval
        #: Called with each completed RunResult JSON (the server uses
        #: this to write results through to the store).
        self.on_result = on_result
        self._threads: list = []
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._idle = threading.Semaphore(0)
        self._context = multiprocessing.get_context()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.count):
            thread = threading.Thread(
                target=self._supervise,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, drain: bool = False, timeout: float = 60.0) -> None:
        """Stop the pool.

        ``drain=True`` first stops claiming *new* tasks and waits (up
        to ``timeout``) for running attempts to finish — the SIGTERM
        path.  ``drain=False`` abandons running subprocesses' results:
        their leased tasks return to the queue on recovery/expiry,
        which is exactly the crash the queue is built to survive.
        """
        if drain:
            self._draining.set()
            deadline = time.time() + timeout
            for thread in self._threads:
                thread.join(max(0.0, deadline - time.time()))
        self._stop.set()
        self.queue.work_available.set()
        for thread in self._threads:
            thread.join(self.poll_interval + _KILL_GRACE)
        self._threads = []
        self._draining.clear()

    # -- supervision ---------------------------------------------------

    def _supervise(self) -> None:
        from repro.replay.engine import replay_enabled

        while not self._stop.is_set():
            if self._draining.is_set():
                return
            limit = self.group_limit if replay_enabled() else 1
            tasks = self.queue.claim_group(self.lease_seconds, limit)
            if not tasks:
                if self._draining.is_set():
                    return
                self.queue.work_available.clear()
                self.queue.work_available.wait(self.poll_interval)
                continue
            try:
                self._run_group(tasks)
            except Exception as exc:   # noqa: BLE001 — keep the pool up
                for task in tasks:
                    self.queue.fail(
                        task, f"supervisor error: "
                              f"{type(exc).__name__}: {exc}"
                    )

    def _run_group(self, tasks) -> None:
        specs = [task.spec for task in tasks]
        # Warm the trace cache in the parent so the (forked) child
        # loads arrays instead of running the ISS; a second worker on
        # the same workload reuses the parent's in-process cache.
        workloads = tuple(dict.fromkeys(
            spec.workload for spec in specs if not spec.is_synthetic
        ))
        if workloads:
            warm_trace_cache(workloads)
        receiver, sender = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_subprocess_entry,
            args=(tuple(task.spec_key for task in tasks), sender),
            daemon=True,
        )
        started = time.monotonic()
        process.start()
        sender.close()
        telemetry.counter(
            "repro_pool_spawns_total",
            "Worker subprocesses spawned by the pool.",
        ).inc()
        process.join(self.task_timeout)
        if process.is_alive():
            self._kill(process)
            receiver.close()
            telemetry.counter(
                "repro_pool_timeouts_total",
                "Worker subprocesses killed at the task timeout.",
            ).inc()
            for task in tasks:
                self.queue.fail(
                    task,
                    f"worker timed out after {self.task_timeout:g}s "
                    f"(attempt {task.attempts})",
                )
            return
        telemetry.histogram(
            "repro_pool_task_seconds",
            "Wall-clock per worker-subprocess task group.",
        ).observe(time.monotonic() - started)
        payload = None
        if receiver.poll():
            try:
                payload = receiver.recv()
            except (EOFError, OSError):
                payload = None
        receiver.close()
        if isinstance(payload, dict):
            # Fold the child's registry into ours before anything
            # else: failed attempts report their traffic too.
            telemetry.merge_snapshot(payload.get("metrics"))
        results = (
            payload.get("results") if isinstance(payload, dict)
            else payload   # pre-metrics shape: a bare result list
        )
        if isinstance(results, list) and len(results) == len(tasks):
            # One result JSON per task, in claim order: complete each
            # — per-task durability is unchanged by the grouping.
            for task, result_json in zip(tasks, results):
                self.queue.complete(task, result_json)
                if self.on_result is not None:
                    self.on_result(result_json)
            return
        if isinstance(payload, dict) and "error" in payload:
            message = payload.get("error") or "unknown worker error"
            for task in tasks:
                self.queue.fail(task, message)
            return
        telemetry.counter(
            "repro_pool_crashes_total",
            "Worker subprocesses that died without reporting.",
        ).inc()
        for task in tasks:
            self.queue.fail(
                task,
                f"worker crashed with exit code {process.exitcode} "
                f"(attempt {task.attempts})",
            )

    @staticmethod
    def _kill(process) -> None:
        process.terminate()
        process.join(_KILL_GRACE)
        if process.is_alive():
            process.kill()
            process.join(_KILL_GRACE)

    # -- diagnostics ---------------------------------------------------

    def describe(self) -> dict:
        return {
            "workers": self.count,
            "task_timeout": self.task_timeout,
            "lease_seconds": self.lease_seconds,
            "alive": sum(1 for t in self._threads if t.is_alive()),
            "draining": self._draining.is_set(),
        }


def log_store_warning(exc: Exception) -> None:
    """Uniform store-degradation warning (parent-side writes).

    Delegates to the evaluate-layer warner, which rate-limits to one
    line per process per distinct failure message.
    """
    from repro.api.evaluate import _warn_store_unavailable

    _warn_store_unavailable(exc)
