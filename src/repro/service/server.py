"""HTTP batch-evaluation service on top of the RunSpec layer.

A zero-dependency (stdlib ``http.server``) front-end that turns this
repository into "many users, one simulator": every request body is the
same declarative JSON the library and ``repro eval`` speak, every
response is the same schema-versioned ``RunResult`` document, and
every answer is **byte-identical** to an in-process evaluation of the
same specs (``python -m repro.api.determinism_check`` proves it on
every CI run — including under injected faults).

Fault tolerance (the part the request thread never had): evaluation
happens in supervised worker subprocesses fed by a **durable SQLite
job queue** (:mod:`repro.service.jobs`, :mod:`repro.service.workers`).
A hung simulation is killed at its wall-clock timeout, a crashed
worker's lease expires and the task is retried with capped
exponential backoff, jobs survive server restarts, and identical
in-flight specs are coalesced into one simulation.  When the queue is
deep the service load-sheds with ``503`` + ``Retry-After`` instead of
queueing without bound, and a failing result store degrades to
store-less evaluation with a logged warning, never a 500.

Routes (all JSON):

* ``GET  /v1/healthz``       — liveness + fingerprint/schemas + queue
  depth/limit, store availability (including read-only and
  store-unavailable degradation), uptime
* ``GET  /v1/metrics``       — Prometheus text exposition: the
  process metrics registry (merged across worker subprocesses) plus
  live queue/store/pool gauges
* ``GET  /v1/reports/``      — the experiment analytics dashboard
  (HTML; per-experiment tables from the store, BENCH_history trend
  chart, store/queue/worker stats)
* ``GET  /v1/architectures`` — the central registry (ids, defaults),
  benchmarks, engines, technologies
* ``GET  /v1/experiments``   — the experiment registry
* ``GET  /v1/store/stats``   — persistent-store shape and traffic
* ``GET  /v1/jobs``          — newest-first job summaries
* ``GET  /v1/jobs/{id}``     — one job: progress + partial results
* ``POST /v1/eval``          — one ``RunSpec`` object → one result
* ``POST /v1/batch``         — ``{"specs": [...]}`` → results in
  input order; with ``"mode": "async"`` → ``202`` + a job id to poll
* ``POST /v1/experiments/{name}`` — evaluate one registered
  experiment's declared design points server-side → results keyed by
  canonical spec JSON; the client tabulates locally

Run it with ``repro serve`` (see :mod:`repro.cli`); talk to it with
:mod:`repro.service.client`, ``repro submit`` or plain ``curl``.
"""

from __future__ import annotations

import json
import signal
import sqlite3
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.api import (
    ENGINES,
    RESULT_SCHEMA_VERSION,
    SPEC_SCHEMA_VERSION,
    TECHNOLOGIES,
    RunSpec,
)
from repro.experiments.registry import (
    catalog_experiments,
    experiment_catalog,
    get_experiment,
)
from repro.store import code_fingerprint, default_store, store_path
from repro.telemetry import metrics as telemetry
from repro.testing import faults
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.suite import SCALABLE_BENCHMARKS

from repro.service.jobs import DONE, FAILED, JobQueue, job_db_path
from repro.service.workers import WorkerPool, log_store_warning

#: Default bind address of ``repro serve`` (loopback: the service has
#: no authentication — put a real proxy in front for anything public).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8323

#: Hard cap on request bodies (a full-grid sweep batch is ~100 KiB).
MAX_BODY_BYTES = 32 << 20

#: Above this many outstanding tasks the service load-sheds new
#: submissions with 503 + Retry-After instead of queueing unboundedly.
DEFAULT_QUEUE_LIMIT = 1024

#: What a load-shedding 503 tells well-behaved clients to wait.
RETRY_AFTER_SECONDS = 2

#: Per-task wall-clock budget before a worker subprocess is killed.
DEFAULT_TASK_TIMEOUT = 300.0


def _registry_payload() -> Dict[str, Any]:
    """The central registry as one JSON document (``/v1/architectures``)."""
    from repro.api import architectures

    listing: Dict[str, List[Dict[str, Any]]] = {}
    for side in ("dcache", "icache"):
        listing[side] = [
            {
                "id": info.id,
                "description": info.description,
                "defaults": dict(info.defaults),
                "uses_mab": info.uses_mab,
                "parametric": info.parametric,
            }
            for info in architectures(side)
        ]
    return {
        "spec_version": SPEC_SCHEMA_VERSION,
        "architectures": listing,
        "benchmarks": list(BENCHMARK_NAMES),
        "scalable_benchmarks": list(SCALABLE_BENCHMARKS),
        "engines": list(ENGINES),
        "technologies": sorted(TECHNOLOGIES),
    }


def _parse_specs(items: List[Any]) -> List[RunSpec]:
    if not all(isinstance(item, dict) for item in items):
        raise ValueError("specs must be JSON objects")
    return [RunSpec.from_dict(item) for item in items]


def _experiments_payload() -> Dict[str, Any]:
    """The experiment registry as one JSON document
    (``/v1/experiments``)."""
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "experiments": [
            {
                "name": experiment.name,
                "title": experiment.title,
                "paper_reference": experiment.paper_reference,
                "category": experiment.category,
                "spec_count": len(experiment.specs()),
            }
            for experiment in catalog_experiments()
        ],
    }


class ServiceHandler(BaseHTTPRequestHandler):
    """One request: decode JSON, dispatch, encode JSON."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                "%s - %s\n" % (self.client_address[0], format % args)
            )

    def _send_json(
        self, status: int, payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self, status: int, message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_json(status, {"error": message}, headers)

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would be parsed as the next request on
            # this keep-alive connection; drop the connection instead.
            self.close_connection = True
            self._send_error_json(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
            return None
        return self.rfile.read(length)

    def _send_text(
        self, status: int, body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    # -- GET routes ----------------------------------------------------

    def _healthz_payload(self) -> Dict[str, Any]:
        """The enriched health document — degraded states included.

        ``status`` is ``"ok"`` only when the service would accept and
        fully serve a submission right now; ``"degraded"`` names the
        reasons in ``degraded``: draining, a full queue, a configured
        store that cannot be opened, or a read-only store.  A healthy
        startup reports ``"ok"``, which is what ``wait_until_ready``
        keys on.
        """
        store = default_store()
        configured = store_path() is not None
        read_only = bool(store is not None and store.read_only)
        depth = self.server.queue.depth()
        reasons = []
        if self.server.draining:
            reasons.append("draining")
        if depth >= self.server.queue_limit:
            reasons.append("queue_full")
        if configured and store is None:
            reasons.append("store_unavailable")
        if read_only:
            reasons.append("store_read_only")
        return {
            "status": "degraded" if reasons else "ok",
            "degraded": reasons,
            "fingerprint": code_fingerprint(),
            "spec_version": SPEC_SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "store": store is not None,
            "store_configured": configured,
            "read_only": read_only,
            "draining": self.server.draining,
            "queue": self.server.queue.stats()["tasks"],
            "queue_depth": depth,
            "queue_limit": self.server.queue_limit,
            "uptime_seconds": round(
                time.monotonic() - self.server.started_monotonic, 3
            ),
            "pool": self.server.pool.describe(),
        }

    def _metrics_text(self) -> str:
        """Prometheus exposition: the merged registry plus live gauges.

        Counters/histograms come from the process registry (including
        everything merged back from worker subprocesses); queue/store/
        pool shape is read at scrape time — cheaper and always current.
        """
        extra = [
            ("repro_service_uptime_seconds", "gauge",
             "Seconds since the server started.",
             time.monotonic() - self.server.started_monotonic, None),
            ("repro_queue_depth", "gauge",
             "Outstanding tasks (pending + running).",
             self.server.queue.depth(), None),
            ("repro_queue_limit", "gauge",
             "Load-shedding threshold for outstanding tasks.",
             self.server.queue_limit, None),
            ("repro_pool_workers", "gauge",
             "Supervisor threads in the worker pool.",
             self.server.pool.count, None),
            ("repro_pool_alive", "gauge",
             "Supervisor threads currently alive.",
             self.server.pool.describe()["alive"], None),
        ]
        queue_stats = self.server.queue.stats()
        for state, count in queue_stats["tasks"].items():
            extra.append((
                "repro_queue_tasks", "gauge",
                "Queue tasks by state.", count, {"state": state},
            ))
        store = default_store()
        if store is not None:
            try:
                stats = store.stats()
            except (sqlite3.Error, OSError):
                stats = {}
            for key, metric in (
                ("entries", "repro_store_entries"),
                ("entries_current_code",
                 "repro_store_entries_current_code"),
                ("file_bytes", "repro_store_file_bytes"),
            ):
                if key in stats:
                    extra.append((
                        metric, "gauge",
                        f"Result store {key.replace('_', ' ')}.",
                        stats[key], None,
                    ))
            for key in ("hits", "misses", "puts", "evictions",
                        "quarantines"):
                value = stats.get(f"lifetime_{key}")
                if value is not None:
                    extra.append((
                        f"repro_store_lifetime_{key}_total",
                        "counter",
                        f"Lifetime store {key} across all processes.",
                        value, None,
                    ))
        return telemetry.render_prometheus(extra)

    def _dashboard_html(self) -> str:
        from repro.telemetry.dashboard import render_dashboard

        return render_dashboard(
            store=default_store(),
            queue_stats=self.server.queue.stats()["tasks"],
            pool_stats=self.server.pool.describe(),
            service_info={
                "fingerprint": code_fingerprint(),
                "result_schema": RESULT_SCHEMA_VERSION,
                "uptime_seconds": round(
                    time.monotonic() - self.server.started_monotonic, 1
                ),
                "draining": self.server.draining,
            },
        )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/v1/healthz":
            self._send_json(200, self._healthz_payload())
        elif self.path == "/v1/metrics":
            self._send_text(
                200, self._metrics_text(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif self.path in ("/v1/reports", "/v1/reports/"):
            self._send_text(
                200, self._dashboard_html(),
                "text/html; charset=utf-8",
            )
        elif self.path == "/v1/architectures":
            self._send_json(200, _registry_payload())
        elif self.path == "/v1/experiments":
            self._send_json(200, _experiments_payload())
        elif self.path == "/v1/store/stats":
            store = default_store()
            if store is None:
                self._send_json(200, {"enabled": False})
            else:
                self._send_json(200, {"enabled": True, **store.stats()})
        elif self.path == "/v1/jobs":
            self._send_json(200, {
                "jobs": self.server.queue.list_jobs(),
                "queue": self.server.queue.stats(),
            })
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/"):]
            status = self.server.queue.job_status(job_id)
            if status is None:
                self._send_error_json(
                    404, f"unknown job {job_id!r}"
                )
            else:
                self._send_json(200, status)
        else:
            self._send_error_json(404, f"unknown route {self.path!r}")

    # -- POST routes ---------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if faults.should_fire("http_error"):
            self._send_error_json(
                500, "injected fault: http_error"
            )
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"invalid JSON: {exc}")
            return
        if self.path == "/v1/eval":
            self._handle_eval(payload)
        elif self.path == "/v1/batch":
            self._handle_batch(payload)
        elif self.path.startswith("/v1/experiments/"):
            name = self.path[len("/v1/experiments/"):]
            self._handle_experiment(name, payload)
        else:
            self._send_error_json(404, f"unknown route {self.path!r}")

    def _parse_workers(self, payload: Dict[str, Any]) -> Optional[int]:
        """Validate the request's ``workers`` field (kept for wire
        compatibility; concurrency is owned by the server's worker
        pool now, so the value is advisory and unused).

        Raises ``ValueError`` (for a 400) on non-integer values.
        """
        workers = payload.get("workers")
        if workers is not None and not isinstance(workers, int):
            raise ValueError("workers must be an integer")
        return workers

    def _refuse_fingerprint_skew(self, payload: Dict[str, Any]) -> bool:
        """409 a mismatched client fingerprint claim BEFORE evaluating.

        The claim is optional (raw spec batches from `repro submit`
        are version-agnostic by design), but when a client sends one
        — the byte-identity paths do — skew is refused atomically
        with the evaluation, with no wasted computation.  Returns
        True when the request was answered.
        """
        claimed = payload.get("fingerprint")
        if claimed is not None and claimed != code_fingerprint():
            self._send_error_json(
                409,
                f"server runs code fingerprint {code_fingerprint()}, "
                f"client runs {claimed}; remote results would not be "
                "byte-identical — update one side",
            )
            return True
        return False

    def _refuse_overload(self) -> bool:
        """503 + Retry-After when draining or the queue is deep.

        Load shedding at admission keeps every accepted job's latency
        bounded; a well-behaved client (ours does) honors Retry-After
        and resubmits.  Returns True when the request was answered.
        """
        if self.server.draining:
            self._send_error_json(
                503, "server is draining for shutdown",
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return True
        if self.server.queue.depth() >= self.server.queue_limit:
            self._send_error_json(
                503,
                f"queue is full ({self.server.queue_limit} "
                "outstanding tasks); retry later",
                headers={"Retry-After": str(RETRY_AFTER_SECONDS)},
            )
            return True
        return False

    def _submit_job(self, specs: List[RunSpec]) -> str:
        """Enqueue one job, pre-filling store hits (no worker runs for
        an already-answered question).  A failing store degrades to
        enqueueing everything — a logged warning, never an error."""
        prefilled: Dict[str, str] = {}
        store = default_store()
        if store is not None:
            try:
                found = store.get_many(specs)
                prefilled = {
                    key: result.to_json()
                    for key, result in found.items()
                }
            except (sqlite3.Error, OSError) as exc:
                log_store_warning(exc)
        return self.server.queue.submit(specs, prefilled=prefilled)

    def _evaluate_sync(
        self, specs: List[RunSpec]
    ) -> Optional[List[Dict[str, Any]]]:
        """Evaluate ``specs`` through the queue + worker pool, blocking
        until the job settles.  Returns result documents in input
        order, or None after answering an error response."""
        job_id = self._submit_job(specs)
        status = self.server.queue.wait_job(job_id)
        if status is None:
            self._send_error_json(
                500, f"job {job_id} vanished from the queue"
            )
            return None
        if status["state"] != DONE:
            errors = "; ".join(
                f"{key}: {message}"
                for key, message in sorted(status["errors"].items())
            ) or "unknown failure"
            self._send_error_json(
                500, f"evaluation failed: {errors}"
            )
            return None
        results = status["results"]
        return [results[key] for key in status["keys"]]

    def _handle_eval(self, payload: Any) -> None:
        if not isinstance(payload, dict):
            self._send_error_json(400, "expected one RunSpec object")
            return
        try:
            (spec,) = _parse_specs([payload])
        except (KeyError, ValueError, TypeError) as exc:
            self._send_error_json(400, f"invalid spec: {exc}")
            return
        if self._refuse_overload():
            return
        documents = self._evaluate_sync([spec])
        if documents is not None:
            self._send_json(200, documents[0])

    def _handle_batch(self, payload: Any) -> None:
        if isinstance(payload, list):
            payload = {"specs": payload}
        if not isinstance(payload, dict) or not isinstance(
            payload.get("specs"), list
        ):
            self._send_error_json(
                400, 'expected {"specs": [...], "mode": "async"?} '
                     "or a bare spec array"
            )
            return
        mode = payload.get("mode", "sync")
        if mode not in ("sync", "async"):
            self._send_error_json(
                400, f"mode must be 'sync' or 'async', got {mode!r}"
            )
            return
        try:
            self._parse_workers(payload)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        if self._refuse_fingerprint_skew(payload):
            return
        try:
            specs = _parse_specs(payload["specs"])
        except (KeyError, ValueError, TypeError) as exc:
            self._send_error_json(400, f"invalid spec: {exc}")
            return
        if self._refuse_overload():
            return
        if mode == "async":
            job_id = self._submit_job(specs)
            status = self.server.queue.job_status(job_id) or {}
            self._send_json(202, {
                "job_id": job_id,
                "state": status.get("state", "pending"),
                "total": status.get("total", 0),
                "done": status.get("done", 0),
            })
            return
        documents = self._evaluate_sync(specs)
        if documents is None:
            return
        self._send_json(200, {
            "schema_version": RESULT_SCHEMA_VERSION,
            "count": len(documents),
            "results": documents,
        })

    def _handle_experiment(self, name: str, payload: Any) -> None:
        """Evaluate one registered experiment's declared specs.

        The response carries raw results keyed by canonical spec JSON
        — exactly the mapping the experiment's pure ``tabulate``
        consumes — so any client renders the finished table locally,
        byte-identical to an in-process run.  The code fingerprint is
        included so clients can refuse version-skewed servers (stale
        numbers would otherwise render with exit code 0).
        """
        if name not in experiment_catalog():
            self._send_error_json(
                404, f"unknown experiment {name!r}; "
                     f"available: {list(experiment_catalog())}"
            )
            return
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            self._send_error_json(
                400, 'expected {"workers": N?} or an empty body'
            )
            return
        try:
            self._parse_workers(payload)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        if self._refuse_fingerprint_skew(payload):
            return
        if self._refuse_overload():
            return
        experiment = get_experiment(name)
        specs = experiment.specs()
        documents = self._evaluate_sync(specs)
        if documents is None:
            return
        self._send_json(200, {
            "name": experiment.name,
            "title": experiment.title,
            "schema_version": RESULT_SCHEMA_VERSION,
            "fingerprint": code_fingerprint(),
            "count": len(documents),
            "results": {
                spec.key(): document
                for spec, document in zip(specs, documents)
            },
        })


class EvaluationServer(ThreadingHTTPServer):
    """Threaded HTTP front-end over a durable queue + worker pool."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        default_workers: Optional[int] = None,
        verbose: bool = False,
        job_db: Optional[str] = None,
        task_timeout: float = DEFAULT_TASK_TIMEOUT,
        lease_seconds: Optional[float] = None,
        max_attempts: int = 3,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ):
        super().__init__(address, ServiceHandler)
        self.verbose = verbose
        self.queue_limit = queue_limit
        self.started_monotonic = time.monotonic()
        #: True once a SIGTERM drain started: submissions are refused
        #: (503), running work finishes, then the server exits.
        self.draining = False
        self.queue = JobQueue(
            job_db if job_db is not None else job_db_path(),
            max_attempts=max_attempts,
        )
        # Any lease in the file belongs to a dead predecessor —
        # single-node queue — so restart recovery is immediate.
        requeued = self.queue.recover()
        if requeued and verbose:
            sys.stderr.write(
                f"recovered {requeued} leased task(s) from a "
                "previous server\n"
            )
        self.pool = WorkerPool(
            self.queue,
            count=default_workers,
            task_timeout=task_timeout,
            lease_seconds=lease_seconds,
            on_result=self._persist_result,
        )
        self.pool.start()

    def _persist_result(self, result_json: str) -> None:
        """Write one completed result through to the store
        (best-effort: the queue already holds the bytes)."""
        from repro.api.result import RunResult

        store = default_store()
        if store is None:
            return
        try:
            store.put(RunResult.from_json(result_json))
        except (sqlite3.Error, OSError) as exc:
            log_store_warning(exc)

    def drain(self, timeout: float = 600.0) -> None:
        """Refuse new work, finish running attempts (SIGTERM path)."""
        self.draining = True
        self.pool.stop(drain=True, timeout=timeout)

    def server_close(self) -> None:
        self.pool.stop(drain=False)
        super().server_close()


def create_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: Optional[int] = None,
    verbose: bool = False,
    **config,
) -> EvaluationServer:
    """Bind (``port=0`` picks a free port) without starting to serve.

    ``config`` forwards to :class:`EvaluationServer`: ``job_db``,
    ``task_timeout``, ``lease_seconds``, ``max_attempts``,
    ``queue_limit``.
    """
    return EvaluationServer((host, port), workers, verbose, **config)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: Optional[int] = None,
    verbose: bool = False,
    port_file: Optional[str] = None,
    **config,
) -> None:
    """Run the service until interrupted (the ``repro serve`` body).

    ``port_file`` gets the bound port written to it once listening —
    how scripts (and the CI smoke job) find a ``--port 0`` service.
    SIGTERM drains: new submissions get 503 + Retry-After, running
    worker attempts finish (their results land in the durable queue
    and the store), then the process exits; pending tasks stay queued
    on disk and the next server picks them up.
    """
    server = create_server(host, port, workers, verbose, **config)
    bound_port = server.server_address[1]
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(f"{bound_port}\n")

    def _drain_and_stop(signum, frame):   # noqa: ARG001 (signal API)
        print("SIGTERM: draining in-flight work before exit",
              flush=True)
        thread = threading.Thread(
            target=lambda: (server.drain(), server.shutdown()),
            daemon=True,
        )
        thread.start()

    previous = signal.signal(signal.SIGTERM, _drain_and_stop)
    print(
        f"repro service listening on http://{host}:{bound_port} "
        f"(fingerprint {code_fingerprint()}, store "
        f"{'on' if default_store() is not None else 'off'}, "
        f"queue {server.queue.path})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
