"""HTTP batch-evaluation service on top of the RunSpec layer.

A zero-dependency (stdlib ``http.server``) front-end that turns this
repository into "many users, one simulator": every request body is the
same declarative JSON the library and ``repro eval`` speak, every
response is the same schema-versioned ``RunResult`` document, and the
whole service sits behind :func:`repro.api.evaluate_many` — so batches
are deduplicated, fanned out over the shared ``parallel_map`` worker
pool, served from the persistent result store when warm, and
**byte-identical** to an in-process evaluation of the same specs
(``python -m repro.api.determinism_check`` proves it on every CI run).

Routes (all JSON):

* ``GET  /v1/healthz``       — liveness + code fingerprint/schemas
* ``GET  /v1/architectures`` — the central registry (ids, defaults),
  benchmarks, engines, technologies
* ``GET  /v1/experiments``   — the experiment registry (names,
  titles, paper references, declared spec counts)
* ``GET  /v1/store/stats``   — persistent-store shape and traffic
* ``POST /v1/eval``          — one ``RunSpec`` object → one result
* ``POST /v1/batch``         — ``{"specs": [...], "workers": N?}`` →
  ``{"results": [...]}`` in input order
* ``POST /v1/experiments/{name}`` — evaluate one registered
  experiment's declared design points server-side (through the
  store) → ``{"results": {spec_key: result}}`` keyed by canonical
  spec JSON; the client tabulates locally (``repro report --url``)

Run it with ``repro serve`` (see :mod:`repro.cli`); talk to it with
:mod:`repro.service.client`, ``repro submit`` or plain ``curl``.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.api import (
    ENGINES,
    RESULT_SCHEMA_VERSION,
    SPEC_SCHEMA_VERSION,
    TECHNOLOGIES,
    RunSpec,
    architectures,
    cached_results,
    clear_result_cache,
    evaluate_many,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    all_experiments,
    get_experiment,
)
from repro.store import code_fingerprint, default_store
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.suite import SCALABLE_BENCHMARKS

#: Default bind address of ``repro serve`` (loopback: the service has
#: no authentication — put a real proxy in front for anything public).
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8323

#: Hard cap on request bodies (a full-grid sweep batch is ~100 KiB).
MAX_BODY_BYTES = 32 << 20

#: Ceiling on the per-process result cache while serving.  The
#: process is long-lived and every result is already durable in the
#: store, so the in-memory layer is a bounded accelerator, not the
#: system of record: past this many entries it is dropped wholesale
#: (the next hit re-reads SQLite) instead of growing until OOM.
MEMORY_CACHE_LIMIT = 4096


def _bound_result_cache() -> None:
    if len(cached_results()) > MEMORY_CACHE_LIMIT:
        clear_result_cache()


def _registry_payload() -> Dict[str, Any]:
    """The central registry as one JSON document (``/v1/architectures``)."""
    listing: Dict[str, List[Dict[str, Any]]] = {}
    for side in ("dcache", "icache"):
        listing[side] = [
            {
                "id": info.id,
                "description": info.description,
                "defaults": dict(info.defaults),
                "uses_mab": info.uses_mab,
                "parametric": info.parametric,
            }
            for info in architectures(side)
        ]
    return {
        "spec_version": SPEC_SCHEMA_VERSION,
        "architectures": listing,
        "benchmarks": list(BENCHMARK_NAMES),
        "scalable_benchmarks": list(SCALABLE_BENCHMARKS),
        "engines": list(ENGINES),
        "technologies": sorted(TECHNOLOGIES),
    }


def _parse_specs(items: List[Any]) -> List[RunSpec]:
    if not all(isinstance(item, dict) for item in items):
        raise ValueError("specs must be JSON objects")
    return [RunSpec.from_dict(item) for item in items]


def _experiments_payload() -> Dict[str, Any]:
    """The experiment registry as one JSON document
    (``/v1/experiments``)."""
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "experiments": [
            {
                "name": experiment.name,
                "title": experiment.title,
                "paper_reference": experiment.paper_reference,
                "category": experiment.category,
                "spec_count": len(experiment.specs()),
            }
            for experiment in all_experiments()
        ],
    }


class ServiceHandler(BaseHTTPRequestHandler):
    """One request: decode JSON, dispatch, encode JSON."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                "%s - %s\n" % (self.client_address[0], format % args)
            )

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # The unread body would be parsed as the next request on
            # this keep-alive connection; drop the connection instead.
            self.close_connection = True
            self._send_error_json(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
            return None
        return self.rfile.read(length)

    # -- GET routes ----------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/v1/healthz":
            self._send_json(200, {
                "status": "ok",
                "fingerprint": code_fingerprint(),
                "spec_version": SPEC_SCHEMA_VERSION,
                "result_schema": RESULT_SCHEMA_VERSION,
                "store": default_store() is not None,
            })
        elif self.path == "/v1/architectures":
            self._send_json(200, _registry_payload())
        elif self.path == "/v1/experiments":
            self._send_json(200, _experiments_payload())
        elif self.path == "/v1/store/stats":
            store = default_store()
            if store is None:
                self._send_json(200, {"enabled": False})
            else:
                self._send_json(200, {"enabled": True, **store.stats()})
        else:
            self._send_error_json(404, f"unknown route {self.path!r}")

    # -- POST routes ---------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            self._send_error_json(400, f"invalid JSON: {exc}")
            return
        if self.path == "/v1/eval":
            self._handle_eval(payload)
        elif self.path == "/v1/batch":
            self._handle_batch(payload)
        elif self.path.startswith("/v1/experiments/"):
            name = self.path[len("/v1/experiments/"):]
            self._handle_experiment(name, payload)
        else:
            self._send_error_json(404, f"unknown route {self.path!r}")

    def _parse_workers(self, payload: Dict[str, Any]) -> Optional[int]:
        """Pool size from the request, defaulting to the server's.

        Raises ``ValueError`` (for a 400) on non-integer values.
        """
        workers = payload.get("workers", self.server.default_workers)
        if workers is not None and not isinstance(workers, int):
            raise ValueError("workers must be an integer")
        return workers

    def _refuse_fingerprint_skew(self, payload: Dict[str, Any]) -> bool:
        """409 a mismatched client fingerprint claim BEFORE evaluating.

        The claim is optional (raw spec batches from `repro submit`
        are version-agnostic by design), but when a client sends one
        — the byte-identity paths do — skew is refused atomically
        with the evaluation, with no wasted computation.  Returns
        True when the request was answered.
        """
        claimed = payload.get("fingerprint")
        if claimed is not None and claimed != code_fingerprint():
            self._send_error_json(
                409,
                f"server runs code fingerprint {code_fingerprint()}, "
                f"client runs {claimed}; remote results would not be "
                "byte-identical — update one side",
            )
            return True
        return False

    def _evaluate_locked(self, specs, workers: Optional[int]):
        """The one evaluation block every POST route shares: serialize
        pool fan-outs behind ``eval_lock`` and bound the memory cache.
        Returns None after answering 500 if the evaluation fails."""
        try:
            with self.server.eval_lock:
                results = evaluate_many(specs, workers=workers or None)
                _bound_result_cache()
            return results
        except Exception as exc:   # noqa: BLE001 — must answer, not hang
            self._send_error_json(500, f"evaluation failed: {exc}")
            return None

    def _handle_eval(self, payload: Any) -> None:
        if not isinstance(payload, dict):
            self._send_error_json(400, "expected one RunSpec object")
            return
        try:
            (spec,) = _parse_specs([payload])
        except (KeyError, ValueError, TypeError) as exc:
            self._send_error_json(400, f"invalid spec: {exc}")
            return
        results = self._evaluate_locked([spec], workers=1)
        if results is not None:
            self._send_json(200, results[0].to_dict())

    def _handle_batch(self, payload: Any) -> None:
        if isinstance(payload, list):
            payload = {"specs": payload}
        if not isinstance(payload, dict) or not isinstance(
            payload.get("specs"), list
        ):
            self._send_error_json(
                400, 'expected {"specs": [...], "workers": N?} '
                     "or a bare spec array"
            )
            return
        try:
            workers = self._parse_workers(payload)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        if self._refuse_fingerprint_skew(payload):
            return
        try:
            specs = _parse_specs(payload["specs"])
        except (KeyError, ValueError, TypeError) as exc:
            self._send_error_json(400, f"invalid spec: {exc}")
            return
        results = self._evaluate_locked(specs, workers)
        if results is None:
            return
        self._send_json(200, {
            "schema_version": RESULT_SCHEMA_VERSION,
            "count": len(results),
            "results": [result.to_dict() for result in results],
        })

    def _handle_experiment(self, name: str, payload: Any) -> None:
        """Evaluate one registered experiment's declared specs.

        The response carries raw results keyed by canonical spec JSON
        — exactly the mapping the experiment's pure ``tabulate``
        consumes — so any client renders the finished table locally,
        byte-identical to an in-process run.  The code fingerprint is
        included so clients can refuse version-skewed servers (stale
        numbers would otherwise render with exit code 0).
        """
        if name not in EXPERIMENTS:
            self._send_error_json(
                404, f"unknown experiment {name!r}; "
                     f"available: {list(EXPERIMENTS)}"
            )
            return
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            self._send_error_json(
                400, 'expected {"workers": N?} or an empty body'
            )
            return
        try:
            workers = self._parse_workers(payload)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        if self._refuse_fingerprint_skew(payload):
            return
        experiment = get_experiment(name)
        specs = experiment.specs()
        results = self._evaluate_locked(specs, workers)
        if results is None:
            return
        self._send_json(200, {
            "name": experiment.name,
            "title": experiment.title,
            "schema_version": RESULT_SCHEMA_VERSION,
            "fingerprint": code_fingerprint(),
            "count": len(results),
            "results": {
                spec.key(): result.to_dict()
                for spec, result in zip(specs, results)
            },
        })


class EvaluationServer(ThreadingHTTPServer):
    """Threaded HTTP server with service configuration attached."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        default_workers: Optional[int] = None,
        verbose: bool = False,
    ):
        super().__init__(address, ServiceHandler)
        #: Pool size for batches that do not name their own ``workers``
        #: (None = all cores, parallel_map caps at the batch size).
        self.default_workers = default_workers
        self.verbose = verbose
        #: One evaluation fan-out at a time: ``parallel_map`` forks a
        #: multiprocessing pool, and forking from several handler
        #: threads at once both oversubscribes the machine (each batch
        #: would claim all cores) and risks inheriting another thread's
        #: held locks in the children.  GETs and request parsing stay
        #: fully concurrent; only the compute is serialized.
        self.eval_lock = threading.Lock()


def create_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: Optional[int] = None,
    verbose: bool = False,
) -> EvaluationServer:
    """Bind (``port=0`` picks a free port) without starting to serve."""
    return EvaluationServer((host, port), workers, verbose)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: Optional[int] = None,
    verbose: bool = False,
    port_file: Optional[str] = None,
) -> None:
    """Run the service until interrupted (the ``repro serve`` body).

    ``port_file`` gets the bound port written to it once listening —
    how scripts (and the CI smoke job) find a ``--port 0`` service.
    """
    server = create_server(host, port, workers, verbose)
    bound_port = server.server_address[1]
    if port_file:
        with open(port_file, "w") as handle:
            handle.write(f"{bound_port}\n")
    print(
        f"repro service listening on http://{host}:{bound_port} "
        f"(fingerprint {code_fingerprint()}, store "
        f"{'on' if default_store() is not None else 'off'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
