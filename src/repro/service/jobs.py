"""Durable SQLite-backed job queue for the evaluation service.

``POST /v1/batch`` used to evaluate inside the request thread: a hung
simulation wedged the server, a killed process lost the whole batch.
This module makes the queue the system of record instead.  A **job**
is one submitted batch — an ordered list of canonical spec keys
(duplicates preserved, so responses reassemble in input order).  A
**task** is one unique ``(spec_key, schema, fingerprint)`` unit of
simulation work, shared by every job that asks the same question:
two jobs (or two hundred clients) naming the same design point hold
one task between them, and exactly one worker simulates it —
single-flight coalescing on the same content address the result
store uses.

Task lifecycle::

    pending ──claim──▶ running ──complete──▶ done
       ▲                 │ fail / lease expiry / crash
       └──── backoff ────┘          (attempts < max)
                         └──────────▶ failed   (dead letter)

* **Leases**: a claim marks the task running until ``lease_deadline``.
  A worker that crashes or hangs never completes its lease; the next
  claim (or :meth:`JobQueue.recover` on server restart) takes the
  task back.  Durability is the point: jobs live in SQLite and
  survive server restarts.
* **Retries**: each failure re-queues with capped exponential backoff
  (``not_before``); after ``max_attempts`` the task dead-letters as
  ``failed`` and every job holding it fails with its error.
* Results are recorded on the task *and* written through to the
  result store, so a completed question is never simulated again.

Job state is derived from its tasks on read: ``failed`` if any task
dead-lettered, ``done`` if all done, ``running`` if any task is
claimed, else ``pending``.
"""

from __future__ import annotations

import json
import os
import secrets
import sqlite3
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.result import RESULT_SCHEMA_VERSION
from repro.api.spec import RunSpec
from repro.store import code_fingerprint, store_path
from repro.telemetry import metrics as telemetry

#: Environment variable overriding the job-queue database location.
JOB_DB_ENV = "REPRO_JOB_DB"

#: Task states (jobs derive theirs from these).
PENDING, RUNNING, DONE, FAILED = "pending", "running", "done", "failed"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id        TEXT    PRIMARY KEY,
    created_at    REAL    NOT NULL,
    result_schema INTEGER NOT NULL,
    fingerprint   TEXT    NOT NULL,
    spec_keys     TEXT    NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    spec_key       TEXT    NOT NULL,
    result_schema  INTEGER NOT NULL,
    fingerprint    TEXT    NOT NULL,
    state          TEXT    NOT NULL,
    attempts       INTEGER NOT NULL DEFAULT 0,
    not_before     REAL    NOT NULL DEFAULT 0,
    lease_deadline REAL,
    result_json    TEXT,
    error          TEXT,
    created_at     REAL    NOT NULL,
    PRIMARY KEY (spec_key, result_schema, fingerprint)
);
CREATE INDEX IF NOT EXISTS tasks_by_state
    ON tasks (state, not_before);
"""


def job_db_path() -> Path:
    """Resolved queue location: ``$REPRO_JOB_DB``, else a
    ``jobs.sqlite`` next to the result store, else a per-boot temp
    file (no durable location exists when persistence is off)."""
    env = os.environ.get(JOB_DB_ENV)
    if env:
        return Path(env).expanduser()
    store = store_path()
    if store is not None:
        return store.parent / "jobs.sqlite"
    return Path(tempfile.gettempdir()) / f"repro-jobs-{os.getuid()}.sqlite"


class Task:
    """One claimed unit of work (handed to a worker)."""

    __slots__ = ("spec_key", "attempts")

    def __init__(self, spec_key: str, attempts: int):
        self.spec_key = spec_key
        self.attempts = attempts

    @property
    def spec(self) -> RunSpec:
        return RunSpec.from_json(self.spec_key)


class JobQueue:
    """One durable queue file (thread-safe; short-lived connections)."""

    def __init__(
        self,
        path: Union[str, Path],
        max_attempts: int = 3,
        backoff_base: float = 0.25,
        backoff_cap: float = 30.0,
    ):
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.path = Path(path)
        self.fingerprint = code_fingerprint()
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Signaled whenever work may have become available; workers
        #: wait on it instead of busy-polling an idle queue.
        self.work_available = threading.Event()
        #: Signaled whenever a task finishes (``wait_job`` wakes up).
        self._task_done = threading.Condition()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connect().close()   # create the schema / verify the file

    # -- plumbing ------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path), timeout=30.0, isolation_level=None
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        return conn

    def _address(self) -> Tuple[int, str]:
        return RESULT_SCHEMA_VERSION, self.fingerprint

    def backoff_delay(self, attempts: int) -> float:
        """Capped exponential backoff after the ``attempts``-th failure."""
        return min(
            self.backoff_cap, self.backoff_base * (2 ** (attempts - 1))
        )

    # -- enqueue -------------------------------------------------------

    def submit(
        self,
        specs: Sequence[RunSpec],
        prefilled: Optional[Dict[str, str]] = None,
    ) -> str:
        """Create a job for ``specs``; returns its id immediately.

        ``prefilled`` maps spec keys to result JSON already known
        (store hits resolved by the caller) — those tasks are born
        ``done`` and never reach a worker.  Tasks already present
        (any state) are reused as-is: that is the single-flight
        guarantee across concurrent jobs.
        """
        schema, fingerprint = self._address()
        keys = [spec.key() for spec in specs]
        job_id = secrets.token_hex(8)
        now = time.time()
        prefilled = prefilled or {}
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT INTO jobs (job_id, created_at, result_schema,"
                " fingerprint, spec_keys) VALUES (?, ?, ?, ?, ?)",
                (job_id, now, schema, fingerprint, json.dumps(keys)),
            )
            for key in dict.fromkeys(keys):
                document = prefilled.get(key)
                conn.execute(
                    "INSERT OR IGNORE INTO tasks (spec_key,"
                    " result_schema, fingerprint, state, result_json,"
                    " created_at) VALUES (?, ?, ?, ?, ?, ?)",
                    (key, schema, fingerprint,
                     DONE if document is not None else PENDING,
                     document, now),
                )
            conn.execute("COMMIT")
        finally:
            conn.close()
        telemetry.counter(
            "repro_queue_jobs_submitted_total",
            "Jobs accepted by the durable queue.",
        ).inc()
        self.work_available.set()
        return job_id

    # -- worker side ---------------------------------------------------

    def claim(self, lease_seconds: float) -> Optional[Task]:
        """Lease the oldest runnable task, or None when idle.

        Runnable means pending past its backoff window — or running
        with an *expired* lease, which is how the work of a crashed
        or hung worker returns to the pool.  The expired re-claim
        counts as a fresh attempt, so a worker that silently dies N
        times still dead-letters.
        """
        schema, fingerprint = self._address()
        now = time.time()
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT spec_key, attempts, state FROM tasks"
                " WHERE result_schema = ? AND fingerprint = ?"
                " AND ((state = ? AND not_before <= ?)"
                "  OR (state = ? AND lease_deadline < ?))"
                " ORDER BY created_at, spec_key LIMIT 1",
                (schema, fingerprint, PENDING, now, RUNNING, now),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            spec_key, attempts, prior_state = row
            conn.execute(
                "UPDATE tasks SET state = ?, attempts = ?,"
                " lease_deadline = ? WHERE spec_key = ?"
                " AND result_schema = ? AND fingerprint = ?",
                (RUNNING, attempts + 1, now + lease_seconds,
                 spec_key, schema, fingerprint),
            )
            conn.execute("COMMIT")
            self._count_claims([prior_state])
            return Task(spec_key, attempts + 1)
        finally:
            conn.close()

    @staticmethod
    def _count_claims(prior_states: Sequence[str]) -> None:
        """Account claimed tasks; a RUNNING prior state means the
        claim took over an expired lease."""
        telemetry.counter(
            "repro_queue_claims_total", "Task leases claimed."
        ).inc(len(prior_states))
        expired = sum(1 for state in prior_states if state == RUNNING)
        telemetry.counter(
            "repro_queue_lease_expiries_total",
            "Claims that reclaimed an expired lease.",
        ).inc(expired)

    @staticmethod
    def _replay_group_key(spec_key: str) -> Optional[Tuple[str, str]]:
        """The (cache side, workload) replay-group key of a spec key.

        None when the spec cannot join a shared-workload replay group
        (reference engine, or an unparseable key).
        """
        try:
            document = json.loads(spec_key)
        except ValueError:
            return None
        if document.get("engine") != "fast":
            return None
        return (document.get("cache"), document.get("workload"))

    def claim_group(
        self, lease_seconds: float, limit: int = 8
    ) -> List[Task]:
        """Lease the oldest runnable task plus its replay group.

        Claims like :meth:`claim`, then extends the claim (in the same
        transaction) to up to ``limit - 1`` more runnable tasks whose
        specs share the first task's ``(cache side, workload)`` with
        the fast engine — the grouping ``evaluate_many`` replays in a
        single pass.  Returns ``[]`` when idle.  Every claimed task
        still tracks its own attempts/lease, so a crash mid-group
        retries (and may regroup) each member individually.
        """
        schema, fingerprint = self._address()
        now = time.time()
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT spec_key, attempts, state FROM tasks"
                " WHERE result_schema = ? AND fingerprint = ?"
                " AND ((state = ? AND not_before <= ?)"
                "  OR (state = ? AND lease_deadline < ?))"
                " ORDER BY created_at, spec_key",
                (schema, fingerprint, PENDING, now, RUNNING, now),
            ).fetchall()
            if not rows:
                conn.execute("COMMIT")
                return []
            selected = [rows[0]]
            group = self._replay_group_key(rows[0][0])
            if group is not None and limit > 1:
                for row in rows[1:]:
                    if len(selected) >= limit:
                        break
                    if self._replay_group_key(row[0]) == group:
                        selected.append(row)
            claimed = []
            for spec_key, attempts, _ in selected:
                conn.execute(
                    "UPDATE tasks SET state = ?, attempts = ?,"
                    " lease_deadline = ? WHERE spec_key = ?"
                    " AND result_schema = ? AND fingerprint = ?",
                    (RUNNING, attempts + 1, now + lease_seconds,
                     spec_key, schema, fingerprint),
                )
                claimed.append(Task(spec_key, attempts + 1))
            conn.execute("COMMIT")
            self._count_claims([state for _, _, state in selected])
            return claimed
        finally:
            conn.close()

    def complete(self, task: Task, result_json: str) -> None:
        """Record a finished simulation (all holding jobs see it)."""
        self._finish(
            task, DONE, result_json=result_json, error=None
        )

    def fail(self, task: Task, error: str) -> bool:
        """Record a failed attempt.

        Re-queues with backoff while attempts remain; dead-letters as
        ``failed`` otherwise.  Returns True when the task will be
        retried.
        """
        if task.attempts < self.max_attempts:
            self._finish(
                task, PENDING, result_json=None, error=error,
                not_before=time.time()
                + self.backoff_delay(task.attempts),
            )
            telemetry.counter(
                "repro_queue_retries_total",
                "Failed attempts re-queued with backoff.",
            ).inc()
            return True
        self._finish(task, FAILED, result_json=None, error=error)
        telemetry.counter(
            "repro_queue_dead_letters_total",
            "Tasks dead-lettered after exhausting attempts.",
        ).inc()
        return False

    def _finish(
        self,
        task: Task,
        state: str,
        result_json: Optional[str],
        error: Optional[str],
        not_before: float = 0.0,
    ) -> None:
        schema, fingerprint = self._address()
        conn = self._connect()
        try:
            conn.execute(
                "UPDATE tasks SET state = ?, result_json = ?,"
                " error = ?, lease_deadline = NULL, not_before = ?"
                " WHERE spec_key = ? AND result_schema = ?"
                " AND fingerprint = ?",
                (state, result_json, error, not_before,
                 task.spec_key, schema, fingerprint),
            )
        finally:
            conn.close()
        with self._task_done:
            self._task_done.notify_all()
        if state == PENDING:
            self.work_available.set()

    def recover(self) -> int:
        """Re-queue every leased task (server restart).

        The queue is single-node: when a server starts, no worker of
        a previous incarnation can still be alive, so *any* running
        task is orphaned — re-queue it immediately instead of waiting
        out its lease.  The interrupted attempt still counts toward
        dead-lettering.  Returns the number of tasks re-queued.
        """
        schema, fingerprint = self._address()
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            requeued = conn.execute(
                "UPDATE tasks SET state = ?, lease_deadline = NULL"
                " WHERE state = ? AND result_schema = ?"
                " AND fingerprint = ? AND attempts < ?",
                (PENDING, RUNNING, schema, fingerprint,
                 self.max_attempts),
            ).rowcount
            # Orphans that already burned their last attempt
            # dead-letter instead of leaking as running forever.
            conn.execute(
                "UPDATE tasks SET state = ?, lease_deadline = NULL,"
                " error = COALESCE(error, 'worker lost mid-attempt')"
                " WHERE state = ? AND result_schema = ?"
                " AND fingerprint = ?",
                (FAILED, RUNNING, schema, fingerprint),
            )
            conn.execute("COMMIT")
        finally:
            conn.close()
        if requeued:
            self.work_available.set()
        return requeued

    # -- read side -----------------------------------------------------

    def job_keys(self, job_id: str) -> Optional[List[str]]:
        """The job's ordered spec keys (duplicates preserved), or None."""
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT spec_keys FROM jobs WHERE job_id = ?"
                " AND result_schema = ? AND fingerprint = ?",
                (job_id, *self._address()),
            ).fetchone()
        finally:
            conn.close()
        return None if row is None else json.loads(row[0])

    def job_status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Progress + partial results for one job, or None (unknown).

        ``results`` maps spec keys to result documents for every
        *finished* task — partial while the job runs, complete once
        ``state`` is ``done``.
        """
        schema, fingerprint = self._address()
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT spec_keys, created_at FROM jobs"
                " WHERE job_id = ? AND result_schema = ?"
                " AND fingerprint = ?",
                (job_id, schema, fingerprint),
            ).fetchone()
            if row is None:
                return None
            keys = json.loads(row[0])
            unique = list(dict.fromkeys(keys))
            tasks: Dict[str, Tuple[str, int, Optional[str],
                                   Optional[str]]] = {}
            if unique:
                marks = ",".join("?" for _ in unique)
                for (key, state, attempts, result_json,
                     error) in conn.execute(
                    f"SELECT spec_key, state, attempts, result_json,"
                    f" error FROM tasks WHERE result_schema = ?"
                    f" AND fingerprint = ? AND spec_key IN ({marks})",
                    (schema, fingerprint, *unique),
                ):
                    tasks[key] = (state, attempts, result_json, error)
        finally:
            conn.close()
        states = [tasks.get(key, (PENDING, 0, None, None))[0]
                  for key in unique]
        if any(state == FAILED for state in states):
            job_state = FAILED
        elif all(state == DONE for state in states):
            job_state = DONE
        elif any(state == RUNNING for state in states):
            job_state = RUNNING
        else:
            job_state = PENDING
        results = {
            key: json.loads(entry[2])
            for key, entry in tasks.items()
            if entry[0] == DONE and entry[2] is not None
        }
        errors = {
            key: entry[3]
            for key, entry in tasks.items()
            if entry[0] == FAILED and entry[3]
        }
        # Retry/backoff telemetry: tasks that failed at least once but
        # are still in flight — what ``repro jobs --wait`` narrates
        # instead of polling silently.
        retrying = {
            key: {"attempts": entry[1], "last_error": entry[3]}
            for key, entry in tasks.items()
            if entry[0] in (PENDING, RUNNING) and entry[3]
        }
        return {
            "id": job_id,
            "state": job_state,
            "created_at": row[1],
            "keys": keys,
            "total": len(unique),
            "done": sum(1 for s in states if s == DONE),
            "failed": sum(1 for s in states if s == FAILED),
            "running": sum(1 for s in states if s == RUNNING),
            "attempts": sum(entry[1] for entry in tasks.values()),
            "retrying": len(retrying),
            "results": results,
            "errors": errors,
            "task_errors": retrying,
        }

    def wait_job(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Block until the job is ``done``/``failed`` (or timeout).

        Returns the final :meth:`job_status` document; on timeout the
        latest in-flight document (state still pending/running).
        """
        deadline = None if timeout is None else time.time() + timeout
        while True:
            status = self.job_status(job_id)
            if status is None or status["state"] in (DONE, FAILED):
                return status
            remaining = 0.5
            if deadline is not None:
                remaining = min(remaining, deadline - time.time())
                if remaining <= 0:
                    return status
            with self._task_done:
                self._task_done.wait(remaining)

    def list_jobs(self, limit: int = 50) -> List[Dict[str, Any]]:
        """Newest-first job summaries (progress, no result payloads)."""
        conn = self._connect()
        try:
            rows = conn.execute(
                "SELECT job_id FROM jobs WHERE result_schema = ?"
                " AND fingerprint = ? ORDER BY created_at DESC"
                " LIMIT ?",
                (*self._address(), limit),
            ).fetchall()
        finally:
            conn.close()
        summaries = []
        for (job_id,) in rows:
            status = self.job_status(job_id)
            if status is not None:
                status.pop("results", None)
                status.pop("errors", None)
                status.pop("keys", None)
                status.pop("task_errors", None)
                summaries.append(status)
        return summaries

    def depth(self) -> int:
        """Outstanding work: tasks pending or running (load shedding)."""
        conn = self._connect()
        try:
            return conn.execute(
                "SELECT COUNT(*) FROM tasks WHERE result_schema = ?"
                " AND fingerprint = ? AND state IN (?, ?)",
                (*self._address(), PENDING, RUNNING),
            ).fetchone()[0]
        finally:
            conn.close()

    def stats(self) -> Dict[str, Any]:
        """Queue shape as one JSON-able dict (healthz / diagnostics)."""
        conn = self._connect()
        try:
            by_state = dict(conn.execute(
                "SELECT state, COUNT(*) FROM tasks"
                " WHERE result_schema = ? AND fingerprint = ?"
                " GROUP BY state",
                self._address(),
            ).fetchall())
            jobs = conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE result_schema = ?"
                " AND fingerprint = ?",
                self._address(),
            ).fetchone()[0]
        finally:
            conn.close()
        return {
            "path": str(self.path),
            "jobs": jobs,
            "tasks": {
                state: by_state.get(state, 0)
                for state in (PENDING, RUNNING, DONE, FAILED)
            },
        }
