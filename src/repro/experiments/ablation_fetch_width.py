"""Ablation: sensitivity to the fetch-packet width assumption.

This reproduction models the FR-V as fetching one aligned 8-byte
packet (two instructions) per cycle.  That assumption shapes the
I-cache access stream: wider packets mean fewer I-cache accesses and
a different intra-line/inter-line split.  This ablation re-derives
the fetch stream at 4, 8 and 16 bytes per packet and re-measures the
Figure-6 quantities — checking that the paper's qualitative I-cache
conclusions do not hinge on the packet-width guess.

Re-derived fetch streams are not addressable run specs (a workload's
stream is fixed at the modelled 8-byte packet), so this experiment
declares no specs and replays the alternative streams inside
``tabulate``.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.baselines import PanwarICache
from repro.core import MABConfig, WayMemoICache
from repro.experiments.registry import Experiment, ResultMap, register
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import average
from repro.sim import fetch_stream
from repro.workloads import BENCHMARK_NAMES, load_workload

PACKET_BYTES = (4, 8, 16)


def specs() -> List[RunSpec]:
    """Re-derived fetch streams — no declarative design points."""
    return []


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "packet_bytes", "accesses_per_kinstr", "intra_line_pct",
        "panwar_tags", "memo_tags", "memo_vs_panwar_pct",
    ))
    for packet in PACKET_BYTES:
        access_rates, intra, panwar_tags, memo_tags = [], [], [], []
        for benchmark in BENCHMARK_NAMES:
            workload = load_workload(benchmark)
            fs = fetch_stream(workload.trace.flow, packet)
            p = PanwarICache().process(fs)
            m = WayMemoICache(mab_config=MABConfig(2, 16)).process(fs)
            access_rates.append(
                1000.0 * len(fs) / workload.trace.instructions
            )
            intra.append(100.0 * p.intra_line_hits / p.accesses)
            panwar_tags.append(p.tags_per_access)
            memo_tags.append(m.tags_per_access)
        p_avg = average(panwar_tags)
        m_avg = average(memo_tags)
        result.add_row(
            packet_bytes=packet,
            accesses_per_kinstr=average(access_rates),
            intra_line_pct=average(intra),
            panwar_tags=p_avg,
            memo_tags=m_avg,
            memo_vs_panwar_pct=100.0 * (1 - m_avg / p_avg),
        )
    result.notes.append(
        "the MAB removes the bulk of [4]'s residual tag accesses at "
        "every packet width; wider packets raise the inter-line share "
        "that only the MAB can capture"
    )
    return result


EXPERIMENT = register(Experiment(
    name="ablation_fetch_width",
    title="Ablation: fetch packet width vs I-cache results",
    specs=specs,
    tabulate=tabulate,
    category="trace-derived",
    paper_reference=(
        "the FR-V fetches 8-byte packets; the reproduction's "
        "conclusions should survive other widths"
    ),
))
