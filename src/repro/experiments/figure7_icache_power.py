"""Figure 7: I-cache power (mW) — [4] vs way memoization.

The paper plots [4] against our approach with 2x8, 2x16 and 2x32
MABs and picks 2x16 for the processor (best power across programs,
given the 2x32's area).  Expected shape: ~25% average saving for the
2x16 MAB relative to [4].
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average, savings
from repro.workloads import BENCHMARK_NAMES

ARCHS = ("panwar", "way-memo-2x8", "way-memo-2x16", "way-memo-2x32")


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec("icache", arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for arch in ARCHS
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "benchmark", "architecture", "data_mw", "tag_mw",
        "aux_mw", "leak_mw", "total_mw", "saving_vs_panwar_pct",
    ))
    for benchmark in BENCHMARK_NAMES:
        baseline = spec_result(
            results, arch_spec("icache", "panwar", benchmark)
        ).power.total_mw
        for arch in ARCHS:
            p = spec_result(
                results, arch_spec("icache", arch, benchmark)
            ).power
            result.add_row(
                benchmark=benchmark,
                architecture=arch,
                data_mw=p.data_mw,
                tag_mw=p.tag_mw,
                aux_mw=p.aux_mw,
                leak_mw=p.leakage_mw,
                total_mw=p.total_mw,
                saving_vs_panwar_pct=100.0 * savings(baseline, p.total_mw),
            )
    avg16 = average(
        row["saving_vs_panwar_pct"] for row in result.rows
        if row["architecture"] == "way-memo-2x16"
    )
    result.notes.append(
        f"average 2x16 saving vs [4]: {avg16:.1f}% (paper: ~25%)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="figure7_icache_power",
    title="Figure 7: I-cache power consumption (mW)",
    specs=specs,
    tabulate=tabulate,
    paper_reference="2x16 MAB saves ~25% on average vs [4]",
))
