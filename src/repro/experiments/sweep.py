"""Parallel sweep harness: full design-space grids over the trace cache.

The fast kernels make a single (architecture, benchmark) replay cheap;
this module scales that to whole design spaces by fanning the points
out over a ``multiprocessing`` pool:

* :func:`sweep_mab_size` — ``ablation_mab_size`` widened to the full
  Nt x Ns grid (default 4 x 6 = 24 points per cache, 336 controller
  runs over the bundled suite) for **both** caches.
* :func:`sweep_baselines` — ``extension_baselines`` parallelized
  across every (baseline, workload) point.

Workers never run the ISS: the parent warms the shared on-disk trace
cache (``$REPRO_TRACE_CACHE``, see ``repro.workloads.suite``) before
forking, so each worker just loads the ``.npz`` arrays (or inherits
the parent's in-process cache under the fork start method).  Each
design point is evaluated in a single worker and the parent reduces
the per-point values in a fixed order, so the result — rendered table
and raw rows — is byte-identical for any worker count and for cold
vs. warm trace caches (``tests/test_sweep.py`` locks this down).

CLI::

    python -m repro.experiments.sweep --workers 8          # everything
    python -m repro.experiments.sweep --experiment mab-size \
        --grid paper --workers 4 --json
    repro sweep --experiment baselines                      # via the CLI
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.cache.config import FRV_DCACHE, FRV_ICACHE
from repro.core import MABConfig, WayMemoDCache, WayMemoICache
from repro.energy import CachePowerModel, MABHardwareModel
from repro.experiments.extension_baselines import D_ARCHS, I_ARCHS
from repro.experiments.reporting import ExperimentResult, render
from repro.experiments.runner import (
    average,
    dcache_counters,
    dcache_power,
    icache_counters,
    icache_power,
)
from repro.workloads import BENCHMARK_NAMES, load_workload

#: The paper's (Nt, Ns) grid (plus Nt=4), as swept by ablation_mab_size.
PAPER_TAG_ENTRIES: Tuple[int, ...] = (1, 2, 4)
PAPER_INDEX_ENTRIES: Tuple[int, ...] = (4, 8, 16, 32)

#: The full design-space grid the fast kernels make affordable.
FULL_TAG_ENTRIES: Tuple[int, ...] = (1, 2, 4, 8)
FULL_INDEX_ENTRIES: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)


def warm_trace_cache(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
) -> None:
    """Run every benchmark once so workers skip the ISS entirely.

    Populates both the in-process workload cache (inherited by forked
    workers) and the on-disk trace cache (read by spawned workers and
    later processes).
    """
    for name in benchmarks:
        load_workload(name)


def _parallel_map(fn, tasks: List, workers: Optional[int]) -> List:
    """Ordered map over ``tasks`` with ``workers`` processes.

    ``workers=None`` uses every core; ``workers<=1`` runs serially in
    this process (no pool, easiest to debug).  Results always come
    back in task order, which keeps every reduction deterministic.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, len(tasks)) if tasks else 1
    if workers <= 1:
        return [fn(task) for task in tasks]
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(fn, tasks, chunksize=1)


# ----------------------------------------------------------------------
# MAB design-space sweep
# ----------------------------------------------------------------------

def _mab_point(task: Tuple[str, int, int, str]) -> Tuple[float, float, float]:
    """Evaluate one (cache, Nt, Ns, benchmark) design point."""
    cache_name, nt, ns, benchmark = task
    workload = load_workload(benchmark)
    cfg = MABConfig(nt, ns)
    hw = MABHardwareModel(nt, ns)
    if cache_name == "dcache":
        controller = WayMemoDCache(mab_config=cfg)
        stream = workload.trace.data
        model = CachePowerModel(FRV_DCACHE)
    else:
        controller = WayMemoICache(mab_config=cfg)
        stream = workload.fetch
        model = CachePowerModel(FRV_ICACHE)
    counters = controller.process(stream)
    power = model.power(
        counters, workload.cycles, label=cfg.label, mab_model=hw
    )
    return (
        counters.mab_hit_rate, counters.tags_per_access, power.total_mw
    )


def sweep_mab_size(
    tag_entries: Sequence[int] = FULL_TAG_ENTRIES,
    index_entries: Sequence[int] = FULL_INDEX_ENTRIES,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Full (Nt, Ns) grid for both caches, averaged over the suite.

    Same row/column shape as ``ablation_mab_size`` (which it subsumes:
    the paper grid is a sub-rectangle of the default full grid), with
    the per-benchmark controller runs fanned out across workers.
    """
    tag_entries = tuple(tag_entries)
    index_entries = tuple(index_entries)
    benchmarks = tuple(benchmarks)
    warm_trace_cache(benchmarks)

    result = ExperimentResult(
        name="sweep_mab_size",
        title=(
            "Sweep: full MAB design space "
            "(average over the selected benchmarks)"
        ),
        columns=(
            "cache", "mab", "mab_hit_rate", "tags_per_access",
            "avg_power_mw", "optimal",
        ),
        paper_reference=(
            "paper: 2x8 optimal for D-cache; 2x8 or 2x16 for I-cache "
            "depending on the program"
        ),
    )
    tasks = [
        (cache_name, nt, ns, benchmark)
        for cache_name in ("dcache", "icache")
        for nt in tag_entries
        for ns in index_entries
        for benchmark in benchmarks
    ]
    values = _parallel_map(_mab_point, tasks, workers)
    per_point = {}
    for task, value in zip(tasks, values):
        per_point.setdefault(task[:3], []).append(value)

    for cache_name in ("dcache", "icache"):
        rows = []
        for nt in tag_entries:
            for ns in index_entries:
                vals = per_point[(cache_name, nt, ns)]
                rows.append({
                    "cache": cache_name,
                    "mab": f"{nt}x{ns}",
                    "mab_hit_rate": average(v[0] for v in vals),
                    "tags_per_access": average(v[1] for v in vals),
                    "avg_power_mw": average(v[2] for v in vals),
                })
        best = min(rows, key=lambda r: r["avg_power_mw"])
        for row in rows:
            row["optimal"] = "<== optimal" if row is best else ""
            result.rows.append(row)
        result.notes.append(
            f"{cache_name}: power-optimal configuration {best['mab']} "
            f"at {best['avg_power_mw']:.2f} mW average"
        )
    result.notes.append(
        f"grid: {len(tag_entries)}x{len(index_entries)} configurations "
        f"per cache x {len(benchmarks)} benchmarks = {len(tasks)} runs"
    )
    return result


# ----------------------------------------------------------------------
# baseline comparison sweep
# ----------------------------------------------------------------------

def _baseline_point(
    task: Tuple[str, str, str]
) -> Tuple[float, float, float]:
    """Evaluate one (cache, architecture, benchmark) point."""
    cache_name, arch, benchmark = task
    workload = load_workload(benchmark)
    if cache_name == "dcache":
        counters = dcache_counters(benchmark, arch)
        power = dcache_power(benchmark, arch)
    else:
        counters = icache_counters(benchmark, arch)
        power = icache_power(benchmark, arch)
    return (
        power.total_mw,
        100.0 * counters.extra_cycles / workload.cycles,
        counters.tags_per_access,
    )


def sweep_baselines(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """``extension_baselines`` fanned out per (baseline, workload)."""
    benchmarks = tuple(benchmarks)
    warm_trace_cache(benchmarks)

    result = ExperimentResult(
        name="sweep_baselines",
        title=(
            "Sweep: penalty-laden alternatives vs way memoization "
            "(averages over the selected benchmarks)"
        ),
        columns=(
            "cache", "architecture", "avg_power_mw",
            "avg_slowdown_pct", "avg_tags_per_access",
        ),
        paper_reference=(
            "filter cache / way prediction / two-phase save energy "
            "but add cycles; way memoization adds none"
        ),
    )
    tasks = [
        (cache_name, arch, benchmark)
        for cache_name, archs in (("dcache", D_ARCHS), ("icache", I_ARCHS))
        for arch in archs
        for benchmark in benchmarks
    ]
    values = _parallel_map(_baseline_point, tasks, workers)
    per_arch = {}
    for task, value in zip(tasks, values):
        per_arch.setdefault(task[:2], []).append(value)

    for cache_name, archs in (("dcache", D_ARCHS), ("icache", I_ARCHS)):
        for arch in archs:
            vals = per_arch[(cache_name, arch)]
            result.add_row(
                cache=cache_name,
                architecture=arch,
                avg_power_mw=average(v[0] for v in vals),
                avg_slowdown_pct=average(v[1] for v in vals),
                avg_tags_per_access=average(v[2] for v in vals),
            )
    result.notes.append(
        "slowdown = extra cycles / baseline cycles; way memoization "
        "is the only technique at exactly 0"
    )
    result.notes.append(
        f"{len(tasks)} (cache, architecture, benchmark) points"
    )
    return result


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _results_to_json(results: Iterable[ExperimentResult]) -> str:
    payload = [
        {
            "name": r.name,
            "title": r.title,
            "columns": list(r.columns),
            "rows": r.rows,
            "notes": r.notes,
        }
        for r in results
    ]
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Parallel design-space sweeps over the shared trace cache"
        ),
    )
    parser.add_argument(
        "--experiment", choices=("mab-size", "baselines", "all"),
        default="all", help="which sweep to run (default: all)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; 1 = serial)",
    )
    parser.add_argument(
        "--grid", choices=("paper", "full"), default="full",
        help="MAB grid: the paper's 3x4 points or the full 4x6 grid",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", metavar="NAME",
        default=list(BENCHMARK_NAMES), choices=BENCHMARK_NAMES,
        help="benchmark subset (default: the whole suite)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    args = parser.parse_args(argv)

    results = []
    if args.experiment in ("mab-size", "all"):
        if args.grid == "paper":
            grid = (PAPER_TAG_ENTRIES, PAPER_INDEX_ENTRIES)
        else:
            grid = (FULL_TAG_ENTRIES, FULL_INDEX_ENTRIES)
        results.append(sweep_mab_size(
            grid[0], grid[1], args.benchmarks, args.workers
        ))
    if args.experiment in ("baselines", "all"):
        results.append(sweep_baselines(args.benchmarks, args.workers))

    if args.json:
        print(_results_to_json(results))
    else:
        print("\n\n".join(render(r) for r in results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
