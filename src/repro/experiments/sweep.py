"""Parallel sweep harness: full design-space grids over the trace cache.

The fast kernels make a single (architecture, benchmark) replay cheap;
this module scales that to whole design spaces by expressing every
point as a declarative :class:`~repro.api.spec.RunSpec` and fanning
the batch through :func:`repro.api.evaluate_many`:

* :func:`sweep_mab_size` — ``ablation_mab_size`` widened to the full
  Nt x Ns grid (default 4 x 6 = 24 points per cache, 336 controller
  runs over the bundled suite) for **both** caches.
* :func:`sweep_baselines` — ``extension_baselines`` parallelized
  across every (baseline, workload) point.

Both sweeps are registered experiments (``sweep_mab_size`` /
``sweep_baselines``, at their full default grids): spec declaration
and tabulation are split into a pure pair, so ``repro run
sweep_mab_size``, ``repro run --url`` against a remote service and
``POST /v1/experiments/sweep_mab_size`` all ride the same
``run_experiment`` path as the paper artefacts.  They stay out of the
default report (:data:`~repro.experiments.registry.EXPERIMENTS`) —
336 runs is a deliberate request, not a report side effect.

Workers never run the ISS: ``evaluate_many`` warms the shared on-disk
trace cache (``$REPRO_TRACE_CACHE``, see ``repro.workloads.suite``)
before forking, so each worker just loads the ``.npz`` arrays (or
inherits the parent's in-process cache under the fork start method),
and batches read through the persistent result store
(``$REPRO_RESULT_STORE``, see :mod:`repro.store`): re-running a sweep
against a warm store replays nothing at all and still renders
identical bytes.  Each design point is evaluated in a single worker
and the parent reduces the per-point values in a fixed order, so the
result — rendered table and raw rows — is byte-identical for any
worker count and for cold vs. warm trace caches
(``tests/test_sweep.py`` locks this down).

CLI::

    python -m repro.experiments.sweep --workers 8          # everything
    python -m repro.experiments.sweep --experiment mab-size \
        --grid paper --workers 4 --json
    repro sweep --experiment baselines                      # via the CLI
    repro sweep --url http://host:8321                      # remote
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.api import evaluate_many, warm_trace_cache
from repro.api.spec import RunSpec
from repro.experiments.ablation_mab_size import mab_spec
from repro.experiments.extension_baselines import D_ARCHS, I_ARCHS
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    keyed_results,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult, render
from repro.experiments.runner import arch_spec, average
from repro.workloads import BENCHMARK_NAMES

#: The paper's (Nt, Ns) grid (plus Nt=4), as swept by ablation_mab_size.
PAPER_TAG_ENTRIES: Tuple[int, ...] = (1, 2, 4)
PAPER_INDEX_ENTRIES: Tuple[int, ...] = (4, 8, 16, 32)

#: The full design-space grid the fast kernels make affordable.
FULL_TAG_ENTRIES: Tuple[int, ...] = (1, 2, 4, 8)
FULL_INDEX_ENTRIES: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)

MAB_SIZE_TITLE = (
    "Sweep: full MAB design space "
    "(average over the selected benchmarks)"
)
MAB_SIZE_PAPER = (
    "paper: 2x8 optimal for D-cache; 2x8 or 2x16 for I-cache "
    "depending on the program"
)
BASELINES_TITLE = (
    "Sweep: penalty-laden alternatives vs way memoization "
    "(averages over the selected benchmarks)"
)
BASELINES_PAPER = (
    "filter cache / way prediction / two-phase save energy "
    "but add cycles; way memoization adds none"
)


# ----------------------------------------------------------------------
# MAB design-space sweep
# ----------------------------------------------------------------------

def mab_sweep_specs(
    tag_entries: Sequence[int] = FULL_TAG_ENTRIES,
    index_entries: Sequence[int] = FULL_INDEX_ENTRIES,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
) -> List[RunSpec]:
    """Every (cache, Nt, Ns, benchmark) design point of the grid."""
    return [
        mab_spec(cache_name, nt, ns, benchmark)
        for cache_name in ("dcache", "icache")
        for nt in tag_entries
        for ns in index_entries
        for benchmark in benchmarks
    ]


def tabulate_mab_sweep(
    results: ResultMap,
    tag_entries: Sequence[int] = FULL_TAG_ENTRIES,
    index_entries: Sequence[int] = FULL_INDEX_ENTRIES,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
) -> ExperimentResult:
    """Reduce the grid, purely over ``{spec.key(): RunResult}``."""
    tag_entries = tuple(tag_entries)
    index_entries = tuple(index_entries)
    benchmarks = tuple(benchmarks)
    result = ExperimentResult(
        name="sweep_mab_size",
        title=MAB_SIZE_TITLE,
        columns=(
            "cache", "mab", "mab_hit_rate", "tags_per_access",
            "avg_power_mw", "optimal",
        ),
        paper_reference=MAB_SIZE_PAPER,
    )
    for cache_name in ("dcache", "icache"):
        rows = []
        for nt in tag_entries:
            for ns in index_entries:
                vals = [
                    spec_result(
                        results, mab_spec(cache_name, nt, ns, benchmark)
                    )
                    for benchmark in benchmarks
                ]
                rows.append({
                    "cache": cache_name,
                    "mab": f"{nt}x{ns}",
                    "mab_hit_rate": average(
                        p.counters.mab_hit_rate for p in vals
                    ),
                    "tags_per_access": average(
                        p.counters.tags_per_access for p in vals
                    ),
                    "avg_power_mw": average(
                        p.power.total_mw for p in vals
                    ),
                })
        best = min(rows, key=lambda r: r["avg_power_mw"])
        for row in rows:
            row["optimal"] = "<== optimal" if row is best else ""
            result.rows.append(row)
        result.notes.append(
            f"{cache_name}: power-optimal configuration {best['mab']} "
            f"at {best['avg_power_mw']:.2f} mW average"
        )
    runs = 2 * len(tag_entries) * len(index_entries) * len(benchmarks)
    result.notes.append(
        f"grid: {len(tag_entries)}x{len(index_entries)} configurations "
        f"per cache x {len(benchmarks)} benchmarks = {runs} runs"
    )
    return result


def sweep_mab_size(
    tag_entries: Sequence[int] = FULL_TAG_ENTRIES,
    index_entries: Sequence[int] = FULL_INDEX_ENTRIES,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    workers: Optional[int] = None,
    results: Optional[ResultMap] = None,
) -> ExperimentResult:
    """Full (Nt, Ns) grid for both caches, averaged over the suite.

    Same row/column shape as ``ablation_mab_size`` (which it subsumes:
    the paper grid is a sub-rectangle of the default full grid), with
    the per-benchmark design points fanned out across workers as one
    ``evaluate_many`` batch — or looked up in ``results`` when a
    prefetched/remote batch is supplied.
    """
    specs = mab_sweep_specs(tag_entries, index_entries, benchmarks)
    if results is None:
        warm_trace_cache(tuple(benchmarks))
        results = keyed_results(
            specs, evaluate_many(specs, workers=workers)
        )
    return tabulate_mab_sweep(
        results, tag_entries, index_entries, benchmarks
    )


# ----------------------------------------------------------------------
# baseline comparison sweep
# ----------------------------------------------------------------------

def baseline_sweep_specs(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
) -> List[RunSpec]:
    """Every (cache, baseline architecture, benchmark) point."""
    return [
        arch_spec(cache_name, arch, benchmark)
        for cache_name, archs in (("dcache", D_ARCHS), ("icache", I_ARCHS))
        for arch in archs
        for benchmark in benchmarks
    ]


def tabulate_baseline_sweep(
    results: ResultMap,
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
) -> ExperimentResult:
    """Reduce per architecture, purely over the result map."""
    benchmarks = tuple(benchmarks)
    result = ExperimentResult(
        name="sweep_baselines",
        title=BASELINES_TITLE,
        columns=(
            "cache", "architecture", "avg_power_mw",
            "avg_slowdown_pct", "avg_tags_per_access",
        ),
        paper_reference=BASELINES_PAPER,
    )
    for cache_name, archs in (("dcache", D_ARCHS), ("icache", I_ARCHS)):
        for arch in archs:
            vals = [
                spec_result(
                    results, arch_spec(cache_name, arch, benchmark)
                )
                for benchmark in benchmarks
            ]
            result.add_row(
                cache=cache_name,
                architecture=arch,
                avg_power_mw=average(p.power.total_mw for p in vals),
                avg_slowdown_pct=average(
                    100.0 * p.counters.extra_cycles / p.cycles
                    for p in vals
                ),
                avg_tags_per_access=average(
                    p.counters.tags_per_access for p in vals
                ),
            )
    result.notes.append(
        "slowdown = extra cycles / baseline cycles; way memoization "
        "is the only technique at exactly 0"
    )
    points = (len(D_ARCHS) + len(I_ARCHS)) * len(benchmarks)
    result.notes.append(
        f"{points} (cache, architecture, benchmark) points"
    )
    return result


def sweep_baselines(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    workers: Optional[int] = None,
    results: Optional[ResultMap] = None,
) -> ExperimentResult:
    """``extension_baselines`` fanned out per (baseline, workload)."""
    specs = baseline_sweep_specs(benchmarks)
    if results is None:
        warm_trace_cache(tuple(benchmarks))
        results = keyed_results(
            specs, evaluate_many(specs, workers=workers)
        )
    return tabulate_baseline_sweep(results, benchmarks)


# ----------------------------------------------------------------------
# registry records (full default grids)
# ----------------------------------------------------------------------

register(Experiment(
    name="sweep_mab_size",
    title=MAB_SIZE_TITLE,
    specs=mab_sweep_specs,
    tabulate=tabulate_mab_sweep,
    paper_reference=MAB_SIZE_PAPER,
    category="sweep",
))

register(Experiment(
    name="sweep_baselines",
    title=BASELINES_TITLE,
    specs=baseline_sweep_specs,
    tabulate=tabulate_baseline_sweep,
    paper_reference=BASELINES_PAPER,
    category="sweep",
))


#: The sweeps ``repro sweep`` / ``repro list`` expose.
SWEEPS = {
    "mab-size": (
        "full (Nt, Ns) MAB grid for both caches [sweep_mab_size]"
    ),
    "baselines": (
        "every comparison baseline x workload [sweep_baselines]"
    ),
}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _results_to_json(results: Iterable[ExperimentResult]) -> str:
    payload = [
        {
            "name": r.name,
            "title": r.title,
            "columns": list(r.columns),
            "rows": r.rows,
            "notes": r.notes,
        }
        for r in results
    ]
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Parallel design-space sweeps over the shared trace cache"
        ),
    )
    parser.add_argument(
        "--experiment", choices=("mab-size", "baselines", "all"),
        default="all", help="which sweep to run (default: all)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: all cores; 1 = serial)",
    )
    parser.add_argument(
        "--grid", choices=("paper", "full"), default="full",
        help="MAB grid: the paper's 3x4 points or the full 4x6 grid",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", metavar="NAME",
        default=list(BENCHMARK_NAMES), choices=BENCHMARK_NAMES,
        help="benchmark subset (default: the whole suite)",
    )
    parser.add_argument(
        "--url", metavar="URL", default=None,
        help="evaluate on a running repro service instead of locally",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    args = parser.parse_args(argv)

    if args.grid == "paper":
        grid = (PAPER_TAG_ENTRIES, PAPER_INDEX_ENTRIES)
    else:
        grid = (FULL_TAG_ENTRIES, FULL_INDEX_ENTRIES)
    jobs = []  # (specs builder, tabulate closure)
    if args.experiment in ("mab-size", "all"):
        jobs.append((
            lambda: mab_sweep_specs(grid[0], grid[1], args.benchmarks),
            lambda rs: tabulate_mab_sweep(
                rs, grid[0], grid[1], args.benchmarks
            ),
        ))
    if args.experiment in ("baselines", "all"):
        jobs.append((
            lambda: baseline_sweep_specs(args.benchmarks),
            lambda rs: tabulate_baseline_sweep(rs, args.benchmarks),
        ))

    if args.url is not None:
        from repro.experiments.report import fetch_results

        records = [
            Experiment(name=f"cli-sweep-{i}", title="", specs=specs,
                       tabulate=tabulate)
            for i, (specs, tabulate) in enumerate(jobs)
        ]
        try:
            fetched = fetch_results(records, url=args.url)
        except Exception as exc:  # connection/protocol errors
            print(
                f"error: service at {args.url} failed: {exc}",
                file=sys.stderr,
            )
            return 1
        results = [tabulate(fetched) for _, tabulate in jobs]
    else:
        warm_trace_cache(tuple(args.benchmarks))
        results = []
        for specs_fn, tabulate in jobs:
            specs = specs_fn()
            fetched = keyed_results(
                specs, evaluate_many(specs, workers=args.workers)
            )
            results.append(tabulate(fetched))

    if args.json:
        print(_results_to_json(results))
    else:
        print("\n\n".join(render(r) for r in results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
