"""The central experiment registry: every paper artefact, first-class.

Mirroring the architecture registry (:mod:`repro.api.registry`), every
reproduced table / figure / ablation is one declarative
:class:`Experiment` record registered here exactly once:

* ``specs()`` declares the design points the experiment consumes, as
  plain :class:`~repro.api.spec.RunSpec` objects — the same documents
  the CLI, the sweeps and the HTTP service speak;
* ``tabulate(results)`` turns ``{spec.key(): RunResult}`` into the
  finished :class:`~repro.experiments.reporting.ExperimentResult`,
  **purely**: no simulation, no evaluation, no hidden state — calling
  it twice on the same results yields identical bytes
  (``tests/test_experiment_registry.py`` asserts this for every
  registered experiment).

Because a finished table is a deterministic function of
JSON-serializable results, the *evaluation* can happen anywhere — this
process (:func:`run_experiment`), a worker pool, or a remote service
(``repro report --url`` / ``POST /v1/experiments/{name}``) — and the
rendered artefact is byte-identical either way.

A few experiments (the analytic Tables 1–3, and the ablations that
re-derive access streams: adder width, fetch width, stack traffic,
associativity) consume no run specs; they declare ``specs() == []``
and their ``tabulate`` computes from the hardware model or the cached
workload traces directly.  They still register, enumerate and render
through the same machinery.

Experiment modules self-register at import; :data:`EXPERIMENTS` names
them in report order and :func:`get_experiment` imports lazily, so
``registry.all_experiments()`` is the one enumeration the report
generator, the CLI and the service share.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api import RunSpec, evaluate_many
from repro.api.result import RunResult
from repro.experiments.reporting import ExperimentResult

#: Every experiment module, in report order.  Each module registers an
#: :class:`Experiment` of the same name at import time.
EXPERIMENTS: Tuple[str, ...] = (
    "table1_area",
    "table2_delay",
    "table3_power",
    "figure4_dcache_accesses",
    "figure5_dcache_power",
    "figure6_icache_accesses",
    "figure7_icache_power",
    "figure8_total_power",
    "ablation_consistency",
    "ablation_mab_size",
    "ablation_adder_width",
    "ablation_policies",
    "ablation_stack_traffic",
    "ablation_fetch_width",
    "ablation_energy_model",
    "extension_line_buffer",
    "extension_baselines",
    "extension_associativity",
)

#: Heavier registered experiments that are *not* part of the paper
#: report (``all_experiments``) but are addressable by name everywhere
#: an experiment is: full-grid sweeps, registered by these modules.
EXTRA_EXPERIMENT_MODULES: Dict[str, str] = {
    "sweep_mab_size": "repro.experiments.sweep",
    "sweep_baselines": "repro.experiments.sweep",
}

#: Prefix of scenario-backed experiment names: ``scenario:<name>``
#: resolves by loading ``<name>.json`` from the shipped scenario
#: library (see :mod:`repro.scenarios`).
SCENARIO_PREFIX = "scenario:"

#: ``{spec.key(): RunResult}`` — what ``tabulate`` consumes.
ResultMap = Mapping[str, RunResult]


@dataclass(frozen=True, eq=False)
class Experiment:
    """One registered experiment: declared specs + pure tabulation.

    ``title`` and ``paper_reference`` live on the record (not inside
    ``tabulate``) so the registry can enumerate finished-artefact
    metadata — ``repro list``, ``GET /v1/experiments`` — without
    evaluating anything.
    """

    name: str
    title: str
    specs: Callable[[], List[RunSpec]]
    tabulate: Callable[[ResultMap], ExperimentResult]
    paper_reference: Optional[str] = None
    #: What powers the table: ``spec-driven`` (declared RunSpecs, the
    #: default), ``analytic`` (hardware model only — instant), or
    #: ``trace-derived`` (replays modified/re-derived streams inside
    #: ``tabulate`` — local compute even with ``--url``).
    category: str = "spec-driven"

    def new_result(self, columns: Sequence[str]) -> ExperimentResult:
        """The empty result shell every ``tabulate`` starts from."""
        return ExperimentResult(
            name=self.name,
            title=self.title,
            columns=columns,
            paper_reference=self.paper_reference,
        )

    def run(
        self,
        workers: Optional[int] = 1,
        results: Optional[ResultMap] = None,
    ) -> ExperimentResult:
        """Evaluate the declared specs (unless ``results`` is given)
        and tabulate.  ``results`` may hold results for *more* specs
        than this experiment declares (e.g. one prefetched report
        batch, or a remote fetch); lookups are by canonical spec key.
        """
        if results is None:
            specs = self.specs()
            results = keyed_results(
                specs, evaluate_many(specs, workers=workers)
            )
        return self.tabulate(results)


_REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add ``experiment`` to the registry (duplicate names are an error)."""
    if experiment.name in _REGISTRY:
        raise ValueError(
            f"experiment {experiment.name!r} already registered"
        )
    _REGISTRY[experiment.name] = experiment
    return experiment


def peek(name: str) -> Optional[Experiment]:
    """The already-registered record for ``name``, or None.

    Never imports anything — the idempotence check scenario loading
    uses to avoid double registration.
    """
    return _REGISTRY.get(name)


def get_experiment(name: str) -> Experiment:
    """Look up one experiment, importing its module on first use.

    Resolves, in order: the paper-report experiments
    (:data:`EXPERIMENTS`), the extra registered experiments
    (:data:`EXTRA_EXPERIMENT_MODULES` — the full sweeps), and
    ``scenario:<name>`` records loaded from the shipped scenario
    library.
    """
    if name not in _REGISTRY:
        if name in EXPERIMENTS:
            importlib.import_module(f"repro.experiments.{name}")
        elif name in EXTRA_EXPERIMENT_MODULES:
            importlib.import_module(EXTRA_EXPERIMENT_MODULES[name])
        elif name.startswith(SCENARIO_PREFIX):
            from repro.scenarios import library

            try:
                library.register_scenario(
                    library.load_shipped(name[len(SCENARIO_PREFIX):])
                )
            except KeyError:
                pass  # fall through to the uniform unknown-name error
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{experiment_catalog()}"
        ) from None


def experiment_names() -> Tuple[str, ...]:
    """Registered experiment names, in report order."""
    return EXPERIMENTS


def experiment_catalog() -> Tuple[str, ...]:
    """Every addressable experiment name: report order, then the
    registered sweeps, then the shipped ``scenario:<name>`` records."""
    from repro.scenarios import library

    return (
        EXPERIMENTS
        + tuple(EXTRA_EXPERIMENT_MODULES)
        + tuple(
            SCENARIO_PREFIX + name
            for name in library.shipped_scenario_names()
        )
    )


def all_experiments() -> Tuple[Experiment, ...]:
    """The paper-report experiments, in report order (imports them all).

    This is the report/enumeration surface; the full catalog
    (including sweeps and shipped scenarios) is
    :func:`catalog_experiments`.
    """
    return tuple(get_experiment(name) for name in EXPERIMENTS)


def catalog_experiments() -> Tuple[Experiment, ...]:
    """Every addressable experiment record (imports/loads them all)."""
    return tuple(get_experiment(name) for name in experiment_catalog())


def run_experiment(
    experiment: Union[str, Experiment],
    workers: Optional[int] = 1,
    results: Optional[ResultMap] = None,
) -> ExperimentResult:
    """Run one experiment by name or record (see :meth:`Experiment.run`)."""
    if isinstance(experiment, str):
        experiment = get_experiment(experiment)
    return experiment.run(workers=workers, results=results)


def keyed_results(
    specs: Sequence[RunSpec], results: Sequence[RunResult]
) -> Dict[str, RunResult]:
    """The ``{spec.key(): RunResult}`` mapping ``tabulate`` consumes.

    The single defining site of the ResultMap shape: keys are
    canonical spec serializations, values align with the spec order.
    """
    return dict(zip((s.key() for s in specs), results))


def spec_result(results: ResultMap, spec: RunSpec) -> RunResult:
    """The result for ``spec``, with a usable error on a missing key.

    The helper ``tabulate`` implementations use to consume their
    declared design points; a miss means the caller evaluated a
    different spec set than the experiment declared.
    """
    try:
        return results[spec.key()]
    except KeyError:
        raise KeyError(
            f"tabulate is missing a result for declared spec "
            f"{spec.key()} (got {len(results)} results)"
        ) from None
