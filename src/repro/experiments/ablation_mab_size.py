"""Ablation: full MAB design-space sweep for both caches.

The paper reports only that 2x8 is power-optimal for the D-cache and
2x8/2x16 for the I-cache.  This sweep evaluates every (Nt, Ns) point
on the paper's grid (plus Nt=4) for both caches, pricing each with
Equation (1), and marks the power-optimal configuration per cache —
reproducing the paper's sizing conclusion and exposing the
hit-rate-vs-MAB-power trade-off.

Each point is one declarative ``RunSpec`` over the parametric
``way-memo`` architecture; ``repro.experiments.sweep`` fans the same
specs (on a wider grid) over a worker pool.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import average
from repro.workloads import BENCHMARK_NAMES

TAG_ENTRIES = (1, 2, 4)
INDEX_ENTRIES = (4, 8, 16, 32)


def mab_spec(cache: str, nt: int, ns: int, benchmark: str) -> RunSpec:
    """One parametric way-memo design point."""
    return RunSpec(
        cache=cache, arch="way-memo", workload=benchmark,
        params={"tag_entries": nt, "index_entries": ns},
    )


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        mab_spec(cache_name, nt, ns, benchmark)
        for cache_name in ("dcache", "icache")
        for nt in TAG_ENTRIES
        for ns in INDEX_ENTRIES
        for benchmark in BENCHMARK_NAMES
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "cache", "mab", "mab_hit_rate", "tags_per_access",
        "avg_power_mw", "optimal",
    ))
    for cache_name in ("dcache", "icache"):
        rows = []
        for nt in TAG_ENTRIES:
            for ns in INDEX_ENTRIES:
                points = [
                    spec_result(
                        results, mab_spec(cache_name, nt, ns, benchmark)
                    )
                    for benchmark in BENCHMARK_NAMES
                ]
                rows.append({
                    "cache": cache_name,
                    "mab": f"{nt}x{ns}",
                    "mab_hit_rate": average(
                        p.counters.mab_hit_rate for p in points
                    ),
                    "tags_per_access": average(
                        p.counters.tags_per_access for p in points
                    ),
                    "avg_power_mw": average(
                        p.power.total_mw for p in points
                    ),
                })
        best = min(rows, key=lambda r: r["avg_power_mw"])
        for row in rows:
            row["optimal"] = "<== optimal" if row is best else ""
            result.rows.append(row)
        result.notes.append(
            f"{cache_name}: power-optimal configuration {best['mab']} "
            f"at {best['avg_power_mw']:.2f} mW average"
        )
    return result


EXPERIMENT = register(Experiment(
    name="ablation_mab_size",
    title="Ablation: MAB size sweep (average over all benchmarks)",
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "paper: 2x8 optimal for D-cache; 2x8 or 2x16 for I-cache "
        "depending on the program"
    ),
))
