"""Ablation: full MAB design-space sweep for both caches.

The paper reports only that 2x8 is power-optimal for the D-cache and
2x8/2x16 for the I-cache.  This sweep evaluates every (Nt, Ns) point
on the paper's grid (plus Nt=4) for both caches, pricing each with
Equation (1), and marks the power-optimal configuration per cache —
reproducing the paper's sizing conclusion and exposing the
hit-rate-vs-MAB-power trade-off.
"""

from __future__ import annotations

from repro.cache.config import FRV_DCACHE, FRV_ICACHE
from repro.core import MABConfig, WayMemoDCache, WayMemoICache
from repro.energy import CachePowerModel, MABHardwareModel
from repro.experiments.reporting import ExperimentResult, render
from repro.experiments.runner import average
from repro.workloads import BENCHMARK_NAMES, load_workload

TAG_ENTRIES = (1, 2, 4)
INDEX_ENTRIES = (4, 8, 16, 32)


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="ablation_mab_size",
        title="Ablation: MAB size sweep (average over all benchmarks)",
        columns=(
            "cache", "mab", "mab_hit_rate", "tags_per_access",
            "avg_power_mw", "optimal",
        ),
        paper_reference=(
            "paper: 2x8 optimal for D-cache; 2x8 or 2x16 for I-cache "
            "depending on the program"
        ),
    )
    d_model = CachePowerModel(FRV_DCACHE)
    i_model = CachePowerModel(FRV_ICACHE)

    for cache_name, model, make in (
        ("dcache", d_model,
         lambda cfg: WayMemoDCache(mab_config=cfg)),
        ("icache", i_model,
         lambda cfg: WayMemoICache(mab_config=cfg)),
    ):
        rows = []
        for nt in TAG_ENTRIES:
            for ns in INDEX_ENTRIES:
                cfg = MABConfig(nt, ns)
                hw = MABHardwareModel(nt, ns)
                hit_rates, tag_rates, powers = [], [], []
                for benchmark in BENCHMARK_NAMES:
                    workload = load_workload(benchmark)
                    controller = make(cfg)
                    stream = (
                        workload.fetch if cache_name == "icache"
                        else workload.trace.data
                    )
                    counters = controller.process(stream)
                    power = model.power(
                        counters, workload.cycles, label=cfg.label,
                        mab_model=hw,
                    )
                    hit_rates.append(counters.mab_hit_rate)
                    tag_rates.append(counters.tags_per_access)
                    powers.append(power.total_mw)
                rows.append({
                    "cache": cache_name,
                    "mab": cfg.label,
                    "mab_hit_rate": average(hit_rates),
                    "tags_per_access": average(tag_rates),
                    "avg_power_mw": average(powers),
                })
        best = min(rows, key=lambda r: r["avg_power_mw"])
        for row in rows:
            row["optimal"] = "<== optimal" if row is best else ""
            result.rows.append(row)
        result.notes.append(
            f"{cache_name}: power-optimal configuration {best['mab']} "
            f"at {best['avg_power_mw']:.2f} mW average"
        )
    return result


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
