"""Figure 6: tag and way accesses per I-cache access.

Panwar & Rennels [4] (intra-line sequential elision only) against way
memoization with 2x8 / 2x16 / 2x32 MABs.  Expected shape: [4] alone
removes ~60% of tag accesses; the MAB removes most of the remainder
(paper: the 2x8 MAB reaches ~80% of [4]'s residual tag count, i.e. a
further ~20% cut, improving with MAB size).
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average
from repro.workloads import BENCHMARK_NAMES

ARCHS = ("panwar", "way-memo-2x8", "way-memo-2x16", "way-memo-2x32")


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec("icache", arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for arch in ARCHS
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "benchmark", "architecture", "tags_per_access",
        "ways_per_access", "intra_line_pct", "mab_hit_rate",
        "stale_hits",
    ))
    for benchmark in BENCHMARK_NAMES:
        for arch in ARCHS:
            c = spec_result(
                results, arch_spec("icache", arch, benchmark)
            ).counters
            result.add_row(
                benchmark=benchmark,
                architecture=arch,
                tags_per_access=c.tags_per_access,
                ways_per_access=c.ways_per_access,
                intra_line_pct=100.0 * c.intra_line_hits / c.accesses,
                mab_hit_rate=c.mab_hit_rate,
                stale_hits=c.stale_hits,
            )

    panwar_tags = average(
        row["tags_per_access"] for row in result.rows
        if row["architecture"] == "panwar"
    )
    ours_tags = average(
        row["tags_per_access"] for row in result.rows
        if row["architecture"] == "way-memo-2x8"
    )
    result.notes.append(
        f"[4] average {panwar_tags:.3f} tags/access "
        f"({100 * (1 - panwar_tags / 2):.1f}% below the original 2.0); "
        f"2x8 MAB average {ours_tags:.3f} "
        f"({100 * ours_tags / panwar_tags:.1f}% of [4]; paper ~80%)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="figure6_icache_accesses",
    title="Figure 6: tag/way accesses per I-cache access",
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "[4] cuts ~60% of tag accesses; our 2x8 MAB reduces the "
        "remaining tag accesses to ~80% of [4]"
    ),
))
