"""Ablation: the paper's MAB consistency rules vs an eviction hook.

The paper argues (Section 3.3) that its vflag clearing rules alone
keep every valid MAB pair resident in the cache, as long as the tag
side has no more entries than the cache has ways.  Every controller
in this repository verifies each MAB hit against the actual cache
content and counts violations as ``stale_hits``; this experiment
compares the ``paper`` mode against a conservative ``evict_hook`` mode
(which invalidates matching MAB pairs whenever the cache evicts a
line) on both caches and all benchmarks.

A zero stale-hit count in ``paper`` mode on every workload supports
the paper's informal argument; the hit-rate delta quantifies what the
conservative hook costs.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec
from repro.workloads import BENCHMARK_NAMES

PAIRS = (
    ("dcache", "way-memo-2x8", "way-memo-2x8-evict"),
    ("icache", "way-memo-2x16", "way-memo-2x16-evict"),
)


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec(cache, arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for cache, paper_arch, hook_arch in PAIRS
        for arch in (paper_arch, hook_arch)
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "benchmark", "cache", "mode", "mab_hit_rate", "stale_hits",
        "tags_per_access",
    ))
    total_stale_paper = 0
    for benchmark in BENCHMARK_NAMES:
        for cache, paper_arch, hook_arch in PAIRS:
            for mode, arch in (("paper", paper_arch),
                               ("evict_hook", hook_arch)):
                c = spec_result(
                    results, arch_spec(cache, arch, benchmark)
                ).counters
                if mode == "paper":
                    total_stale_paper += c.stale_hits
                result.add_row(
                    benchmark=benchmark,
                    cache=cache,
                    mode=mode,
                    mab_hit_rate=c.mab_hit_rate,
                    stale_hits=c.stale_hits,
                    tags_per_access=c.tags_per_access,
                )
    verdict = (
        "zero stale hits in paper mode across the suite - the paper's "
        "consistency argument holds on these workloads"
        if total_stale_paper == 0
        else f"{total_stale_paper} stale hits in paper mode - the "
        "paper's informal argument does NOT hold unconditionally"
    )
    result.notes.append(verdict)
    return result


EXPERIMENT = register(Experiment(
    name="ablation_consistency",
    title="Ablation: MAB consistency — paper rules vs eviction hook",
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "the paper claims its update rules alone guarantee "
        "consistency (no stale hits)"
    ),
))
