"""Result containers and plain-text rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows of named columns plus notes.

    ``paper_reference`` states what the paper reports for the same
    artefact so EXPERIMENTS.md comparisons are self-contained.
    """

    name: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: Optional[str] = None

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_for(self, **match: Any) -> Dict[str, Any]:
        """First row whose items include all of ``match``."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")


def format_cell(value: Any) -> str:
    """The one cell formatter every table renderer shares.

    Floats print with three decimals, everything else verbatim; both
    the aligned text tables (:func:`render`) and the markdown report
    (:mod:`repro.experiments.report`) format through here, so the two
    surfaces can never drift apart.
    """
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = list(result.columns)
    body = [
        [format_cell(row.get(col, "")) for col in header]
        for row in result.rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {result.title} =="]
    if result.paper_reference:
        lines.append(f"   paper: {result.paper_reference}")
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    for note in result.notes:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 40,
    unit: str = "",
) -> str:
    """A quick ASCII horizontal bar chart (for figure experiments)."""
    peak = max(values) if values else 1.0
    lines = []
    label_w = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 0) if peak else ""
        lines.append(f"{label.ljust(label_w)} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)
