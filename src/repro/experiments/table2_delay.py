"""Table 2: MAB critical-path delay (ns) and cycle-time headroom."""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.energy.mab_model import (
    MABHardwareModel,
    PAPER_GRID,
    PAPER_TABLE2_DELAY_NS,
)
from repro.energy.technology import FRV_TECH
from repro.experiments.registry import Experiment, ResultMap, register
from repro.experiments.reporting import ExperimentResult

#: The FR-V's maximum clock is 400 MHz -> 2.5 ns cycle (paper Sec. 4).
CYCLE_TIME_NS = 2.5


def specs() -> List[RunSpec]:
    """Analytic hardware model only — no simulation design points."""
    return []


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "tag_entries", "index_entries", "delay_ns", "paper_ns",
        "fits_400mhz",
    ))
    for nt, ns in PAPER_GRID:
        model = MABHardwareModel(nt, ns)
        result.add_row(
            tag_entries=nt,
            index_entries=ns,
            delay_ns=model.delay_ns(),
            paper_ns=PAPER_TABLE2_DELAY_NS[(nt, ns)],
            fits_400mhz=model.fits_cycle(CYCLE_TIME_NS),
        )
    result.notes.append(
        f"CPU cycle at 360 MHz: {1e9 / FRV_TECH.frequency_hz:.2f} ns; "
        f"at the 400 MHz maximum: {CYCLE_TIME_NS:.2f} ns"
    )
    return result


EXPERIMENT = register(Experiment(
    name="table2_delay",
    title="Table 2: delay of the added MAB circuit (ns)",
    specs=specs,
    tabulate=tabulate,
    category="analytic",
    paper_reference=(
        "all configurations well under the 2.5 ns cycle -> "
        "zero performance penalty"
    ),
))
