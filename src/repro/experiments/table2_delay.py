"""Table 2: MAB critical-path delay (ns) and cycle-time headroom."""

from __future__ import annotations

from repro.energy.mab_model import (
    MABHardwareModel,
    PAPER_GRID,
    PAPER_TABLE2_DELAY_NS,
)
from repro.energy.technology import FRV_TECH
from repro.experiments.reporting import ExperimentResult, render

#: The FR-V's maximum clock is 400 MHz -> 2.5 ns cycle (paper Sec. 4).
CYCLE_TIME_NS = 2.5


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="table2_delay",
        title="Table 2: delay of the added MAB circuit (ns)",
        columns=(
            "tag_entries", "index_entries", "delay_ns", "paper_ns",
            "fits_400mhz",
        ),
        paper_reference=(
            "all configurations well under the 2.5 ns cycle -> "
            "zero performance penalty"
        ),
    )
    for nt, ns in PAPER_GRID:
        model = MABHardwareModel(nt, ns)
        result.add_row(
            tag_entries=nt,
            index_entries=ns,
            delay_ns=model.delay_ns(),
            paper_ns=PAPER_TABLE2_DELAY_NS[(nt, ns)],
            fits_400mhz=model.fits_cycle(CYCLE_TIME_NS),
        )
    result.notes.append(
        f"CPU cycle at 360 MHz: {1e9 / FRV_TECH.frequency_hz:.2f} ns; "
        f"at the 400 MHz maximum: {CYCLE_TIME_NS:.2f} ns"
    )
    return result


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
