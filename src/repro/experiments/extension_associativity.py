"""Extension: cache associativity sweep + the consistency precondition.

Two questions the paper leaves open:

1. **How do the savings scale with associativity?**  Way memoization
   removes (ways - 1) data-way reads and all tag reads on a MAB hit,
   so its benefit should grow with the way count.  We sweep 1/2/4/8
   ways at constant 32 kB capacity.

2. **Is the "tag entries <= ways" condition real?**  Section 3.3
   claims MAB/cache consistency holds "as long as the number of tag
   entries in the MAB is smaller than the number of cache-ways".  We
   run a MAB with MORE tag entries than ways (4 tag entries on the
   2-way cache and on a direct-mapped cache) in paper mode and count
   stale hits — if the condition matters, violations appear here and
   only here.

The swept cache geometries are not registered architectures, so this
experiment declares no run specs and replays the custom
configurations inside ``tabulate``.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.cache.config import CacheConfig
from repro.core import MABConfig, WayMemoDCache
from repro.experiments.registry import Experiment, ResultMap, register
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import average
from repro.workloads import BENCHMARK_NAMES, load_workload

WAY_SWEEP = (1, 2, 4, 8)
CACHE_BYTES = 32 * 1024
LINE_BYTES = 32


def specs() -> List[RunSpec]:
    """Custom cache geometries — no declarative design points."""
    return []


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "ways", "mab", "tag_reduction_pct", "way_reduction_pct",
        "stale_hits", "condition_met",
    ))
    for ways in WAY_SWEEP:
        cache_config = CacheConfig(CACHE_BYTES, ways, LINE_BYTES)
        for tag_entries in (2, 4):
            mab_config = MABConfig(tag_entries, 8)
            tag_reds, way_reds, stale = [], [], 0
            for benchmark in BENCHMARK_NAMES:
                workload = load_workload(benchmark)
                memo = WayMemoDCache(cache_config, mab_config)
                c = memo.process(workload.trace.data)
                stale += c.stale_hits
                # Original architecture cost on the same geometry:
                # loads read all ways + all tags; stores one way.
                orig_tags = ways * c.accesses
                orig_ways = (
                    ways * c.loads + c.stores + c.cache_misses
                )
                tag_reds.append(1 - c.tag_accesses / orig_tags)
                way_reds.append(1 - c.way_accesses / orig_ways)
            result.add_row(
                ways=ways,
                mab=mab_config.label,
                tag_reduction_pct=100 * average(tag_reds),
                way_reduction_pct=100 * average(way_reds),
                stale_hits=stale,
                condition_met=tag_entries <= ways,
            )
    safe = [r for r in result.rows if r["condition_met"]]
    unsafe = [r for r in result.rows if not r["condition_met"]]
    result.notes.append(
        f"stale hits with condition met: {sum(r['stale_hits'] for r in safe)}; "
        f"with condition violated: {sum(r['stale_hits'] for r in unsafe)}"
    )
    reds = {
        r["ways"]: r["way_reduction_pct"]
        for r in result.rows if r["mab"] == "2x8" and r["ways"] >= 2
    }
    result.notes.append(
        "way-access reduction grows with associativity: "
        + ", ".join(f"{w}-way {reds[w]:.1f}%" for w in sorted(reds))
    )
    return result


EXPERIMENT = register(Experiment(
    name="extension_associativity",
    title=(
        "Extension: associativity sweep and the tag-entries<=ways "
        "consistency condition (D-cache, averages over the suite)"
    ),
    specs=specs,
    tabulate=tabulate,
    category="trace-derived",
    paper_reference=(
        "Sec 3.3: consistency guaranteed while MAB tag entries do "
        "not exceed the cache way count"
    ),
))
