"""Shared experiment machinery, now a thin shim over :mod:`repro.api`.

The architecture registry, counter plumbing and power pricing all live
in the declarative api layer; this module keeps the names the
experiment modules (and external callers) grew up with:

* ``dcache_counters`` / ``icache_counters`` / ``dcache_power`` /
  ``icache_power`` — per-(benchmark, architecture) evaluation, cached
  per process through the api's result cache.
* ``DCACHE_ARCHS`` / ``ICACHE_ARCHS`` / ``AUX_BITS`` /
  ``MAB_GEOMETRY`` — legacy alias views re-exported from
  :mod:`repro.api.registry`, the single defining site.
* ``arch_spec`` — the canonical :class:`~repro.api.spec.RunSpec` for a
  (cache, architecture, benchmark) point; the registered experiments
  (:mod:`repro.experiments.registry`) build their declared ``specs()``
  and their ``tabulate`` lookups from it.

Note the cached ``*_counters`` / ``*_power`` helpers evaluate on
miss; experiment ``tabulate`` implementations must consume their
declared results mapping instead (purity is tested), so these helpers
are for library users, examples and tests.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Tuple

from repro.api import RunSpec, evaluate
from repro.api.registry import (  # noqa: F401  (re-exported aliases)
    AUX_BITS,
    DCACHE_ARCHS,
    ICACHE_ARCHS,
    MAB_GEOMETRY,
)
from repro.cache.stats import AccessCounters
from repro.energy import PowerBreakdown


def arch_spec(cache: str, arch: str, benchmark: str) -> RunSpec:
    """The canonical spec for one (cache, architecture, benchmark)."""
    return RunSpec(cache=cache, arch=arch, workload=benchmark)


@lru_cache(maxsize=None)
def dcache_counters(benchmark: str, arch: str) -> AccessCounters:
    """Run ``arch`` over ``benchmark``'s data trace (cached)."""
    return evaluate(arch_spec("dcache", arch, benchmark)).counters


@lru_cache(maxsize=None)
def icache_counters(benchmark: str, arch: str) -> AccessCounters:
    """Run ``arch`` over ``benchmark``'s fetch stream (cached)."""
    return evaluate(arch_spec("icache", arch, benchmark)).counters


def dcache_power(benchmark: str, arch: str) -> PowerBreakdown:
    """Equation (1) for one D-cache architecture on one benchmark."""
    return evaluate(arch_spec("dcache", arch, benchmark)).power


def icache_power(benchmark: str, arch: str) -> PowerBreakdown:
    """Equation (1) for one I-cache architecture on one benchmark."""
    return evaluate(arch_spec("icache", arch, benchmark)).power


def geometric_mean(values) -> float:
    """Geometric mean, accumulated in log-space.

    A running product underflows (or overflows) for long lists of
    small (large) ratios; summing logarithms is exact in the float
    range instead.  Any zero value makes the mean zero, matching the
    limit of the product form; negative values are rejected (the
    product form would silently return NaN or a complex-rooted
    garbage value).
    """
    values = list(values)
    if not values:
        return 0.0
    total = 0.0
    for v in values:
        if v < 0:
            raise ValueError(
                f"geometric mean undefined for negative value {v!r}"
            )
        if v == 0:
            return 0.0
        total += math.log(v)
    return math.exp(total / len(values))


def average(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def savings(baseline: float, ours: float) -> float:
    """Fractional reduction of ``ours`` relative to ``baseline``."""
    return 1.0 - ours / baseline if baseline else 0.0


Counters = Tuple[str, AccessCounters]
