"""Shared experiment machinery: architecture registry + cached runs.

Controllers are stateful, so each (benchmark, architecture) pair gets
a fresh instance; the resulting counters are cached per process since
both the traces and the controllers are deterministic.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.baselines import (
    FilterCacheDCache,
    FilterCacheICache,
    MaLinksICache,
    OriginalDCache,
    OriginalICache,
    PanwarICache,
    SetBufferDCache,
    TwoPhaseDCache,
    TwoPhaseICache,
    WayPredictionDCache,
    WayPredictionICache,
)
from repro.cache.config import FRV_DCACHE, FRV_ICACHE
from repro.cache.stats import AccessCounters
from repro.core import (
    LineBufferWayMemoDCache,
    MABConfig,
    WayMemoDCache,
    WayMemoICache,
)
from repro.energy import CachePowerModel, MABHardwareModel, PowerBreakdown
from repro.workloads import load_workload

#: D-cache architecture factories, keyed by experiment label.
DCACHE_ARCHS: Dict[str, Callable[[], object]] = {
    "original": OriginalDCache,
    "set-buffer": SetBufferDCache,
    "way-memo-2x8": lambda: WayMemoDCache(mab_config=MABConfig(2, 8)),
    "way-memo-2x8-evict": lambda: WayMemoDCache(
        mab_config=MABConfig(2, 8, consistency="evict_hook")
    ),
    "way-memo+line-buffer": lambda: LineBufferWayMemoDCache(
        mab_config=MABConfig(2, 8)
    ),
    "filter-cache": FilterCacheDCache,
    "way-prediction": WayPredictionDCache,
    "two-phase": TwoPhaseDCache,
}

#: I-cache architecture factories.
ICACHE_ARCHS: Dict[str, Callable[[], object]] = {
    "original": OriginalICache,
    "panwar": PanwarICache,
    "ma-links": MaLinksICache,
    "way-memo-2x8": lambda: WayMemoICache(mab_config=MABConfig(2, 8)),
    "way-memo-2x16": lambda: WayMemoICache(mab_config=MABConfig(2, 16)),
    "way-memo-2x32": lambda: WayMemoICache(mab_config=MABConfig(2, 32)),
    "way-memo-2x16-evict": lambda: WayMemoICache(
        mab_config=MABConfig(2, 16, consistency="evict_hook")
    ),
    "filter-cache": FilterCacheICache,
    "way-prediction": WayPredictionICache,
    "two-phase": TwoPhaseICache,
}

#: Auxiliary-structure storage bits for non-MAB baselines (charged as a
#: small SRAM by the power model).
AUX_BITS = {
    "set-buffer": 2 * (2 * 18 + 9),          # 2 sets x (2 tags + index)
    "filter-cache": 8 * (32 * 8 + 27),       # 8 lines x (data + tag)
    "way-prediction": 512 * 1,               # 1 prediction bit per set
    # [11]: 2 links x (1 valid + 1 way bit) per line, every line.
    "ma-links": 1024 * 2 * 2,
}

#: MAB geometry per way-memo architecture label.
MAB_GEOMETRY = {
    "way-memo-2x8": (2, 8),
    "way-memo-2x8-evict": (2, 8),
    "way-memo+line-buffer": (2, 8),
    "way-memo-2x16": (2, 16),
    "way-memo-2x16-evict": (2, 16),
    "way-memo-2x32": (2, 32),
}


@lru_cache(maxsize=None)
def dcache_counters(benchmark: str, arch: str) -> AccessCounters:
    """Run ``arch`` over ``benchmark``'s data trace (cached)."""
    workload = load_workload(benchmark)
    controller = DCACHE_ARCHS[arch]()
    return controller.process(workload.trace.data)


@lru_cache(maxsize=None)
def icache_counters(benchmark: str, arch: str) -> AccessCounters:
    """Run ``arch`` over ``benchmark``'s fetch stream (cached)."""
    workload = load_workload(benchmark)
    controller = ICACHE_ARCHS[arch]()
    return controller.process(workload.fetch)


_DPOWER = CachePowerModel(FRV_DCACHE)
_IPOWER = CachePowerModel(FRV_ICACHE)


def _power(
    model: CachePowerModel,
    counters: AccessCounters,
    cycles: int,
    arch: str,
) -> PowerBreakdown:
    mab_model = None
    aux_bits = AUX_BITS.get(arch)
    if arch in MAB_GEOMETRY:
        nt, ns = MAB_GEOMETRY[arch]
        mab_model = MABHardwareModel(nt, ns)
    return model.power(
        counters, cycles, label=arch, mab_model=mab_model,
        aux_bits=aux_bits,
    )


def dcache_power(benchmark: str, arch: str) -> PowerBreakdown:
    """Equation (1) for one D-cache architecture on one benchmark."""
    workload = load_workload(benchmark)
    return _power(
        _DPOWER, dcache_counters(benchmark, arch), workload.cycles, arch
    )


def icache_power(benchmark: str, arch: str) -> PowerBreakdown:
    """Equation (1) for one I-cache architecture on one benchmark."""
    workload = load_workload(benchmark)
    return _power(
        _IPOWER, icache_counters(benchmark, arch), workload.cycles, arch
    )


def geometric_mean(values) -> float:
    """Geometric mean, accumulated in log-space.

    A running product underflows (or overflows) for long lists of
    small (large) ratios; summing logarithms is exact in the float
    range instead.  Any zero value makes the mean zero, matching the
    limit of the product form; negative values are rejected (the
    product form would silently return NaN or a complex-rooted
    garbage value).
    """
    values = list(values)
    if not values:
        return 0.0
    total = 0.0
    for v in values:
        if v < 0:
            raise ValueError(
                f"geometric mean undefined for negative value {v!r}"
            )
        if v == 0:
            return 0.0
        total += math.log(v)
    return math.exp(total / len(values))


def average(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def savings(baseline: float, ours: float) -> float:
    """Fractional reduction of ``ours`` relative to ``baseline``."""
    return 1.0 - ours / baseline if baseline else 0.0


Counters = Tuple[str, AccessCounters]
