"""Ablation: cache replacement policy sensitivity.

The paper's consistency argument leans on LRU in both the cache and
the MAB.  This ablation swaps the *cache* replacement policy (LRU /
pseudo-LRU / FIFO / random) under the paper-mode MAB and reports the
stale-hit count and hit rates — checking whether the guarantee is an
LRU artefact and how much the technique's benefit depends on the
policy.
"""

from __future__ import annotations

from repro.core import MABConfig, WayMemoDCache, WayMemoICache
from repro.experiments.reporting import ExperimentResult, render
from repro.workloads import BENCHMARK_NAMES, load_workload

POLICIES = ("lru", "plru", "fifo", "random")


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="ablation_policies",
        title="Ablation: replacement policy vs MAB consistency",
        columns=(
            "cache", "policy", "total_stale_hits", "avg_mab_hit_rate",
            "avg_cache_hit_rate",
        ),
        paper_reference=(
            "the paper's argument assumes LRU; non-LRU caches may "
            "evict lines the MAB still memoizes"
        ),
    )
    for cache_name, make in (
        ("dcache", lambda policy: WayMemoDCache(
            mab_config=MABConfig(2, 8), policy=policy)),
        ("icache", lambda policy: WayMemoICache(
            mab_config=MABConfig(2, 16), policy=policy)),
    ):
        for policy in POLICIES:
            stale = 0
            mab_rates, cache_rates = [], []
            for benchmark in BENCHMARK_NAMES:
                workload = load_workload(benchmark)
                controller = make(policy)
                stream = (
                    workload.fetch if cache_name == "icache"
                    else workload.trace.data
                )
                c = controller.process(stream)
                stale += c.stale_hits
                mab_rates.append(c.mab_hit_rate)
                cache_rates.append(c.cache_hit_rate)
            result.add_row(
                cache=cache_name,
                policy=policy,
                total_stale_hits=stale,
                avg_mab_hit_rate=sum(mab_rates) / len(mab_rates),
                avg_cache_hit_rate=sum(cache_rates) / len(cache_rates),
            )
    return result


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
