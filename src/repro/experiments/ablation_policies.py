"""Ablation: cache replacement policy sensitivity.

The paper's consistency argument leans on LRU in both the cache and
the MAB.  This ablation swaps the *cache* replacement policy (LRU /
pseudo-LRU / FIFO / random) under the paper-mode MAB and reports the
stale-hit count and hit rates — checking whether the guarantee is an
LRU artefact and how much the technique's benefit depends on the
policy.

Each point is a declarative ``RunSpec`` over the parametric
``way-memo`` architecture (2x8 on the D-cache, 2x16 on the I-cache —
the registry defaults) with the ``policy`` parameter overridden.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import average
from repro.workloads import BENCHMARK_NAMES

POLICIES = ("lru", "plru", "fifo", "random")


def policy_spec(cache: str, policy: str, benchmark: str) -> RunSpec:
    """One way-memo point with the cache replacement policy swapped."""
    return RunSpec(
        cache=cache, arch="way-memo", workload=benchmark,
        params={"policy": policy},
    )


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        policy_spec(cache_name, policy, benchmark)
        for cache_name in ("dcache", "icache")
        for policy in POLICIES
        for benchmark in BENCHMARK_NAMES
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "cache", "policy", "total_stale_hits", "avg_mab_hit_rate",
        "avg_cache_hit_rate",
    ))
    for cache_name in ("dcache", "icache"):
        for policy in POLICIES:
            points = [
                spec_result(
                    results, policy_spec(cache_name, policy, benchmark)
                ).counters
                for benchmark in BENCHMARK_NAMES
            ]
            result.add_row(
                cache=cache_name,
                policy=policy,
                total_stale_hits=sum(c.stale_hits for c in points),
                avg_mab_hit_rate=average(
                    c.mab_hit_rate for c in points
                ),
                avg_cache_hit_rate=average(
                    c.cache_hit_rate for c in points
                ),
            )
    return result


EXPERIMENT = register(Experiment(
    name="ablation_policies",
    title="Ablation: replacement policy vs MAB consistency",
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "the paper's argument assumes LRU; non-LRU caches may "
        "evict lines the MAB still memoizes"
    ),
))
