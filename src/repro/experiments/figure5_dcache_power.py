"""Figure 5: D-cache power (mW) with data/tag/auxiliary breakdown.

Original vs set buffer [14] vs way memoization (2x8 MAB), priced with
Equation (1).  Expected shape: way memoization cuts D-cache power by
roughly a third on average (paper: 35%), with the tag-power component
nearly eliminated and a small MAB adder.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average, savings
from repro.workloads import BENCHMARK_NAMES

ARCHS = ("original", "set-buffer", "way-memo-2x8")


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec("dcache", arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for arch in ARCHS
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "benchmark", "architecture", "data_mw", "tag_mw",
        "aux_mw", "leak_mw", "total_mw", "saving_pct",
    ))
    for benchmark in BENCHMARK_NAMES:
        baseline = spec_result(
            results, arch_spec("dcache", "original", benchmark)
        ).power.total_mw
        for arch in ARCHS:
            p = spec_result(
                results, arch_spec("dcache", arch, benchmark)
            ).power
            result.add_row(
                benchmark=benchmark,
                architecture=arch,
                data_mw=p.data_mw,
                tag_mw=p.tag_mw,
                aux_mw=p.aux_mw,
                leak_mw=p.leakage_mw,
                total_mw=p.total_mw,
                saving_pct=100.0 * savings(baseline, p.total_mw),
            )
    avg_saving = average(
        row["saving_pct"] for row in result.rows
        if row["architecture"] == "way-memo-2x8"
    )
    result.notes.append(
        f"average way-memo saving {avg_saving:.1f}% (paper: ~35%)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="figure5_dcache_power",
    title="Figure 5: D-cache power consumption (mW)",
    specs=specs,
    tabulate=tabulate,
    paper_reference="way memoization saves ~35% on average",
))
