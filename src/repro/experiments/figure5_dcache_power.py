"""Figure 5: D-cache power (mW) with data/tag/auxiliary breakdown.

Original vs set buffer [14] vs way memoization (2x8 MAB), priced with
Equation (1).  Expected shape: way memoization cuts D-cache power by
roughly a third on average (paper: 35%), with the tag-power component
nearly eliminated and a small MAB adder.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api import RunSpec, evaluate_many
from repro.experiments.reporting import ExperimentResult, render
from repro.experiments.runner import (
    arch_spec,
    average,
    dcache_power,
    savings,
)
from repro.workloads import BENCHMARK_NAMES

ARCHS = ("original", "set-buffer", "way-memo-2x8")


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec("dcache", arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for arch in ARCHS
    ]


def run(workers: Optional[int] = 1) -> ExperimentResult:
    evaluate_many(specs(), workers=workers)
    result = ExperimentResult(
        name="figure5_dcache_power",
        title="Figure 5: D-cache power consumption (mW)",
        columns=(
            "benchmark", "architecture", "data_mw", "tag_mw",
            "aux_mw", "leak_mw", "total_mw", "saving_pct",
        ),
        paper_reference="way memoization saves ~35% on average",
    )
    for benchmark in BENCHMARK_NAMES:
        baseline = dcache_power(benchmark, "original").total_mw
        for arch in ARCHS:
            p = dcache_power(benchmark, arch)
            result.add_row(
                benchmark=benchmark,
                architecture=arch,
                data_mw=p.data_mw,
                tag_mw=p.tag_mw,
                aux_mw=p.aux_mw,
                leak_mw=p.leakage_mw,
                total_mw=p.total_mw,
                saving_pct=100.0 * savings(baseline, p.total_mw),
            )
    avg_saving = average(
        row["saving_pct"] for row in result.rows
        if row["architecture"] == "way-memo-2x8"
    )
    result.notes.append(
        f"average way-memo saving {avg_saving:.1f}% (paper: ~35%)"
    )
    return result


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
