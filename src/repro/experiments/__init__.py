"""Experiment harness: one module per paper table / figure + ablations.

Every module declares an :class:`~repro.experiments.registry.Experiment`
— its run specs (``specs() -> list[RunSpec]``) and a **pure**
tabulation (``tabulate({spec_key: RunResult}) -> ExperimentResult``) —
and self-registers in the central registry at import, exactly as
architectures do in :mod:`repro.api.registry`.  The registry is the
one enumeration the report generator, ``repro run``/``repro report``,
``repro list`` and the HTTP service's experiments endpoints share.

Programmatic use
----------------
Each experiment is sugar over the declarative :mod:`repro.api` layer —
a design point is three lines from the library::

    from repro.api import RunSpec, evaluate
    spec = RunSpec(cache="dcache", arch="way-memo-2x8", workload="dct")
    result = evaluate(spec)   # .counters, .power, .cycles

A finished table is one more line::

    from repro.experiments.registry import run_experiment
    table = run_experiment("figure4_dcache_accesses", workers=4)

Because ``tabulate`` is a pure function of JSON-serializable results,
the evaluation can also happen remotely: ``repro report --url`` /
``repro run --url`` fetch the results from a running service
(``POST /v1/experiments/{name}``) and tabulate locally, byte-identical
to the in-process output.

Paper artefacts
---------------
========================== ========================================
module                      reproduces
========================== ========================================
``table1_area``             Table 1 — MAB area (mm^2)
``table2_delay``            Table 2 — MAB critical-path delay (ns)
``table3_power``            Table 3 — MAB active/sleep power (mW)
``figure4_dcache_accesses`` Figure 4 — D-cache tag/way accesses
``figure5_dcache_power``    Figure 5 — D-cache power breakdown
``figure6_icache_accesses`` Figure 6 — I-cache tag/way accesses
``figure7_icache_power``    Figure 7 — I-cache power
``figure8_total_power``     Figure 8 — total I+D power
========================== ========================================

Ablations / extensions (beyond the paper's artefacts)
-----------------------------------------------------
``ablation_consistency``    paper vs evict-hook MAB consistency
``ablation_mab_size``       full (Nt, Ns) design-space sweep
``ablation_adder_width``    narrow-adder width vs bypass rate
``ablation_policies``       cache replacement policy sensitivity
``ablation_stack_traffic``  compiled-code stack traffic vs MAB hit rate
``ablation_fetch_width``    fetch-packet width sensitivity
``ablation_energy_model``   tag/way energy-ratio sensitivity
``extension_line_buffer``   the conclusion's line-buffer combination
``extension_baselines``     filter cache / way prediction / two-phase
``extension_associativity`` way-count sweep + the Nt<=ways condition
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    all_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.reporting import ExperimentResult, render

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "render",
    "run_experiment",
]
