"""Experiment harness: one module per paper table / figure + ablations.

Every module exposes ``run()`` returning an
:class:`~repro.experiments.reporting.ExperimentResult` and ``main()``
that prints it; ``python -m repro <experiment>`` dispatches here.

Programmatic use
----------------
Each experiment is sugar over the declarative :mod:`repro.api` layer —
a design point is three lines from the library::

    from repro.api import RunSpec, evaluate
    spec = RunSpec(cache="dcache", arch="way-memo-2x8", workload="dct")
    result = evaluate(spec)   # .counters, .power, .cycles

The same spec runs from the CLI as ``repro eval`` with the spec's
JSON (``spec.to_json()``), and batches fan out over the worker pool
via :func:`repro.api.evaluate_many`.  Experiment modules that declare
their design points expose ``specs() -> list[RunSpec]``; ``run()``
accepts ``workers=`` and prefetches those points through the shared
pool, so ``repro run --workers N`` and ``repro report`` parallelize
without changing a byte of output.

Paper artefacts
---------------
========================== ========================================
module                      reproduces
========================== ========================================
``table1_area``             Table 1 — MAB area (mm^2)
``table2_delay``            Table 2 — MAB critical-path delay (ns)
``table3_power``            Table 3 — MAB active/sleep power (mW)
``figure4_dcache_accesses`` Figure 4 — D-cache tag/way accesses
``figure5_dcache_power``    Figure 5 — D-cache power breakdown
``figure6_icache_accesses`` Figure 6 — I-cache tag/way accesses
``figure7_icache_power``    Figure 7 — I-cache power
``figure8_total_power``     Figure 8 — total I+D power
========================== ========================================

Ablations / extensions (beyond the paper's artefacts)
-----------------------------------------------------
``ablation_consistency``    paper vs evict-hook MAB consistency
``ablation_mab_size``       full (Nt, Ns) design-space sweep
``ablation_adder_width``    narrow-adder width vs bypass rate
``ablation_policies``       cache replacement policy sensitivity
``ablation_stack_traffic``  compiled-code stack traffic vs MAB hit rate
``ablation_fetch_width``    fetch-packet width sensitivity
``ablation_energy_model``   tag/way energy-ratio sensitivity
``extension_line_buffer``   the conclusion's line-buffer combination
``extension_baselines``     filter cache / way prediction / two-phase
``extension_associativity`` way-count sweep + the Nt<=ways condition
"""

from repro.experiments.reporting import ExperimentResult, render

EXPERIMENTS = (
    "table1_area",
    "table2_delay",
    "table3_power",
    "figure4_dcache_accesses",
    "figure5_dcache_power",
    "figure6_icache_accesses",
    "figure7_icache_power",
    "figure8_total_power",
    "ablation_consistency",
    "ablation_mab_size",
    "ablation_adder_width",
    "ablation_policies",
    "ablation_stack_traffic",
    "ablation_fetch_width",
    "ablation_energy_model",
    "extension_line_buffer",
    "extension_baselines",
    "extension_associativity",
)

__all__ = ["EXPERIMENTS", "ExperimentResult", "render"]
