"""Figure 4: tag and way accesses per D-cache access.

Three architectures per benchmark, as in the paper's grouped bars:
the original cache, the lightweight set buffer [14], and way
memoization with the 2x8 MAB.  Expected shape: our tag accesses drop
to ~10% of the original (paper: "reduced by 90%"), ways per access
fall from just under 2 towards just over 1 (at least one way is
always read).
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average
from repro.workloads import BENCHMARK_NAMES

ARCHS = ("original", "set-buffer", "way-memo-2x8")


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec("dcache", arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for arch in ARCHS
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "benchmark", "architecture", "tags_per_access",
        "ways_per_access", "mab_hit_rate", "stale_hits",
    ))
    for benchmark in BENCHMARK_NAMES:
        for arch in ARCHS:
            c = spec_result(
                results, arch_spec("dcache", arch, benchmark)
            ).counters
            result.add_row(
                benchmark=benchmark,
                architecture=arch,
                tags_per_access=c.tags_per_access,
                ways_per_access=c.ways_per_access,
                mab_hit_rate=c.mab_hit_rate,
                stale_hits=c.stale_hits,
            )

    ours_tags = average(
        row["tags_per_access"] for row in result.rows
        if row["architecture"] == "way-memo-2x8"
    )
    orig_tags = average(
        row["tags_per_access"] for row in result.rows
        if row["architecture"] == "original"
    )
    result.notes.append(
        f"average tag accesses: original {orig_tags:.3f} vs "
        f"way-memo {ours_tags:.3f} "
        f"({100 * (1 - ours_tags / orig_tags):.1f}% reduction; "
        "paper reports ~90%)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="figure4_dcache_accesses",
    title="Figure 4: tag/way accesses per D-cache access",
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "tag accesses cut ~90% vs original; ways/access in (1, 2) "
        "because stores hit a single way and at least one way is "
        "always read"
    ),
))
