"""Table 1: MAB area (mm^2) over the (tag, set-index) entry grid."""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.energy.mab_model import (
    MABHardwareModel,
    PAPER_GRID,
    PAPER_TABLE1_AREA_MM2,
)
from repro.experiments.registry import Experiment, ResultMap, register
from repro.experiments.reporting import ExperimentResult


def specs() -> List[RunSpec]:
    """Analytic hardware model only — no simulation design points."""
    return []


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "tag_entries", "index_entries", "area_mm2", "paper_mm2",
        "overhead_pct", "storage_bits",
    ))
    for nt, ns in PAPER_GRID:
        model = MABHardwareModel(nt, ns)
        result.add_row(
            tag_entries=nt,
            index_entries=ns,
            area_mm2=model.area_mm2(),
            paper_mm2=PAPER_TABLE1_AREA_MM2[(nt, ns)],
            overhead_pct=100.0 * model.area_overhead(),
            storage_bits=model.storage_bits,
        )
    d_mab = MABHardwareModel(2, 8)
    i_mab16 = MABHardwareModel(2, 16)
    i_mab32 = MABHardwareModel(2, 32)
    result.notes.append(
        f"2x8 overhead {100 * d_mab.area_overhead():.1f}% (paper ~3%), "
        f"2x16 {100 * i_mab16.area_overhead():.1f}% (paper 7.5%), "
        f"2x32 {100 * i_mab32.area_overhead():.1f}% (paper 27.5%)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="table1_area",
    title="Table 1: MAB area overhead (mm^2)",
    specs=specs,
    tabulate=tabulate,
    category="analytic",
    paper_reference=(
        "2x8 D-cache MAB costs ~3% of the cache macro; "
        "2x16 vs 2x32 I-cache MABs cost 7.5% vs 27.5%"
    ),
))
