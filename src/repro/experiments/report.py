"""Full reproduction report generator.

``repro report [-o FILE]`` runs every registered experiment and
renders one self-contained markdown document: the reproduced tables
and figures, each with its paper reference and notes.  This is the
artefact to diff across code changes — if an optimisation or fix
shifts any reproduced number, the report shows where.
"""

from __future__ import annotations

import importlib
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS
from repro.experiments.reporting import ExperimentResult


def _to_markdown(result: ExperimentResult) -> str:
    lines = [f"## {result.title}", ""]
    if result.paper_reference:
        lines += [f"*Paper:* {result.paper_reference}", ""]
    header = list(result.columns)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in result.rows:
        cells = []
        for col in header:
            value = row.get(col, "")
            cells.append(
                f"{value:.3f}" if isinstance(value, float) else str(value)
            )
        lines.append("| " + " | ".join(cells) + " |")
    for note in result.notes:
        lines += ["", f"> {note}"]
    lines.append("")
    return "\n".join(lines)


def generate(
    experiments: Optional[List[str]] = None,
    progress: bool = False,
) -> str:
    """Run ``experiments`` (default: all) and return the markdown."""
    names = list(experiments or EXPERIMENTS)
    sections = [
        "# Reproduction report",
        "",
        "Ishihara & Fallah, *A Way Memoization Technique for Reducing "
        "Power Consumption of Caches in Application Specific Integrated "
        "Processors*, DATE 2005.",
        "",
        f"Experiments: {', '.join(names)}",
        "",
    ]
    for name in names:
        if progress:
            print(f"  running {name} ...", flush=True)
        started = time.perf_counter()
        module = importlib.import_module(f"repro.experiments.{name}")
        result = module.run()
        elapsed = time.perf_counter() - started
        sections.append(_to_markdown(result))
        sections.append(f"*(regenerated in {elapsed:.1f} s)*")
        sections.append("")
    return "\n".join(sections)


def main(output: Optional[str] = None) -> None:
    markdown = generate(progress=True)
    if output:
        with open(output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {output}")
    else:
        print(markdown)


if __name__ == "__main__":
    main()
