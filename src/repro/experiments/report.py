"""Full reproduction report generator.

``repro report [-o FILE] [--workers N] [--url URL]`` runs every
registered experiment and renders one self-contained markdown
document: the reproduced tables and figures, each with its paper
reference and notes.  This is the artefact to diff across code
changes — if an optimisation or fix shifts any reproduced number, the
report shows where.

The generator iterates the central experiment registry
(:mod:`repro.experiments.registry`): every experiment's declared
design points go into one deduplicated batch, and each finished table
is that experiment's pure ``tabulate`` over the evaluated results.
Where the batch is evaluated is a transport choice:

* **locally** (default), through :func:`repro.api.evaluate_many` —
  fanned over the shared worker pool and read through the persistent
  result store, so a warm store regenerates the whole report with
  **zero simulations**;
* **remotely** (``url=...`` / ``repro report --url``), against a
  running evaluation service: after a ``GET /v1/healthz`` code-
  fingerprint check (a version-skewed server is refused with a 409),
  the same deduplicated union goes through one ``POST /v1/batch`` —
  the server evaluates through *its* store and this process only
  tabulates and renders.  (Per-experiment mappings are also served
  directly at ``POST /v1/experiments/{name}`` for external clients —
  :meth:`repro.service.client.ServiceClient.run_experiment`.)

Either way the output bytes are identical (timing is reported on the
progress stream, never in the document); ``python -m
repro.api.determinism_check`` proves the local/remote identity.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.api import evaluate_many
from repro.api.result import RunResult
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    keyed_results,
)
from repro.experiments.reporting import ExperimentResult, format_cell


def _to_markdown(result: ExperimentResult) -> str:
    lines = [f"## {result.title}", ""]
    if result.paper_reference:
        lines += [f"*Paper:* {result.paper_reference}", ""]
    header = list(result.columns)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in result.rows:
        cells = [format_cell(row.get(col, "")) for col in header]
        lines.append("| " + " | ".join(cells) + " |")
    for note in result.notes:
        lines += ["", f"> {note}"]
    lines.append("")
    return "\n".join(lines)


def fetch_results(
    experiments: List[Experiment],
    workers: Optional[int] = None,
    url: Optional[str] = None,
    progress: bool = False,
) -> Dict[str, RunResult]:
    """Every declared design point, evaluated locally or remotely.

    Both transports move ONE deduplicated batch: design points shared
    between experiments (e.g. ``ablation_energy_model`` re-prices the
    Figure-8 points) are evaluated and transferred once.  ``repro
    run --url`` shares this path with the report generator.
    """
    specs = [s for exp in experiments for s in exp.specs()]
    unique = list({s.key(): s for s in specs}.values())
    if not unique:
        return {}
    if url is not None:
        from repro.service import ServiceClient

        client = ServiceClient(url)
        # Refuse a version-skewed server up front (usable error before
        # any waiting); the claim sent with the batch re-checks it
        # atomically in case the server is redeployed in between.
        client.verify_fingerprint()
        if progress:
            print(
                f"  fetching {len(unique)} design points from "
                f"{url} ...", flush=True,
            )
        return keyed_results(
            unique,
            client.evaluate_many(
                unique, workers=workers, claim_fingerprint=True
            ),
        )
    if progress:
        print(
            f"  prefetching {len(unique)} design points "
            f"(workers={workers or 'all'}) ...", flush=True,
        )
    return keyed_results(
        unique, evaluate_many(unique, workers=workers)
    )


def generate(
    experiments: Optional[List[str]] = None,
    progress: bool = False,
    workers: Optional[int] = 1,
    url: Optional[str] = None,
) -> str:
    """Run ``experiments`` (default: all) and return the markdown.

    ``workers`` sizes the prefetch pool (None = all cores); ``url``
    evaluates on a running service instead of in this process.
    Rendering order and output bytes are independent of both.
    """
    names = list(experiments or EXPERIMENTS)
    records = [get_experiment(name) for name in names]
    results = fetch_results(
        records, workers=workers, url=url, progress=progress
    )
    sections = [
        "# Reproduction report",
        "",
        "Ishihara & Fallah, *A Way Memoization Technique for Reducing "
        "Power Consumption of Caches in Application Specific Integrated "
        "Processors*, DATE 2005.",
        "",
        f"Experiments: {', '.join(names)}",
        "",
    ]
    for record in records:
        started = time.perf_counter()
        result = record.tabulate(results)
        elapsed = time.perf_counter() - started
        if progress:
            print(f"  {record.name} done in {elapsed:.1f} s", flush=True)
        sections.append(_to_markdown(result))
        sections.append("")
    return "\n".join(sections)


def main(
    output: Optional[str] = None,
    workers: Optional[int] = None,
    url: Optional[str] = None,
    experiments: Optional[List[str]] = None,
) -> None:
    markdown = generate(
        experiments=experiments, progress=True, workers=workers, url=url
    )
    from repro.store import default_store

    store = default_store()
    if store is not None:
        print(
            f"  result store: {store.hits} hit(s), "
            f"{store.misses} miss(es) this run", flush=True,
        )
    if output:
        with open(output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {output}")
    else:
        print(markdown)


if __name__ == "__main__":
    main()
