"""Full reproduction report generator.

``repro report [-o FILE] [--workers N]`` runs every registered
experiment and renders one self-contained markdown document: the
reproduced tables and figures, each with its paper reference and
notes.  This is the artefact to diff across code changes — if an
optimisation or fix shifts any reproduced number, the report shows
where.

Before rendering, every experiment that declares its design points
(a module-level ``specs()``) contributes them to one deduplicated
``evaluate_many`` batch, fanned out over the shared worker pool —
so the expensive controller replays run in parallel while the
rendering stays serial and byte-deterministic.  The batch reads
through the persistent result store (:mod:`repro.store`): a warm
store regenerates the whole report with **zero simulations**, and the
output bytes are identical either way (timing is reported on the
progress stream, never in the document).
"""

from __future__ import annotations

import importlib
import time
from typing import List, Optional

from repro.api import evaluate_many
from repro.experiments import EXPERIMENTS
from repro.experiments.reporting import ExperimentResult


def _to_markdown(result: ExperimentResult) -> str:
    lines = [f"## {result.title}", ""]
    if result.paper_reference:
        lines += [f"*Paper:* {result.paper_reference}", ""]
    header = list(result.columns)
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in result.rows:
        cells = []
        for col in header:
            value = row.get(col, "")
            cells.append(
                f"{value:.3f}" if isinstance(value, float) else str(value)
            )
        lines.append("| " + " | ".join(cells) + " |")
    for note in result.notes:
        lines += ["", f"> {note}"]
    lines.append("")
    return "\n".join(lines)


def prefetch_specs(names: List[str]) -> List:
    """The union of design points declared by ``names``' modules."""
    specs = []
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        declared = getattr(module, "specs", None)
        if declared is not None:
            specs.extend(declared())
    return specs


def generate(
    experiments: Optional[List[str]] = None,
    progress: bool = False,
    workers: Optional[int] = 1,
) -> str:
    """Run ``experiments`` (default: all) and return the markdown.

    ``workers`` sizes the prefetch pool (None = all cores); rendering
    order and output bytes are independent of it.
    """
    names = list(experiments or EXPERIMENTS)
    specs = prefetch_specs(names)
    if specs:
        if progress:
            print(
                f"  prefetching {len(specs)} design points "
                f"(workers={workers or 'all'}) ...", flush=True,
            )
        evaluate_many(specs, workers=workers)
    sections = [
        "# Reproduction report",
        "",
        "Ishihara & Fallah, *A Way Memoization Technique for Reducing "
        "Power Consumption of Caches in Application Specific Integrated "
        "Processors*, DATE 2005.",
        "",
        f"Experiments: {', '.join(names)}",
        "",
    ]
    for name in names:
        started = time.perf_counter()
        module = importlib.import_module(f"repro.experiments.{name}")
        result = module.run()
        elapsed = time.perf_counter() - started
        if progress:
            print(f"  {name} done in {elapsed:.1f} s", flush=True)
        sections.append(_to_markdown(result))
        sections.append("")
    return "\n".join(sections)


def main(
    output: Optional[str] = None, workers: Optional[int] = None
) -> None:
    markdown = generate(progress=True, workers=workers)
    from repro.store import default_store

    store = default_store()
    if store is not None:
        print(
            f"  result store: {store.hits} hit(s), "
            f"{store.misses} miss(es) this run", flush=True,
        )
    if output:
        with open(output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {output}")
    else:
        print(markdown)


if __name__ == "__main__":
    main()
