"""Ablation: narrow-adder width vs displacement coverage.

The MAB can only serve accesses whose displacement's upper bits are
all-zero or all-one (Section 3.1); the paper chose a 14-bit adder
(offset+index bits of the FR-V cache) and measured the residual
bypass rate at "less than 1%".  This ablation measures, per
benchmark, the fraction of data accesses whose displacement exceeds
each candidate width — i.e. the MAB bypass rate a ``w``-bit adder
would suffer — directly testing the small-displacement claim the
whole technique rests on.

This is trace analysis, not simulation: it declares no run specs and
its ``tabulate`` reads the cached workload traces directly.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.api import RunSpec
from repro.core.address import SignClass, displacement_sign_class
from repro.experiments.registry import Experiment, ResultMap, register
from repro.experiments.reporting import ExperimentResult
from repro.workloads import BENCHMARK_NAMES, load_workload

WIDTHS = (8, 10, 12, 14, 16)


def bypass_rate(disps: np.ndarray, width: int) -> float:
    """Fraction of displacements unusable with a ``width``-bit adder."""
    total = len(disps)
    if total == 0:
        return 0.0
    bad = sum(
        1 for d in disps.tolist()
        if displacement_sign_class(int(d), width) is SignClass.OTHER
    )
    return bad / total


def specs() -> List[RunSpec]:
    """Pure trace analysis — no simulation design points."""
    return []


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(
        columns=("benchmark",) + tuple(f"w{w}_pct" for w in WIDTHS)
    )
    worst_w14 = 0.0
    for benchmark in BENCHMARK_NAMES:
        disps = load_workload(benchmark).trace.data.disp
        row = {"benchmark": benchmark}
        for width in WIDTHS:
            rate = 100.0 * bypass_rate(disps, width)
            row[f"w{width}_pct"] = rate
            if width == 14:
                worst_w14 = max(worst_w14, rate)
        result.add_row(**row)
    result.notes.append(
        f"worst-case 14-bit bypass rate {worst_w14:.3f}% "
        "(paper claims <1%)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="ablation_adder_width",
    title="Ablation: MAB bypass rate vs narrow-adder width",
    specs=specs,
    tabulate=tabulate,
    category="trace-derived",
    paper_reference=(
        "paper: <1% of displacements exceed the 14-bit adder "
        "(|disp| >= 2^13)"
    ),
))
