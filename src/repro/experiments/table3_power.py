"""Table 3: MAB power (mW), active vs clock-gated sleep."""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.energy.mab_model import (
    MABHardwareModel,
    PAPER_GRID,
    PAPER_TABLE3_POWER_ACTIVE_MW,
    PAPER_TABLE3_POWER_SLEEP_MW,
)
from repro.experiments.registry import Experiment, ResultMap, register
from repro.experiments.reporting import ExperimentResult


def specs() -> List[RunSpec]:
    """Analytic hardware model only — no simulation design points."""
    return []


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "tag_entries", "index_entries",
        "active_mw", "paper_active_mw",
        "sleep_mw", "paper_sleep_mw",
    ))
    for nt, ns in PAPER_GRID:
        model = MABHardwareModel(nt, ns)
        result.add_row(
            tag_entries=nt,
            index_entries=ns,
            active_mw=model.power_active_mw(),
            paper_active_mw=PAPER_TABLE3_POWER_ACTIVE_MW[(nt, ns)],
            sleep_mw=model.power_sleep_mw(),
            paper_sleep_mw=PAPER_TABLE3_POWER_SLEEP_MW[(nt, ns)],
        )
    return result


EXPERIMENT = register(Experiment(
    name="table3_power",
    title="Table 3: MAB power consumption (mW)",
    specs=specs,
    tabulate=tabulate,
    category="analytic",
    paper_reference=(
        "clock gating keeps unused-cycle power small "
        "(sleep << active in every configuration)"
    ),
))
