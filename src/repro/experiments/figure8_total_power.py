"""Figure 8: total I-cache + D-cache power.

Our configuration (2x16 MAB on the I-cache, 2x8 on the D-cache)
against the strongest no-penalty prior art ("original + approach
[4]"): the original D-cache plus Panwar's intra-line optimisation on
the I-cache.  Expected shape: ~30% average saving, best case ~40%
(mpeg2enc in the paper).
"""

from __future__ import annotations

from typing import List, Optional

from repro.api import RunSpec, evaluate_many
from repro.experiments.reporting import ExperimentResult, render
from repro.experiments.runner import (
    arch_spec,
    average,
    dcache_power,
    icache_power,
    savings,
)
from repro.workloads import BENCHMARK_NAMES

#: (cache, architecture) pairs of the baseline and our configuration.
POINTS = (
    ("icache", "panwar"),
    ("dcache", "original"),
    ("icache", "way-memo-2x16"),
    ("dcache", "way-memo-2x8"),
)


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec(cache_name, arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for cache_name, arch in POINTS
    ]


def run(workers: Optional[int] = 1) -> ExperimentResult:
    evaluate_many(specs(), workers=workers)
    result = ExperimentResult(
        name="figure8_total_power",
        title="Figure 8: total cache power (mW), I + D",
        columns=(
            "benchmark", "architecture", "icache_mw", "dcache_mw",
            "total_mw", "saving_pct",
        ),
        paper_reference=(
            "average saving ~30%, maximum ~40% (mpeg2enc), vs "
            "original D-cache + [4] I-cache"
        ),
    )
    savings_list = []
    for benchmark in BENCHMARK_NAMES:
        base_i = icache_power(benchmark, "panwar").total_mw
        base_d = dcache_power(benchmark, "original").total_mw
        ours_i = icache_power(benchmark, "way-memo-2x16").total_mw
        ours_d = dcache_power(benchmark, "way-memo-2x8").total_mw
        baseline_total = base_i + base_d
        ours_total = ours_i + ours_d
        saving = 100.0 * savings(baseline_total, ours_total)
        savings_list.append((benchmark, saving))
        result.add_row(
            benchmark=benchmark,
            architecture="original+[4]",
            icache_mw=base_i,
            dcache_mw=base_d,
            total_mw=baseline_total,
            saving_pct=0.0,
        )
        result.add_row(
            benchmark=benchmark,
            architecture="way-memo (2x16 I, 2x8 D)",
            icache_mw=ours_i,
            dcache_mw=ours_d,
            total_mw=ours_total,
            saving_pct=saving,
        )
    avg = average(s for _, s in savings_list)
    best_bench, best = max(savings_list, key=lambda item: item[1])
    result.notes.append(
        f"average saving {avg:.1f}% (paper ~30%); best {best:.1f}% "
        f"on {best_bench} (paper: ~40% on mpeg2enc)"
    )
    return result


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
