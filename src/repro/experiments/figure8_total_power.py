"""Figure 8: total I-cache + D-cache power.

Our configuration (2x16 MAB on the I-cache, 2x8 on the D-cache)
against the strongest no-penalty prior art ("original + approach
[4]"): the original D-cache plus Panwar's intra-line optimisation on
the I-cache.  Expected shape: ~30% average saving, best case ~40%
(mpeg2enc in the paper).
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average, savings
from repro.workloads import BENCHMARK_NAMES

#: (cache, architecture) pairs of the baseline and our configuration.
POINTS = (
    ("icache", "panwar"),
    ("dcache", "original"),
    ("icache", "way-memo-2x16"),
    ("dcache", "way-memo-2x8"),
)


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec(cache_name, arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for cache_name, arch in POINTS
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    def power_mw(cache_name: str, arch: str, benchmark: str) -> float:
        return spec_result(
            results, arch_spec(cache_name, arch, benchmark)
        ).power.total_mw

    result = EXPERIMENT.new_result(columns=(
        "benchmark", "architecture", "icache_mw", "dcache_mw",
        "total_mw", "saving_pct",
    ))
    savings_list = []
    for benchmark in BENCHMARK_NAMES:
        base_i = power_mw("icache", "panwar", benchmark)
        base_d = power_mw("dcache", "original", benchmark)
        ours_i = power_mw("icache", "way-memo-2x16", benchmark)
        ours_d = power_mw("dcache", "way-memo-2x8", benchmark)
        baseline_total = base_i + base_d
        ours_total = ours_i + ours_d
        saving = 100.0 * savings(baseline_total, ours_total)
        savings_list.append((benchmark, saving))
        result.add_row(
            benchmark=benchmark,
            architecture="original+[4]",
            icache_mw=base_i,
            dcache_mw=base_d,
            total_mw=baseline_total,
            saving_pct=0.0,
        )
        result.add_row(
            benchmark=benchmark,
            architecture="way-memo (2x16 I, 2x8 D)",
            icache_mw=ours_i,
            dcache_mw=ours_d,
            total_mw=ours_total,
            saving_pct=saving,
        )
    avg = average(s for _, s in savings_list)
    best_bench, best = max(savings_list, key=lambda item: item[1])
    result.notes.append(
        f"average saving {avg:.1f}% (paper ~30%); best {best:.1f}% "
        f"on {best_bench} (paper: ~40% on mpeg2enc)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="figure8_total_power",
    title="Figure 8: total cache power (mW), I + D",
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "average saving ~30%, maximum ~40% (mpeg2enc), vs "
        "original D-cache + [4] I-cache"
    ),
))
