"""Extension: the related-work techniques the paper argues against.

Section 2 dismisses three families for their performance cost: the
filter cache [6] (extra cycle on L0 misses), way prediction [9]
(extra cycle on mispredictions) and the two-phase cache [8] (extra
cycle on every access).  This experiment runs all of them next to way
memoization and reports both power and the cycle overhead — showing
the paper's key selling point: comparable or better power at *zero*
performance penalty.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec, comparison_archs
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average
from repro.workloads import BENCHMARK_NAMES

#: Comparison sets in paper order — thin aliases over the central
#: registry's ``comparison_rank`` metadata.
D_ARCHS = comparison_archs("dcache")
I_ARCHS = comparison_archs("icache")


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec(cache_name, arch, benchmark)
        for cache_name, archs in (("dcache", D_ARCHS), ("icache", I_ARCHS))
        for arch in archs
        for benchmark in BENCHMARK_NAMES
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "cache", "architecture", "avg_power_mw",
        "avg_slowdown_pct", "avg_tags_per_access",
    ))
    for cache_name, archs in (("dcache", D_ARCHS), ("icache", I_ARCHS)):
        for arch in archs:
            powers, slowdowns, tag_rates = [], [], []
            for benchmark in BENCHMARK_NAMES:
                point = spec_result(
                    results, arch_spec(cache_name, arch, benchmark)
                )
                c, p = point.counters, point.power
                powers.append(p.total_mw)
                slowdowns.append(100.0 * c.extra_cycles / point.cycles)
                tag_rates.append(c.tags_per_access)
            result.add_row(
                cache=cache_name,
                architecture=arch,
                avg_power_mw=average(powers),
                avg_slowdown_pct=average(slowdowns),
                avg_tags_per_access=average(tag_rates),
            )
    result.notes.append(
        "slowdown = extra cycles / baseline cycles; way memoization "
        "is the only technique at exactly 0"
    )
    return result


EXPERIMENT = register(Experiment(
    name="extension_baselines",
    title=(
        "Extension: penalty-laden alternatives vs way memoization "
        "(averages over the suite)"
    ),
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "filter cache / way prediction / two-phase save energy "
        "but add cycles; way memoization adds none"
    ),
))
