"""Extension: the related-work techniques the paper argues against.

Section 2 dismisses three families for their performance cost: the
filter cache [6] (extra cycle on L0 misses), way prediction [9]
(extra cycle on mispredictions) and the two-phase cache [8] (extra
cycle on every access).  This experiment runs all of them next to way
memoization and reports both power and the cycle overhead — showing
the paper's key selling point: comparable or better power at *zero*
performance penalty.
"""

from __future__ import annotations

from repro.experiments.reporting import ExperimentResult, render
from repro.experiments.runner import (
    average,
    dcache_counters,
    dcache_power,
    icache_counters,
    icache_power,
)
from repro.workloads import BENCHMARK_NAMES, load_workload

D_ARCHS = ("original", "filter-cache", "way-prediction", "two-phase",
           "way-memo-2x8")
I_ARCHS = ("original", "ma-links", "filter-cache", "way-prediction",
           "two-phase", "way-memo-2x16")


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="extension_baselines",
        title=(
            "Extension: penalty-laden alternatives vs way memoization "
            "(averages over the suite)"
        ),
        columns=(
            "cache", "architecture", "avg_power_mw",
            "avg_slowdown_pct", "avg_tags_per_access",
        ),
        paper_reference=(
            "filter cache / way prediction / two-phase save energy "
            "but add cycles; way memoization adds none"
        ),
    )
    for cache_name, archs, counters_fn, power_fn in (
        ("dcache", D_ARCHS, dcache_counters, dcache_power),
        ("icache", I_ARCHS, icache_counters, icache_power),
    ):
        for arch in archs:
            powers, slowdowns, tag_rates = [], [], []
            for benchmark in BENCHMARK_NAMES:
                workload = load_workload(benchmark)
                c = counters_fn(benchmark, arch)
                p = power_fn(benchmark, arch)
                powers.append(p.total_mw)
                slowdowns.append(100.0 * c.extra_cycles / workload.cycles)
                tag_rates.append(c.tags_per_access)
            result.add_row(
                cache=cache_name,
                architecture=arch,
                avg_power_mw=average(powers),
                avg_slowdown_pct=average(slowdowns),
                avg_tags_per_access=average(tag_rates),
            )
    result.notes.append(
        "slowdown = extra cycles / baseline cycles; way memoization "
        "is the only technique at exactly 0"
    )
    return result


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
