"""Ablation: sensitivity of the headline saving to energy calibration.

The weakest substitution in this reproduction is the analytical SRAM
energy model standing in for the authors' SPICE characterisation.
The headline relative savings depend on the model almost entirely
through one number: the **tag-to-way energy ratio** E_tag/E_way
(~0.10 with the default constants).  This ablation recomputes the
Figure-8-style total saving while sweeping that ratio over an
order of magnitude, by scaling the tag energy.

If the conclusion "way memoization saves roughly a quarter to a third
of cache power" holds across the sweep, the reproduction does not
stand on the calibration's exact values.

The declared specs are the Figure-8 design points; ``tabulate``
re-prices their counters (and cycle bases) with the scaled models —
a pure function of the results, no re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.api import RunSpec
from repro.cache.config import FRV_DCACHE, FRV_ICACHE
from repro.energy import CachePowerModel, MABHardwareModel
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average, savings
from repro.workloads import BENCHMARK_NAMES

TAG_SCALES = (0.5, 1.0, 2.0, 4.0)

#: The Figure-8 configuration this sweep re-prices.
POINTS = (
    ("dcache", "original"),
    ("icache", "panwar"),
    ("dcache", "way-memo-2x8"),
    ("icache", "way-memo-2x16"),
)


@dataclass
class _ScaledEnergy:
    """Wraps a CacheEnergy with the tag energy scaled."""

    base: object
    scale: float

    @property
    def e_way_read_j(self):
        return self.base.e_way_read_j

    @property
    def e_tag_read_j(self):
        return self.base.e_tag_read_j * self.scale

    @property
    def leakage_w(self):
        return self.base.leakage_w

    @property
    def tag_to_way_ratio(self):
        return self.e_tag_read_j / self.e_way_read_j


def _scaled_model(config, scale: float) -> CachePowerModel:
    model = CachePowerModel(config)
    model.energy = _ScaledEnergy(model.energy, scale)
    return model


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec(cache_name, arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for cache_name, arch in POINTS
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    def point(cache_name: str, arch: str, benchmark: str):
        return spec_result(
            results, arch_spec(cache_name, arch, benchmark)
        )

    result = EXPERIMENT.new_result(columns=(
        "tag_scale", "tag_to_way_ratio", "avg_total_saving_pct",
    ))
    for scale in TAG_SCALES:
        d_model = _scaled_model(FRV_DCACHE, scale)
        i_model = _scaled_model(FRV_ICACHE, scale)
        per_bench = []
        for benchmark in BENCHMARK_NAMES:
            cycles = point("dcache", "original", benchmark).cycles
            base = (
                d_model.power(
                    point("dcache", "original", benchmark).counters,
                    cycles,
                ).total_mw
                + i_model.power(
                    point("icache", "panwar", benchmark).counters,
                    cycles,
                ).total_mw
            )
            ours = (
                d_model.power(
                    point("dcache", "way-memo-2x8", benchmark).counters,
                    cycles,
                    mab_model=MABHardwareModel(2, 8),
                ).total_mw
                + i_model.power(
                    point("icache", "way-memo-2x16", benchmark).counters,
                    cycles,
                    mab_model=MABHardwareModel(2, 16),
                ).total_mw
            )
            per_bench.append(100.0 * savings(base, ours))
        result.add_row(
            tag_scale=scale,
            tag_to_way_ratio=d_model.energy.tag_to_way_ratio,
            avg_total_saving_pct=average(per_bench),
        )
    low = result.rows[0]["avg_total_saving_pct"]
    high = result.rows[-1]["avg_total_saving_pct"]
    result.notes.append(
        f"saving ranges {low:.1f}% -> {high:.1f}% across an 8x ratio "
        "sweep; the qualitative conclusion survives the calibration "
        "uncertainty"
    )
    return result


EXPERIMENT = register(Experiment(
    name="ablation_energy_model",
    title=(
        "Ablation: total saving vs tag/way energy ratio "
        "(Figure-8 configuration)"
    ),
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "the ~30% headline must not hinge on the SRAM model's "
        "exact calibration"
    ),
))
