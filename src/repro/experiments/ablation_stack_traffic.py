"""Ablation: how much of the paper's 90 % tag cut is stack traffic?

The largest deviation of this reproduction from the paper is Figure
4's average D-cache tag reduction (78 % here vs ~90 % in the paper).
Our benchmarks are hand-written assembly with almost no stack
traffic, while the paper's compiled binaries constantly save/restore
registers sp-relative — accesses that are near-perfect MAB hits
(constant base register, tiny displacements).

This ablation injects compiler-style sp-relative accesses into the
real benchmark traces at increasing rates and re-measures the 2x8
MAB.  If the hypothesis is right, the tag reduction approaches the
paper's number as the stack share approaches the 30-50 % typical of
compiled embedded code.

The injected streams are synthetic derivations of the cached traces,
not addressable run specs, so this experiment declares no specs and
replays the modified traces inside ``tabulate`` (deterministically —
the injector is seeded).
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.core import MABConfig, WayMemoDCache
from repro.experiments.registry import Experiment, ResultMap, register
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import average
from repro.workloads import BENCHMARK_NAMES, load_workload
from repro.workloads.synthetic import inject_stack_traffic

FRACTIONS = (0.0, 0.2, 0.4)


def specs() -> List[RunSpec]:
    """Derived (injected) streams — no declarative design points."""
    return []


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "stack_fraction", "avg_mab_hit_rate", "avg_tags_per_access",
        "tag_reduction_pct",
    ))
    for fraction in FRACTIONS:
        hits, tags = [], []
        for benchmark in BENCHMARK_NAMES:
            trace = load_workload(benchmark).trace.data
            trace = inject_stack_traffic(trace, fraction)
            c = WayMemoDCache(mab_config=MABConfig(2, 8)).process(trace)
            hits.append(c.mab_hit_rate)
            tags.append(c.tags_per_access)
        avg_tags = average(tags)
        result.add_row(
            stack_fraction=fraction,
            avg_mab_hit_rate=average(hits),
            avg_tags_per_access=avg_tags,
            tag_reduction_pct=100.0 * (1 - avg_tags / 2.0),
        )
    first, last = result.rows[0], result.rows[-1]
    result.notes.append(
        f"tag reduction {first['tag_reduction_pct']:.1f}% (no stack) -> "
        f"{last['tag_reduction_pct']:.1f}% at "
        f"{int(100 * last['stack_fraction'])}% stack share "
        "(paper: ~90% on compiled code)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="ablation_stack_traffic",
    title=(
        "Ablation: injected stack traffic vs MAB effectiveness "
        "(D-cache, 2x8 MAB)"
    ),
    specs=specs,
    tabulate=tabulate,
    category="trace-derived",
    paper_reference=(
        "paper reports ~90% tag reduction on compiled binaries; "
        "our stack-free kernels reach 78%"
    ),
))
