"""Extension: way memoization combined with a line buffer.

The paper's conclusion: "We are currently extending our approach by
combining it with the line buffer technique to achieve more saving."
This experiment implements that future work
(:class:`repro.core.line_buffer_memo.LineBufferWayMemoDCache`) and
quantifies the additional D-cache saving over plain way memoization.
"""

from __future__ import annotations

from typing import List

from repro.api import RunSpec
from repro.experiments.registry import (
    Experiment,
    ResultMap,
    register,
    spec_result,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import arch_spec, average, savings
from repro.workloads import BENCHMARK_NAMES

ARCHS = ("original", "way-memo-2x8", "way-memo+line-buffer")


def specs() -> List[RunSpec]:
    """Every design point this experiment evaluates."""
    return [
        arch_spec("dcache", arch, benchmark)
        for benchmark in BENCHMARK_NAMES
        for arch in ARCHS
    ]


def tabulate(results: ResultMap) -> ExperimentResult:
    result = EXPERIMENT.new_result(columns=(
        "benchmark", "architecture", "ways_per_access",
        "total_mw", "saving_pct",
    ))
    for benchmark in BENCHMARK_NAMES:
        baseline = spec_result(
            results, arch_spec("dcache", "original", benchmark)
        ).power.total_mw
        for arch in ARCHS:
            point = spec_result(
                results, arch_spec("dcache", arch, benchmark)
            )
            result.add_row(
                benchmark=benchmark,
                architecture=arch,
                ways_per_access=point.counters.ways_per_access,
                total_mw=point.power.total_mw,
                saving_pct=100.0 * savings(
                    baseline, point.power.total_mw
                ),
            )
    plain = average(
        row["saving_pct"] for row in result.rows
        if row["architecture"] == "way-memo-2x8"
    )
    combined = average(
        row["saving_pct"] for row in result.rows
        if row["architecture"] == "way-memo+line-buffer"
    )
    result.notes.append(
        f"average saving: way-memo {plain:.1f}% -> +line-buffer "
        f"{combined:.1f}% ({combined - plain:+.1f} points)"
    )
    return result


EXPERIMENT = register(Experiment(
    name="extension_line_buffer",
    title="Extension: way memoization + line buffer (D-cache)",
    specs=specs,
    tabulate=tabulate,
    paper_reference=(
        "the paper's stated future work; expected to add savings "
        "on top of plain way memoization"
    ),
))
