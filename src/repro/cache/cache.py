"""Behavioural set-associative cache model.

Tracks tags/valid/dirty per line and replacement state; does not store
data bytes (the ISS provides functional memory, the cache studies only
need hit/way/eviction behaviour).  Eviction listeners let the
way-memoization machinery implement its ``evict_hook`` consistency
mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cache.config import CacheConfig
from repro.cache.replacement import LRUPolicy, ReplacementPolicy


@dataclass
class CacheLineState:
    """Tag state of one cache line."""

    valid: bool = False
    dirty: bool = False
    tag: int = 0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes
    ----------
    hit:
        Whether the access hit.
    way:
        The way holding the line after the access (fill way on miss).
    evicted_tag:
        Tag of the line evicted by a miss fill, or None.
    writeback:
        True when the evicted line was dirty (write-back traffic).
    """

    hit: bool
    way: int
    evicted_tag: Optional[int] = None
    writeback: bool = False


#: Signature of eviction listeners: (tag, set_index) of the line removed.
EvictionListener = Callable[[int, int], None]


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache model."""

    def __init__(
        self,
        config: CacheConfig,
        policy: Optional[ReplacementPolicy] = None,
    ):
        self.config = config
        self.policy = policy or LRUPolicy(config.sets, config.ways)
        if (self.policy.sets, self.policy.ways) != (config.sets, config.ways):
            raise ValueError("replacement policy geometry mismatch")
        self._lines: List[List[CacheLineState]] = [
            [CacheLineState() for _ in range(config.ways)]
            for _ in range(config.sets)
        ]
        self._eviction_listeners: List[EvictionListener] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # ------------------------------------------------------------------

    def add_eviction_listener(self, listener: EvictionListener) -> None:
        """Call ``listener(tag, set_index)`` whenever a line is evicted."""
        self._eviction_listeners.append(listener)

    def probe(self, addr: int) -> Optional[int]:
        """Return the way holding ``addr`` without touching any state."""
        tag, set_index, _ = self.config.split(addr)
        for way, line in enumerate(self._lines[set_index]):
            if line.valid and line.tag == tag:
                return way
        return None

    def line_state(self, set_index: int, way: int) -> CacheLineState:
        return self._lines[set_index][way]

    def resident_tags(self, set_index: int) -> List[int]:
        """Valid tags currently stored in ``set_index`` (tests/invariants)."""
        return [
            line.tag for line in self._lines[set_index] if line.valid
        ]

    # ------------------------------------------------------------------

    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Perform a load/store access, filling on a miss."""
        tag, set_index, _ = self.config.split(addr)
        lines = self._lines[set_index]
        for way, line in enumerate(lines):
            if line.valid and line.tag == tag:
                self.hits += 1
                self.policy.touch(set_index, way)
                if write:
                    line.dirty = True
                return AccessResult(hit=True, way=way)

        # Miss: choose a victim, evict, fill.
        self.misses += 1
        way = self.policy.victim(set_index)
        line = lines[way]
        evicted_tag = None
        writeback = False
        if line.valid:
            evicted_tag = line.tag
            writeback = line.dirty
            self.evictions += 1
            if writeback:
                self.writebacks += 1
            for listener in self._eviction_listeners:
                listener(evicted_tag, set_index)
        line.valid = True
        line.tag = tag
        line.dirty = write
        self.policy.touch(set_index, way)
        return AccessResult(
            hit=False, way=way, evicted_tag=evicted_tag, writeback=writeback
        )

    def invalidate_all(self) -> None:
        """Flush the cache (notifies eviction listeners)."""
        for set_index, lines in enumerate(self._lines):
            for line in lines:
                if line.valid:
                    for listener in self._eviction_listeners:
                        listener(line.tag, set_index)
                line.valid = False
                line.dirty = False

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property tests)."""
        for set_index, lines in enumerate(self._lines):
            tags = [line.tag for line in lines if line.valid]
            if len(tags) != len(set(tags)):
                raise AssertionError(
                    f"duplicate tag in set {set_index}: {tags}"
                )
