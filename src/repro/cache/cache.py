"""Behavioural set-associative cache model.

Tracks tags/valid/dirty per line and replacement state; does not store
data bytes (the ISS provides functional memory, the cache studies only
need hit/way/eviction behaviour).  Eviction listeners let the
way-memoization machinery implement its ``evict_hook`` consistency
mode.

The internal state is *flat*: per-set lists of tag integers (``-1``
means invalid) and dirty flags, with the address-split geometry
precomputed once in ``__init__``.  The allocation-free fast-path API
(:meth:`SetAssociativeCache.access_fast`,
:meth:`SetAssociativeCache.hit_confirm`) is the kernel-level form of
the scans: baselines and the line-buffer controller call it directly,
while the two hottest controllers (``core/dcache.py`` /
``core/icache.py``) inline equivalent code over the same state.  The
original object API (:meth:`access` returning :class:`AccessResult`)
is a thin wrapper kept for tests and non-hot callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cache.config import CacheConfig
from repro.cache.replacement import LRUPolicy, ReplacementPolicy


@dataclass
class CacheLineState:
    """Tag state of one cache line (a snapshot; not live storage)."""

    valid: bool = False
    dirty: bool = False
    tag: int = 0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    Attributes
    ----------
    hit:
        Whether the access hit.
    way:
        The way holding the line after the access (fill way on miss).
    evicted_tag:
        Tag of the line evicted by a miss fill, or None.
    writeback:
        True when the evicted line was dirty (write-back traffic).
    """

    hit: bool
    way: int
    evicted_tag: Optional[int] = None
    writeback: bool = False


#: Signature of eviction listeners: (tag, set_index) of the line removed.
EvictionListener = Callable[[int, int], None]

# Bit layout of the packed int returned by ``access_fast``:
#   bit 0       hit
#   bits 1..8   way
#   bit 9       a valid line was evicted
#   bit 10      the evicted line was dirty (writeback)
#   bits 11..   evicted tag
_F_HIT = 1
_F_WAY_SHIFT = 1
_F_EVICTED = 1 << 9
_F_WRITEBACK = 1 << 10
_F_TAG_SHIFT = 11


class SetAssociativeCache:
    """A write-back, write-allocate set-associative cache model."""

    def __init__(
        self,
        config: CacheConfig,
        policy: Optional[ReplacementPolicy] = None,
    ):
        self.config = config
        self.policy = policy or LRUPolicy(config.sets, config.ways)
        if (self.policy.sets, self.policy.ways) != (config.sets, config.ways):
            raise ValueError("replacement policy geometry mismatch")
        # Geometry, precomputed once (CacheConfig derives them lazily).
        self.offset_bits = config.offset_bits
        self.index_bits = config.index_bits
        self.tag_shift = self.offset_bits + self.index_bits
        self.set_mask = config.sets - 1
        self.ways = config.ways
        # Flat line state: tag per (set, way), -1 == invalid.
        self._tags: List[List[int]] = [
            [-1] * config.ways for _ in range(config.sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * config.ways for _ in range(config.sets)
        ]
        # Direct handle on LRU recency stacks for inline touch/victim;
        # None for non-LRU policies (which go through method calls).
        self._lru: Optional[List[List[int]]] = (
            self.policy._order if isinstance(self.policy, LRUPolicy) else None
        )
        self._eviction_listeners: List[EvictionListener] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # ------------------------------------------------------------------

    def add_eviction_listener(self, listener: EvictionListener) -> None:
        """Call ``listener(tag, set_index)`` whenever a line is evicted."""
        self._eviction_listeners.append(listener)

    def probe(self, addr: int) -> Optional[int]:
        """Return the way holding ``addr`` without touching any state."""
        addr &= 0xFFFFFFFF
        tag = addr >> self.tag_shift
        tags = self._tags[(addr >> self.offset_bits) & self.set_mask]
        for way in range(self.ways):
            if tags[way] == tag:
                return way
        return None

    def line_state(self, set_index: int, way: int) -> CacheLineState:
        """Snapshot of one line's tag state."""
        tag = self._tags[set_index][way]
        if tag < 0:
            return CacheLineState(valid=False, dirty=False, tag=0)
        return CacheLineState(
            valid=True, dirty=self._dirty[set_index][way], tag=tag
        )

    def resident_tags(self, set_index: int) -> List[int]:
        """Valid tags currently stored in ``set_index`` (tests/invariants)."""
        return [tag for tag in self._tags[set_index] if tag >= 0]

    # ------------------------------------------------------------------
    # fast path
    # ------------------------------------------------------------------

    def access_fast(self, tag: int, set_index: int, write: bool) -> int:
        """Load/store access on a pre-split address, packed-int result.

        Returns ``hit | way << 1`` plus eviction info in the upper bits
        (see the ``_F_*`` layout above).  State changes are identical
        to :meth:`access`.
        """
        tags = self._tags[set_index]
        lru = self._lru
        for way in range(self.ways):
            if tags[way] == tag:
                self.hits += 1
                if lru is not None:
                    order = lru[set_index]
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                else:
                    self.policy.touch(set_index, way)
                if write:
                    self._dirty[set_index][way] = True
                return _F_HIT | (way << _F_WAY_SHIFT)

        # Miss: choose a victim, evict, fill.
        self.misses += 1
        if lru is not None:
            way = lru[set_index][0]
        else:
            way = self.policy.victim(set_index)
        result = way << _F_WAY_SHIFT
        evicted_tag = tags[way]
        dirty = self._dirty[set_index]
        if evicted_tag >= 0:
            self.evictions += 1
            result |= _F_EVICTED | (evicted_tag << _F_TAG_SHIFT)
            if dirty[way]:
                self.writebacks += 1
                result |= _F_WRITEBACK
            for listener in self._eviction_listeners:
                listener(evicted_tag, set_index)
        tags[way] = tag
        dirty[way] = write
        if lru is not None:
            order = lru[set_index]
            if order[-1] != way:
                order.remove(way)
                order.append(way)
        else:
            self.policy.touch(set_index, way)
        return result

    def access_fast_batch(
        self,
        tags: List[int],
        sets: List[int],
        writes: Optional[List[bool]] = None,
    ) -> List[int]:
        """Run a sequence of :meth:`access_fast` calls as one tight loop.

        ``tags`` and ``sets`` are equal-length lists of pre-split
        address components; ``writes`` marks stores (all loads when
        None).  Returns the packed-int result of every access, in
        order, with state changes identical to calling
        :meth:`access_fast` access by access.

        This is the shared kernel behind the baseline fast paths whose
        cache access stream does not depend on auxiliary state (the
        original, two-phase, way-prediction and Panwar controllers
        touch the cache once per access no matter what their side
        structures hold, so the whole replay collapses into this one
        loop).  The loop keeps the state lists in locals and special-
        cases the ubiquitous 2-way + LRU geometry, mirroring the
        inlined scans of ``core/dcache.py`` / ``core/icache.py``.
        """
        if writes is None:
            writes = [False] * len(tags)
        out: List[int] = []
        append = out.append
        ctags = self._tags
        cdirty = self._dirty
        lru = self._lru
        nways = self.ways
        way_range = range(nways)
        two_way = nways == 2
        lru2 = lru is not None and two_way
        policy_touch = self.policy.touch
        policy_victim = self.policy.victim
        listeners = self._eviction_listeners
        hits = 0
        misses = 0
        evictions = 0
        writebacks = 0

        for tag, set_index, write in zip(tags, sets, writes):
            row = ctags[set_index]
            if two_way:
                if row[0] == tag:
                    way = 0
                elif row[1] == tag:
                    way = 1
                else:
                    way = -1
            else:
                way = -1
                for w in way_range:
                    if row[w] == tag:
                        way = w
                        break
            if way >= 0:
                hits += 1
                if lru2:
                    order = lru[set_index]
                    if order[1] != way:
                        order[0], order[1] = order[1], order[0]
                elif lru is not None:
                    order = lru[set_index]
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                else:
                    policy_touch(set_index, way)
                if write:
                    cdirty[set_index][way] = True
                append(_F_HIT | (way << _F_WAY_SHIFT))
                continue

            # Miss: choose a victim, evict, fill.
            misses += 1
            if lru is not None:
                order = lru[set_index]
                way = order[0]
            else:
                way = policy_victim(set_index)
                order = None
            result = way << _F_WAY_SHIFT
            evicted_tag = row[way]
            dirty_row = cdirty[set_index]
            if evicted_tag >= 0:
                evictions += 1
                result |= _F_EVICTED | (evicted_tag << _F_TAG_SHIFT)
                if dirty_row[way]:
                    writebacks += 1
                    result |= _F_WRITEBACK
                for listener in listeners:
                    listener(evicted_tag, set_index)
            row[way] = tag
            dirty_row[way] = write
            if lru2:
                order[0], order[1] = order[1], order[0]
            elif lru is not None:
                if order[-1] != way:
                    order.remove(way)
                    order.append(way)
            else:
                policy_touch(set_index, way)
            append(result)

        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        self.writebacks += writebacks
        return out

    def hit_confirm(
        self, tag: int, set_index: int, way: int, write: bool
    ) -> bool:
        """Verify a memoized ``way`` and complete the hit in one scan.

        Equivalent to ``probe(addr) == way`` followed by
        ``access(addr)`` on the guaranteed-hit path, but with a single
        tag comparison: a tag can reside in at most one way, so the
        memoized way holds it iff any way does.  On success the hit is
        recorded (hit counter, recency touch, dirty bit); on failure
        (stale memoization) no state changes and the caller falls back
        to a full access.
        """
        if self._tags[set_index][way] != tag:
            return False
        self.hits += 1
        lru = self._lru
        if lru is not None:
            order = lru[set_index]
            if order[-1] != way:
                order.remove(way)
                order.append(way)
        else:
            self.policy.touch(set_index, way)
        if write:
            self._dirty[set_index][way] = True
        return True

    # ------------------------------------------------------------------
    # object API (wrapper over the fast path)
    # ------------------------------------------------------------------

    def access(self, addr: int, write: bool = False) -> AccessResult:
        """Perform a load/store access, filling on a miss."""
        addr &= 0xFFFFFFFF
        packed = self.access_fast(
            addr >> self.tag_shift,
            (addr >> self.offset_bits) & self.set_mask,
            write,
        )
        evicted_tag = None
        if packed & _F_EVICTED:
            evicted_tag = packed >> _F_TAG_SHIFT
        return AccessResult(
            hit=bool(packed & _F_HIT),
            way=(packed >> _F_WAY_SHIFT) & 0xFF,
            evicted_tag=evicted_tag,
            writeback=bool(packed & _F_WRITEBACK),
        )

    def invalidate_all(self) -> None:
        """Flush the cache (notifies eviction listeners)."""
        for set_index, tags in enumerate(self._tags):
            dirty = self._dirty[set_index]
            for way, tag in enumerate(tags):
                if tag >= 0:
                    for listener in self._eviction_listeners:
                        listener(tag, set_index)
                tags[way] = -1
                dirty[way] = False

    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property tests)."""
        for set_index, line_tags in enumerate(self._tags):
            tags = [tag for tag in line_tags if tag >= 0]
            if len(tags) != len(set(tags)):
                raise AssertionError(
                    f"duplicate tag in set {set_index}: {tags}"
                )
