"""Replacement policies for set-associative caches.

Each policy instance manages per-set victim selection state.  The MAB
consistency argument of the paper leans on LRU behaviour (both the
cache and the MAB use LRU), so :class:`LRUPolicy` is the default
everywhere; the others support the replacement-policy ablation.
"""

from __future__ import annotations

import random
from typing import List


class ReplacementPolicy:
    """Interface: per-set victim selection with usage feedback."""

    name = "abstract"

    def __init__(self, sets: int, ways: int):
        self.sets = sets
        self.ways = ways

    def touch(self, set_index: int, way: int) -> None:
        """Record a use of ``way`` in ``set_index``."""
        raise NotImplementedError

    def victim(self, set_index: int) -> int:
        """Choose the way to evict from ``set_index``."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used (paper reference [20])."""

    name = "lru"

    def __init__(self, sets: int, ways: int):
        super().__init__(sets, ways)
        # order[s] lists ways from LRU (front) to MRU (back).
        self._order: List[List[int]] = [
            list(range(ways)) for _ in range(sets)
        ]

    def touch(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)

    def victim(self, set_index: int) -> int:
        return self._order[set_index][0]

    def lru_to_mru(self, set_index: int) -> List[int]:
        """Expose the recency stack (used by tests)."""
        return list(self._order[set_index])


class FIFOPolicy(ReplacementPolicy):
    """Round-robin / first-in-first-out."""

    name = "fifo"

    def __init__(self, sets: int, ways: int):
        super().__init__(sets, ways)
        self._next = [0] * sets

    def touch(self, set_index: int, way: int) -> None:
        pass  # FIFO ignores uses

    def victim(self, set_index: int) -> int:
        way = self._next[set_index]
        self._next[set_index] = (way + 1) % self.ways
        return way


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim (deterministic via seed)."""

    name = "random"

    def __init__(self, sets: int, ways: int, seed: int = 0x5EED):
        super().__init__(sets, ways)
        self._rng = random.Random(seed)

    def touch(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.ways)


class PseudoLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU (the common hardware approximation).

    For 2 ways this degenerates to true LRU; for wider caches it keeps
    one tree bit per internal node.
    """

    name = "plru"

    def __init__(self, sets: int, ways: int):
        super().__init__(sets, ways)
        if ways & (ways - 1):
            raise ValueError("pseudo-LRU requires a power-of-two way count")
        self._levels = max(ways.bit_length() - 1, 0)
        self._tree = [[0] * max(ways - 1, 1) for _ in range(sets)]

    def touch(self, set_index: int, way: int) -> None:
        tree = self._tree[set_index]
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            # Point the tree bit away from the touched way.
            tree[node] = 1 - bit
            node = 2 * node + 1 + bit

    def victim(self, set_index: int) -> int:
        tree = self._tree[set_index]
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = tree[node]
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        return way


_POLICIES = {
    cls.name: cls
    for cls in (LRUPolicy, FIFOPolicy, RandomPolicy, PseudoLRUPolicy)
}


def make_policy(name: str, sets: int, ways: int) -> ReplacementPolicy:
    """Instantiate a policy by name (``lru``/``fifo``/``random``/``plru``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    return cls(sets, ways)
