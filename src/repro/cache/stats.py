"""Access-count bookkeeping shared by all cache architectures.

The paper's evaluation is phrased entirely in terms of *tag accesses
per cache access* and *ways accessed per cache access* (Figures 4 and
6) plus MAB activity (for its power).  :class:`AccessCounters`
accumulates exactly those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AccessCounters:
    """Tag/way/auxiliary access counts for one architecture on one trace.

    Attributes
    ----------
    accesses:
        Total cache accesses (loads+stores, or fetch packets).
    tag_accesses:
        Tag-array reads summed over ways (original 2-way load = 2).
    way_accesses:
        Data-array way reads/writes.
    cache_hits / cache_misses:
        Hit/miss counts of the underlying cache.
    mab_lookups / mab_hits / mab_bypasses:
        MAB activity; ``mab_bypasses`` counts large-displacement
        accesses that cannot use the MAB (paper: <1 %).
    stale_hits:
        MAB hits whose memoized line was NOT in the cache — must stay 0
        if the paper's consistency argument holds.
    aux_accesses:
        Auxiliary structure activity for baselines (set buffer probes,
        filter cache accesses, way-predictor reads, ...).
    extra_cycles:
        Performance penalty cycles (0 for the paper's technique by
        construction; nonzero for filter cache / way prediction /
        two-phase baselines).
    """

    accesses: int = 0
    tag_accesses: int = 0
    way_accesses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    loads: int = 0
    stores: int = 0
    mab_lookups: int = 0
    mab_hits: int = 0
    mab_bypasses: int = 0
    stale_hits: int = 0
    aux_accesses: int = 0
    extra_cycles: int = 0
    intra_line_hits: int = 0
    notes: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def tags_per_access(self) -> float:
        """Average tag-array reads per cache access (Figure 4/6 y-axis)."""
        return self.tag_accesses / self.accesses if self.accesses else 0.0

    @property
    def ways_per_access(self) -> float:
        """Average data ways accessed per cache access (Figure 4/6)."""
        return self.way_accesses / self.accesses if self.accesses else 0.0

    @property
    def mab_hit_rate(self) -> float:
        return self.mab_hits / self.mab_lookups if self.mab_lookups else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mab_duty(self) -> float:
        """Fraction of accesses during which the MAB was active."""
        return self.mab_lookups / self.accesses if self.accesses else 0.0

    def merge(self, other: "AccessCounters") -> "AccessCounters":
        """Element-wise sum (for aggregating multiple traces)."""
        merged = AccessCounters()
        for name in (
            "accesses", "tag_accesses", "way_accesses", "cache_hits",
            "cache_misses", "loads", "stores", "mab_lookups", "mab_hits",
            "mab_bypasses", "stale_hits", "aux_accesses", "extra_cycles",
            "intra_line_hits",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "tag_accesses": self.tag_accesses,
            "way_accesses": self.way_accesses,
            "tags_per_access": self.tags_per_access,
            "ways_per_access": self.ways_per_access,
            "cache_hit_rate": self.cache_hit_rate,
            "mab_hit_rate": self.mab_hit_rate,
            "mab_bypasses": self.mab_bypasses,
            "stale_hits": self.stale_hits,
            "extra_cycles": self.extra_cycles,
        }
