"""Write-back buffer model.

The FR-V "uses a write-back buffer which makes it possible to access
only a single way for store instructions" (paper Section 4): the store
is staged, its tag comparison resolves the way, and only that data way
is written.  For access counting the single-way-store consequence is
applied directly by the controllers; this model additionally tracks
occupancy and coalescing so the substrate is complete and the
behaviour can be tested.

``push`` is on the controllers' per-store hot path, so the line mask
is precomputed and the pending FIFO is a plain insertion-ordered dict.
"""

from __future__ import annotations

from typing import Dict

from repro.cache.config import CacheConfig


class WriteBuffer:
    """A small FIFO of pending store line addresses with coalescing."""

    def __init__(self, config: CacheConfig, entries: int = 4):
        if entries < 1:
            raise ValueError("write buffer needs at least one entry")
        self.config = config
        self.entries = entries
        self._line_mask = ~(config.line_bytes - 1) & 0xFFFFFFFF
        self._pending: Dict[int, int] = {}
        self.inserts = 0
        self.coalesced = 0
        self.drains = 0
        self.max_occupancy = 0

    def push(self, addr: int) -> bool:
        """Stage a store; returns True if it coalesced with a pending line."""
        line = addr & self._line_mask
        pending = self._pending
        if line in pending:
            pending[line] += 1
            self.coalesced += 1
            return True
        if len(pending) >= self.entries:
            self._drain_one()
        pending[line] = 1
        self.inserts += 1
        occupancy = len(pending)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy
        return False

    def _drain_one(self) -> None:
        del self._pending[next(iter(self._pending))]
        self.drains += 1

    def drain_all(self) -> int:
        """Flush everything; returns the number of lines drained."""
        count = len(self._pending)
        self.drains += count
        self._pending.clear()
        return count

    @property
    def occupancy(self) -> int:
        return len(self._pending)
