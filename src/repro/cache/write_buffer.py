"""Write-back buffer model.

The FR-V "uses a write-back buffer which makes it possible to access
only a single way for store instructions" (paper Section 4): the store
is staged, its tag comparison resolves the way, and only that data way
is written.  For access counting the single-way-store consequence is
applied directly by the controllers; this model additionally tracks
occupancy and coalescing so the substrate is complete and the
behaviour can be tested.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.config import CacheConfig


class WriteBuffer:
    """A small FIFO of pending store line addresses with coalescing."""

    def __init__(self, config: CacheConfig, entries: int = 4):
        if entries < 1:
            raise ValueError("write buffer needs at least one entry")
        self.config = config
        self.entries = entries
        self._pending: "OrderedDict[int, int]" = OrderedDict()
        self.inserts = 0
        self.coalesced = 0
        self.drains = 0
        self.max_occupancy = 0

    def push(self, addr: int) -> bool:
        """Stage a store; returns True if it coalesced with a pending line."""
        line = self.config.line_addr(addr)
        if line in self._pending:
            self._pending[line] += 1
            self.coalesced += 1
            return True
        if len(self._pending) >= self.entries:
            self._drain_one()
        self._pending[line] = 1
        self.inserts += 1
        self.max_occupancy = max(self.max_occupancy, len(self._pending))
        return False

    def _drain_one(self) -> None:
        self._pending.popitem(last=False)
        self.drains += 1

    def drain_all(self) -> int:
        """Flush everything; returns the number of lines drained."""
        count = len(self._pending)
        self.drains += count
        self._pending.clear()
        return count

    @property
    def occupancy(self) -> int:
        return len(self._pending)
