"""Set-associative cache substrate.

A behavioural model of the FR-V's split L1 caches: 32 kB, 2-way
set-associative, 512 sets of 32-byte lines (paper Section 4), with
pluggable replacement policies, an eviction callback used by the MAB
consistency machinery, a line buffer (for the paper's future-work
combination) and a coalescing write-back buffer.
"""

from repro.cache.config import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.cache.cache import AccessResult, CacheLineState, SetAssociativeCache
from repro.cache.line_buffer import LineBuffer
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PseudoLRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer

__all__ = [
    "AccessCounters",
    "AccessResult",
    "CacheConfig",
    "CacheLineState",
    "FIFOPolicy",
    "FRV_DCACHE",
    "FRV_ICACHE",
    "LRUPolicy",
    "LineBuffer",
    "PseudoLRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "WriteBuffer",
    "make_policy",
]
