"""Single/multiple line buffer model.

A line buffer holds the most recently accessed cache line(s) so repeat
accesses to the same line skip the cache arrays entirely.  The paper's
conclusion names combining way memoization with a line buffer as future
work; :mod:`repro.core.line_buffer_memo` builds that combination on top
of this model.  It also underpins the Su & Despain [13] style baseline.
"""

from __future__ import annotations

from typing import List

from repro.cache.config import CacheConfig


class LineBuffer:
    """An ``entries``-deep fully-associative buffer of line addresses.

    Only line addresses are modelled (no data), which is all the access
    counting needs.  Replacement is LRU.
    """

    def __init__(self, config: CacheConfig, entries: int = 1):
        if entries < 1:
            raise ValueError("line buffer needs at least one entry")
        self.config = config
        self.entries = entries
        # MRU at the back.
        self._lines: List[int] = []
        self.hits = 0
        self.misses = 0

    def probe(self, addr: int) -> bool:
        """True when ``addr`` is buffered; no state change."""
        return self.config.line_addr(addr) in self._lines

    def access(self, addr: int) -> bool:
        """Look up ``addr``; allocate its line on a miss. Returns hit."""
        line = self.config.line_addr(addr)
        if line in self._lines:
            self._lines.remove(line)
            self._lines.append(line)
            self.hits += 1
            return True
        self.misses += 1
        self._lines.append(line)
        if len(self._lines) > self.entries:
            self._lines.pop(0)
        return False

    def invalidate_line(self, line_addr: int) -> None:
        """Drop a line (keeps the buffer coherent with the cache)."""
        if line_addr in self._lines:
            self._lines.remove(line_addr)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0
