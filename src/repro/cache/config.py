"""Cache geometry and 32-bit address splitting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

ADDRESS_BITS = 32


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache.

    The paper's FR-V caches are ``CacheConfig(32 * 1024, 2, 32)``:
    512 sets, 5 offset bits, 9 index bits, 18 tag bits.
    """

    size_bytes: int
    ways: int
    line_bytes: int

    def __post_init__(self):
        _log2_exact(self.line_bytes, "line_bytes")
        if self.ways < 1:
            raise ValueError("ways must be >= 1")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(
                "cache size must be a multiple of ways * line_bytes"
            )
        _log2_exact(self.sets, "number of sets")

    # -- derived geometry ------------------------------------------------

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def offset_bits(self) -> int:
        return _log2_exact(self.line_bytes, "line_bytes")

    @property
    def index_bits(self) -> int:
        return _log2_exact(self.sets, "sets")

    @property
    def tag_bits(self) -> int:
        return ADDRESS_BITS - self.index_bits - self.offset_bits

    @property
    def line_bits(self) -> int:
        """Data bits per line (the width of one way read)."""
        return 8 * self.line_bytes

    # -- address splitting -------------------------------------------------

    def split(self, addr: int) -> Tuple[int, int, int]:
        """Split an address into ``(tag, set_index, offset)``."""
        addr &= 0xFFFFFFFF
        offset = addr & (self.line_bytes - 1)
        set_index = (addr >> self.offset_bits) & (self.sets - 1)
        tag = addr >> (self.offset_bits + self.index_bits)
        return tag, set_index, offset

    def tag_of(self, addr: int) -> int:
        return (addr & 0xFFFFFFFF) >> (self.offset_bits + self.index_bits)

    def set_of(self, addr: int) -> int:
        return ((addr & 0xFFFFFFFF) >> self.offset_bits) & (self.sets - 1)

    def line_addr(self, addr: int) -> int:
        """Address of the cache line containing ``addr``."""
        return (addr & 0xFFFFFFFF) & ~(self.line_bytes - 1)

    def join(self, tag: int, set_index: int, offset: int = 0) -> int:
        """Inverse of :meth:`split`."""
        return (
            (tag << (self.offset_bits + self.index_bits))
            | (set_index << self.offset_bits)
            | offset
        ) & 0xFFFFFFFF


#: The FR-V L1 instruction cache of the paper (32 kB, 2-way, 32 B lines).
FRV_ICACHE = CacheConfig(size_bytes=32 * 1024, ways=2, line_bytes=32)

#: The FR-V L1 data cache of the paper (same geometry).
FRV_DCACHE = CacheConfig(size_bytes=32 * 1024, ways=2, line_bytes=32)
