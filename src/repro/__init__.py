"""Way memoization for low-power caches — a full reproduction.

This package reproduces Ishihara & Fallah, *"A Way Memoization
Technique for Reducing Power Consumption of Caches in Application
Specific Integrated Processors"* (DATE 2005), including every
substrate the paper's evaluation depends on:

* :mod:`repro.isa` / :mod:`repro.sim` — the FRL-32 RISC ISA, a
  two-pass assembler and an instruction-set simulator producing
  address traces (the Softune-ISS substitute);
* :mod:`repro.cache` — set-associative cache substrate;
* :mod:`repro.core` — **the contribution**: the Memory Address Buffer
  and the way-memoizing I/D-cache controllers;
* :mod:`repro.baselines` — original cache, Panwar [4], set buffer
  [14], way prediction [9], filter cache [6], two-phase cache [8];
* :mod:`repro.energy` — CACTI-style SRAM energy, the calibrated MAB
  area/delay/power model (Tables 1-3) and Equation (1);
* :mod:`repro.workloads` — the seven benchmarks (DCT, FFT, dhrystone,
  whetstone, compress, jpeg_enc, mpeg2enc) rebuilt in FRL-32 assembly
  with bit-exact golden models;
* :mod:`repro.experiments` — one module per paper table/figure plus
  ablations; run them via ``python -m repro``.

Quickstart
----------
>>> from repro.workloads import load_workload
>>> from repro.core import WayMemoDCache
>>> workload = load_workload("dct")
>>> counters = WayMemoDCache().process(workload.trace.data)
>>> counters.tags_per_access < 1.0
True
"""

__version__ = "1.0.0"

from repro.cache import CacheConfig, FRV_DCACHE, FRV_ICACHE
from repro.core import MAB, MABConfig, WayMemoDCache, WayMemoICache
from repro.energy import CachePowerModel, MABHardwareModel

__all__ = [
    "CacheConfig",
    "CachePowerModel",
    "FRV_DCACHE",
    "FRV_ICACHE",
    "MAB",
    "MABConfig",
    "MABHardwareModel",
    "WayMemoDCache",
    "WayMemoICache",
    "__version__",
]
