"""Processor simulation substrate.

Replaces the paper's proprietary Softune instruction-set simulator: a
flat little-endian memory model (:mod:`repro.sim.memory`), an FRL-32
interpreter (:mod:`repro.sim.cpu`) and compact numpy-backed traces of
everything the cache architectures need to see
(:mod:`repro.sim.trace`, :mod:`repro.sim.fetch`):

* the **data access trace** keeps the *(base register value,
  displacement)* pair of every load/store — exactly the two inputs of
  the paper's D-cache MAB (Figure 1), plus the resolved address;
* the **flow trace** records straight-line runs and how each run was
  entered (taken branch, indirect/link jump), from which
  :func:`repro.sim.fetch.fetch_stream` derives the per-fetch-packet
  I-cache access stream with the MAB input mux of Figure 2.
"""

from repro.sim.cpu import CPU, CPUError, ExecutionResult, run_program
from repro.sim.fetch import FetchKind, FetchStream, fetch_stream
from repro.sim.memory import Memory, MemoryError
from repro.sim.profiler import Profile, profile_trace, recommend_mab
from repro.sim.traceio import TraceFormatError, load_traces, save_traces
from repro.sim.trace import DataTrace, ExecutionTrace, FlowKind, FlowTrace

__all__ = [
    "CPU",
    "CPUError",
    "DataTrace",
    "ExecutionResult",
    "ExecutionTrace",
    "FetchKind",
    "FetchStream",
    "FlowKind",
    "FlowTrace",
    "Memory",
    "MemoryError",
    "Profile",
    "TraceFormatError",
    "load_traces",
    "profile_trace",
    "recommend_mab",
    "save_traces",
    "fetch_stream",
    "run_program",
]
