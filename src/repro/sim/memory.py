"""Flat little-endian memory model for the FRL-32 simulator."""

from __future__ import annotations

from repro.isa.program import MEMORY_BYTES, Program


class MemoryError(RuntimeError):
    """Raised on out-of-range or misaligned accesses."""


class Memory:
    """A flat byte-addressable memory of ``size`` bytes.

    Loads and stores enforce natural alignment, matching the FRL-32
    architecture (and keeping benchmark address arithmetic honest).
    """

    def __init__(self, size: int = MEMORY_BYTES):
        self.size = size
        self._bytes = bytearray(size)

    # ------------------------------------------------------------------

    def load_program(self, program: Program) -> None:
        """Copy a program's text and data segments into memory."""
        for segment in (program.text, program.data):
            if segment.end > self.size:
                raise MemoryError(
                    f"segment [{segment.base:#x}, {segment.end:#x}) does "
                    f"not fit in {self.size:#x} bytes of memory"
                )
            self._bytes[segment.base : segment.end] = segment.data

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size:
            raise MemoryError(f"address {addr:#x} out of range")
        if addr % size != 0:
            raise MemoryError(
                f"misaligned {size}-byte access at {addr:#x}"
            )

    # -- reads ----------------------------------------------------------

    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self._bytes[addr : addr + 4], "little")

    def read_u16(self, addr: int) -> int:
        self._check(addr, 2)
        return int.from_bytes(self._bytes[addr : addr + 2], "little")

    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self._bytes[addr]

    def read_bytes(self, addr: int, count: int) -> bytes:
        """Unchecked-alignment bulk read (for tests and validation)."""
        if addr < 0 or addr + count > self.size:
            raise MemoryError(f"range {addr:#x}+{count} out of bounds")
        return bytes(self._bytes[addr : addr + count])

    # -- writes ---------------------------------------------------------

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self._bytes[addr : addr + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little"
        )

    def write_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2)
        self._bytes[addr : addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._bytes[addr] = value & 0xFF

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Bulk write (for test fixtures and workload inputs)."""
        if addr < 0 or addr + len(data) > self.size:
            raise MemoryError(f"range {addr:#x}+{len(data)} out of bounds")
        self._bytes[addr : addr + len(data)] = data
