"""Compact numpy-backed execution traces.

Two streams are recorded while the CPU runs:

* :class:`DataTrace` — one record per load/store with the *(base,
  displacement)* pair the address-generation unit receives.  These are
  the exact inputs of the D-cache MAB (paper Figure 1): the MAB match is
  performed on the base's upper tag bits and a 14-bit partial sum, never
  on the full 32-bit effective address.
* :class:`FlowTrace` — straight-line *runs* of instructions plus the
  control transfer that entered each run.  Sequential flow inside a run
  is implicit, which keeps the trace small and fast to record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


class FlowKind(enum.IntEnum):
    """How control arrived at the first instruction of a run."""

    START = 0     #: program entry (cold start)
    BRANCH = 1    #: taken conditional branch or direct ``jal``
    INDIRECT = 2  #: ``jalr`` — register-indirect jump (incl. returns)


@dataclass(frozen=True)
class DataTrace:
    """Per-load/store address-generation record arrays.

    Attributes
    ----------
    base:
        uint32 base-register values.
    disp:
        int32 displacements (the instruction immediates).
    store:
        bool, True for stores.
    """

    base: np.ndarray
    disp: np.ndarray
    store: np.ndarray

    def __post_init__(self):
        if not len(self.base) == len(self.disp) == len(self.store):
            raise ValueError("data trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.base)

    @property
    def addr(self) -> np.ndarray:
        """Effective addresses, uint32."""
        return (
            self.base.astype(np.int64) + self.disp.astype(np.int64)
        ).astype(np.uint32)

    @property
    def num_loads(self) -> int:
        return int(len(self) - self.store.sum())

    @property
    def num_stores(self) -> int:
        return int(self.store.sum())

    @staticmethod
    def from_lists(base, disp, store) -> "DataTrace":
        return DataTrace(
            base=np.asarray(base, dtype=np.uint32),
            disp=np.asarray(disp, dtype=np.int32),
            store=np.asarray(store, dtype=bool),
        )


@dataclass(frozen=True)
class FlowTrace:
    """Run-length encoded instruction flow.

    Run ``i`` executes ``count[i]`` sequential instructions starting at
    ``start[i]``; it was entered via ``kind[i]`` with address-generation
    inputs ``base[i]`` + ``disp[i]`` (for ``BRANCH`` the branch PC and
    its offset, for ``INDIRECT`` the register value and the ``jalr``
    immediate — Figure 2's input mux).
    """

    start: np.ndarray
    count: np.ndarray
    kind: np.ndarray
    base: np.ndarray
    disp: np.ndarray

    def __post_init__(self):
        lengths = {
            len(self.start), len(self.count), len(self.kind),
            len(self.base), len(self.disp),
        }
        if len(lengths) != 1:
            raise ValueError("flow trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.start)

    @property
    def num_instructions(self) -> int:
        return int(self.count.sum())

    @staticmethod
    def from_lists(start, count, kind, base, disp) -> "FlowTrace":
        return FlowTrace(
            start=np.asarray(start, dtype=np.uint32),
            count=np.asarray(count, dtype=np.uint32),
            kind=np.asarray(kind, dtype=np.uint8),
            base=np.asarray(base, dtype=np.uint32),
            disp=np.asarray(disp, dtype=np.int32),
        )

    def expand_pcs(self) -> np.ndarray:
        """Expand to the full per-instruction PC stream (for tests)."""
        total = self.num_instructions
        out = np.empty(total, dtype=np.uint32)
        pos = 0
        for start, count in zip(self.start, self.count):
            out[pos : pos + count] = start + 4 * np.arange(
                count, dtype=np.uint32
            )
            pos += count
        return out


@dataclass
class ExecutionTrace:
    """Everything one program run exposes to the cache architectures."""

    program_name: str
    data: DataTrace
    flow: FlowTrace
    instructions: int
    #: instruction mix histogram, mnemonic -> count
    mix: Dict[str, int] = field(default_factory=dict)

    @property
    def num_data_accesses(self) -> int:
        return len(self.data)

    def summary(self) -> str:
        d = self.data
        return (
            f"{self.program_name}: {self.instructions} instructions, "
            f"{len(d)} data accesses ({d.num_loads} loads / "
            f"{d.num_stores} stores), {len(self.flow)} basic-block runs"
        )


class TraceRecorder:
    """Mutable trace builder used by the CPU while executing."""

    def __init__(self) -> None:
        self.data_base: List[int] = []
        self.data_disp: List[int] = []
        self.data_store: List[int] = []
        self.run_start: List[int] = []
        self.run_count: List[int] = []
        self.run_kind: List[int] = []
        self.run_base: List[int] = []
        self.run_disp: List[int] = []

    def begin_run(self, pc: int, kind: int, base: int, disp: int) -> None:
        self.run_start.append(pc)
        self.run_count.append(0)
        self.run_kind.append(kind)
        self.run_base.append(base)
        self.run_disp.append(disp)

    def step(self) -> None:
        self.run_count[-1] += 1

    def record_data(self, base: int, disp: int, store: bool) -> None:
        self.data_base.append(base)
        self.data_disp.append(disp)
        self.data_store.append(store)

    def finish(self, program_name: str, instructions: int, mix=None
               ) -> ExecutionTrace:
        return ExecutionTrace(
            program_name=program_name,
            data=DataTrace.from_lists(
                self.data_base, self.data_disp, self.data_store
            ),
            flow=FlowTrace.from_lists(
                self.run_start, self.run_count, self.run_kind,
                self.run_base, self.run_disp,
            ),
            instructions=instructions,
            mix=dict(mix or {}),
        )
