"""Trace serialization: save and load traces as ``.npz`` archives.

Running the ISS is cheap here, but real users integrate external
traces (e.g. from an RTL simulator or a different ISS).  This module
defines a stable on-disk format for both trace kinds so the cache
studies can run on traces produced elsewhere::

    save_traces("dct.npz", workload.trace, workload.fetch)
    data, fetch = load_traces("dct.npz")

Format: a numpy ``.npz`` with ``data_*``, ``flow_*`` and ``fetch_*``
arrays plus a one-element ``meta`` record (format version, program
name, packet size).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sim.fetch import FetchStream
from repro.sim.trace import DataTrace, ExecutionTrace, FlowTrace

FORMAT_VERSION = 1


class TraceFormatError(RuntimeError):
    """Raised when an archive is not a valid trace file."""


def save_traces(
    path: str,
    trace: ExecutionTrace,
    fetch: Optional[FetchStream] = None,
) -> None:
    """Write an execution trace (and optional fetch stream) to disk."""
    payload = {
        "version": np.asarray([FORMAT_VERSION]),
        "program_name": np.asarray([trace.program_name]),
        "instructions": np.asarray([trace.instructions]),
        "data_base": trace.data.base,
        "data_disp": trace.data.disp,
        "data_store": trace.data.store,
        "flow_start": trace.flow.start,
        "flow_count": trace.flow.count,
        "flow_kind": trace.flow.kind,
        "flow_base": trace.flow.base,
        "flow_disp": trace.flow.disp,
        "mix_mnemonics": np.asarray(sorted(trace.mix), dtype="U8"),
        "mix_counts": np.asarray(
            [trace.mix[m] for m in sorted(trace.mix)], dtype=np.int64
        ),
    }
    if fetch is not None:
        payload.update({
            "fetch_addr": fetch.addr,
            "fetch_kind": fetch.kind,
            "fetch_base": fetch.base,
            "fetch_disp": fetch.disp,
            "fetch_packet_bytes": np.asarray([fetch.packet_bytes]),
        })
    np.savez_compressed(path, **payload)


def load_traces(
    path: str,
) -> Tuple[ExecutionTrace, Optional[FetchStream]]:
    """Read traces written by :func:`save_traces`."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            version = int(archive["version"][0])
        except KeyError as exc:
            raise TraceFormatError(f"{path}: not a trace archive") from exc
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported trace format v{version}"
            )
        data = DataTrace(
            base=archive["data_base"],
            disp=archive["data_disp"],
            store=archive["data_store"],
        )
        flow = FlowTrace(
            start=archive["flow_start"],
            count=archive["flow_count"],
            kind=archive["flow_kind"],
            base=archive["flow_base"],
            disp=archive["flow_disp"],
        )
        mix = {}
        if "mix_mnemonics" in archive:
            mix = {
                str(m): int(c) for m, c in zip(
                    archive["mix_mnemonics"], archive["mix_counts"]
                )
            }
        trace = ExecutionTrace(
            program_name=str(archive["program_name"][0]),
            data=data,
            flow=flow,
            instructions=int(archive["instructions"][0]),
            mix=mix,
        )
        fetch = None
        if "fetch_addr" in archive:
            fetch = FetchStream(
                addr=archive["fetch_addr"],
                kind=archive["fetch_kind"],
                base=archive["fetch_base"],
                disp=archive["fetch_disp"],
                packet_bytes=int(archive["fetch_packet_bytes"][0]),
            )
        return trace, fetch
