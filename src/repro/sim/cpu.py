"""FRL-32 instruction-set interpreter.

The CPU executes an assembled :class:`~repro.isa.program.Program` on a
flat :class:`~repro.sim.memory.Memory` and records the traces the cache
studies consume.  The text segment is pre-decoded into operand tuples
once, so the hot loop is a plain dictionary-free dispatch chain.

Arithmetic is 32-bit two's complement.  Division follows the RISC-V
convention (``div x, 0 == -1``, ``rem x, 0 == x``, overflow wraps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import MEMORY_BYTES, Program, STACK_TOP
from repro.isa.registers import NUM_REGS, REG_SP
from repro.sim.memory import Memory
from repro.sim.trace import ExecutionTrace, FlowKind, TraceRecorder

_M32 = 0xFFFFFFFF
_SIGN = 0x80000000


class CPUError(RuntimeError):
    """Raised on execution faults (bad PC, runaway program, ...)."""


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & _SIGN else value


@dataclass
class ExecutionResult:
    """Outcome of :meth:`CPU.run`."""

    trace: ExecutionTrace
    registers: List[int]
    memory: Memory
    instructions: int
    halted: bool

    def reg(self, number: int) -> int:
        """Unsigned value of register ``number`` after the run."""
        return self.registers[number]


class CPU:
    """Interpreter for FRL-32 programs.

    Parameters
    ----------
    program:
        The assembled program to run.
    memory_bytes:
        Size of the flat memory (defaults to the 1 MiB memory map).
    """

    def __init__(self, program: Program, memory_bytes: int = MEMORY_BYTES):
        self.program = program
        self.memory = Memory(memory_bytes)
        self.memory.load_program(program)
        self.registers: List[int] = [0] * NUM_REGS
        self.registers[REG_SP] = STACK_TOP
        self._decoded = self._predecode(program)

    @staticmethod
    def _predecode(program: Program) -> List[Tuple[str, int, int, int, int]]:
        return [
            (i.mnemonic, i.rd, i.rs1, i.rs2, i.imm)
            for i in program.instructions()
        ]

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = 20_000_000) -> ExecutionResult:
        """Execute until ``halt`` and return the result with traces.

        Raises :class:`CPUError` if the program runs away (more than
        ``max_instructions`` executed) or the PC leaves the text segment.
        """
        regs = self.registers
        mem = self.memory
        decoded = self._decoded
        text_base = self.program.text.base
        text_len = len(decoded)
        recorder = TraceRecorder()
        mix: Dict[str, int] = {}

        pc = self.program.entry
        recorder.begin_run(pc, int(FlowKind.START), pc, 0)
        executed = 0
        halted = False

        read_u32, read_u16, read_u8 = mem.read_u32, mem.read_u16, mem.read_u8
        write_u32, write_u16, write_u8 = (
            mem.write_u32, mem.write_u16, mem.write_u8
        )
        record_data = recorder.record_data
        begin_run = recorder.begin_run
        run_count = recorder.run_count

        while True:
            idx = (pc - text_base) >> 2
            if not 0 <= idx < text_len or pc & 3:
                raise CPUError(f"PC {pc:#010x} outside text segment")
            if executed >= max_instructions:
                raise CPUError(
                    f"runaway program: exceeded {max_instructions} "
                    "instructions"
                )
            m, rd, rs1, rs2, imm = decoded[idx]
            executed += 1
            run_count[-1] += 1
            mix[m] = mix.get(m, 0) + 1
            next_pc = pc + INSTRUCTION_BYTES

            if m == "addi":
                if rd:
                    regs[rd] = (regs[rs1] + imm) & _M32
            elif m == "lw" or m == "lh" or m == "lhu" or m == "lb" \
                    or m == "lbu":
                base = regs[rs1]
                record_data(base, imm, False)
                addr = (base + imm) & _M32
                if m == "lw":
                    value = read_u32(addr)
                elif m == "lhu":
                    value = read_u16(addr)
                elif m == "lh":
                    value = read_u16(addr)
                    if value & 0x8000:
                        value -= 0x10000
                        value &= _M32
                elif m == "lbu":
                    value = read_u8(addr)
                else:  # lb
                    value = read_u8(addr)
                    if value & 0x80:
                        value -= 0x100
                        value &= _M32
                if rd:
                    regs[rd] = value
            elif m == "sw" or m == "sh" or m == "sb":
                base = regs[rs1]
                record_data(base, imm, True)
                addr = (base + imm) & _M32
                if m == "sw":
                    write_u32(addr, regs[rs2])
                elif m == "sh":
                    write_u16(addr, regs[rs2])
                else:
                    write_u8(addr, regs[rs2])
            elif m == "add":
                if rd:
                    regs[rd] = (regs[rs1] + regs[rs2]) & _M32
            elif m == "sub":
                if rd:
                    regs[rd] = (regs[rs1] - regs[rs2]) & _M32
            elif m == "beq" or m == "bne" or m == "blt" or m == "bge" \
                    or m == "bltu" or m == "bgeu":
                a, b = regs[rs1], regs[rs2]
                if m == "beq":
                    taken = a == b
                elif m == "bne":
                    taken = a != b
                elif m == "bltu":
                    taken = a < b
                elif m == "bgeu":
                    taken = a >= b
                elif m == "blt":
                    taken = _signed(a) < _signed(b)
                else:
                    taken = _signed(a) >= _signed(b)
                if taken:
                    next_pc = pc + imm
                    begin_run(next_pc, int(FlowKind.BRANCH), pc, imm)
            elif m == "and":
                if rd:
                    regs[rd] = regs[rs1] & regs[rs2]
            elif m == "or":
                if rd:
                    regs[rd] = regs[rs1] | regs[rs2]
            elif m == "xor":
                if rd:
                    regs[rd] = regs[rs1] ^ regs[rs2]
            elif m == "sll":
                if rd:
                    regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _M32
            elif m == "srl":
                if rd:
                    regs[rd] = regs[rs1] >> (regs[rs2] & 31)
            elif m == "sra":
                if rd:
                    regs[rd] = (_signed(regs[rs1]) >> (regs[rs2] & 31)) & _M32
            elif m == "slt":
                if rd:
                    regs[rd] = int(_signed(regs[rs1]) < _signed(regs[rs2]))
            elif m == "sltu":
                if rd:
                    regs[rd] = int(regs[rs1] < regs[rs2])
            elif m == "andi":
                if rd:
                    regs[rd] = regs[rs1] & (imm & _M32)
            elif m == "ori":
                if rd:
                    regs[rd] = regs[rs1] | (imm & _M32)
            elif m == "xori":
                if rd:
                    regs[rd] = regs[rs1] ^ (imm & _M32)
            elif m == "slli":
                if rd:
                    regs[rd] = (regs[rs1] << (imm & 31)) & _M32
            elif m == "srli":
                if rd:
                    regs[rd] = regs[rs1] >> (imm & 31)
            elif m == "srai":
                if rd:
                    regs[rd] = (_signed(regs[rs1]) >> (imm & 31)) & _M32
            elif m == "slti":
                if rd:
                    regs[rd] = int(_signed(regs[rs1]) < imm)
            elif m == "sltiu":
                if rd:
                    regs[rd] = int(regs[rs1] < (imm & _M32))
            elif m == "mul":
                if rd:
                    regs[rd] = (regs[rs1] * regs[rs2]) & _M32
            elif m == "mulh":
                if rd:
                    regs[rd] = (
                        (_signed(regs[rs1]) * _signed(regs[rs2])) >> 32
                    ) & _M32
            elif m == "mulhu":
                if rd:
                    regs[rd] = ((regs[rs1] * regs[rs2]) >> 32) & _M32
            elif m == "div":
                if rd:
                    a, b = _signed(regs[rs1]), _signed(regs[rs2])
                    if b == 0:
                        q = -1
                    else:
                        q = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            q = -q
                    regs[rd] = q & _M32
            elif m == "divu":
                if rd:
                    b = regs[rs2]
                    regs[rd] = _M32 if b == 0 else regs[rs1] // b
            elif m == "rem":
                if rd:
                    a, b = _signed(regs[rs1]), _signed(regs[rs2])
                    if b == 0:
                        r = a
                    else:
                        r = abs(a) % abs(b)
                        if a < 0:
                            r = -r
                    regs[rd] = r & _M32
            elif m == "remu":
                if rd:
                    b = regs[rs2]
                    regs[rd] = regs[rs1] if b == 0 else regs[rs1] % b
            elif m == "lui":
                if rd:
                    regs[rd] = (imm << 16) & _M32
            elif m == "jal":
                if rd:
                    regs[rd] = next_pc
                next_pc = pc + imm
                begin_run(next_pc, int(FlowKind.BRANCH), pc, imm)
            elif m == "jalr":
                base = regs[rs1]
                if rd:
                    regs[rd] = next_pc
                next_pc = (base + imm) & _M32 & ~3
                begin_run(next_pc, int(FlowKind.INDIRECT), base, imm)
            elif m == "halt":
                halted = True
                break
            else:  # pragma: no cover - decode guarantees coverage
                raise CPUError(f"unimplemented instruction {m!r}")
            pc = next_pc

        trace = recorder.finish(self.program.name, executed, mix)
        return ExecutionResult(
            trace=trace,
            registers=list(regs),
            memory=mem,
            instructions=executed,
            halted=halted,
        )


def run_program(
    program: Program,
    max_instructions: int = 20_000_000,
    memory_bytes: Optional[int] = None,
) -> ExecutionResult:
    """Assemble-and-go helper: execute ``program`` on a fresh CPU."""
    cpu = CPU(
        program,
        memory_bytes=memory_bytes if memory_bytes is not None
        else MEMORY_BYTES,
    )
    return cpu.run(max_instructions=max_instructions)
