"""FRL-32 instruction-set interpreter.

The CPU executes an assembled :class:`~repro.isa.program.Program` on a
flat :class:`~repro.sim.memory.Memory` and records the traces the cache
studies consume.  Two engines share the architectural semantics:

* ``engine="fast"`` (default) — the block-compiling engine of
  :mod:`repro.sim.fastcpu`: basic blocks become specialized Python
  closures, hot self-loops run without per-instruction dispatch, and
  trace/mix bookkeeping is batched.
* ``engine="interp"`` — the classic interpreter loop below, kept as
  the executable specification.  The text segment is pre-decoded into
  ``(opcode, rd, rs1, rs2, imm)`` tuples once, dispatch is an
  integer-opcode branch chain (no string compares on the hot path) and
  the instruction mix is counted in an opcode-indexed array.

``tests/test_fastpath_differential.py`` asserts both engines produce
identical registers, memory, traces and instruction counts.

Arithmetic is 32-bit two's complement.  Division follows the RISC-V
convention (``div x, 0 == -1``, ``rem x, 0 == x``, overflow wraps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    OPCODES,
    OPCODE_BY_NUMBER,
)
from repro.isa.program import MEMORY_BYTES, Program, STACK_TOP
from repro.isa.registers import NUM_REGS, REG_SP
from repro.sim.memory import Memory
from repro.sim.trace import ExecutionTrace, FlowKind, TraceRecorder

_M32 = 0xFFFFFFFF
_SIGN = 0x80000000

# Integer opcodes for the dispatch chain (bound once at import).
_OP = {m: info.opcode for m, info in OPCODES.items()}
_ADDI = _OP["addi"]
_LW, _LH, _LHU, _LB, _LBU = (
    _OP["lw"], _OP["lh"], _OP["lhu"], _OP["lb"], _OP["lbu"]
)
_SW, _SH, _SB = _OP["sw"], _OP["sh"], _OP["sb"]
_ADD, _SUB = _OP["add"], _OP["sub"]
_BEQ, _BNE, _BLT, _BGE, _BLTU, _BGEU = (
    _OP["beq"], _OP["bne"], _OP["blt"], _OP["bge"],
    _OP["bltu"], _OP["bgeu"],
)
_AND, _OR, _XOR = _OP["and"], _OP["or"], _OP["xor"]
_SLL, _SRL, _SRA = _OP["sll"], _OP["srl"], _OP["sra"]
_SLT, _SLTU = _OP["slt"], _OP["sltu"]
_ANDI, _ORI, _XORI = _OP["andi"], _OP["ori"], _OP["xori"]
_SLLI, _SRLI, _SRAI = _OP["slli"], _OP["srli"], _OP["srai"]
_SLTI, _SLTIU = _OP["slti"], _OP["sltiu"]
_MUL, _MULH, _MULHU = _OP["mul"], _OP["mulh"], _OP["mulhu"]
_DIV, _DIVU, _REM, _REMU = (
    _OP["div"], _OP["divu"], _OP["rem"], _OP["remu"]
)
_LUI, _JAL, _JALR, _HALT = (
    _OP["lui"], _OP["jal"], _OP["jalr"], _OP["halt"]
)
_NUM_OPCODES = max(_OP.values()) + 1

#: Engines accepted by :meth:`CPU.run`.
ENGINES = ("fast", "interp")


class CPUError(RuntimeError):
    """Raised on execution faults (bad PC, runaway program, ...)."""


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & _SIGN else value


@dataclass
class ExecutionResult:
    """Outcome of :meth:`CPU.run`."""

    trace: ExecutionTrace
    registers: List[int]
    memory: Memory
    instructions: int
    halted: bool

    def reg(self, number: int) -> int:
        """Unsigned value of register ``number`` after the run."""
        return self.registers[number]


class CPU:
    """Interpreter for FRL-32 programs.

    Parameters
    ----------
    program:
        The assembled program to run.
    memory_bytes:
        Size of the flat memory (defaults to the 1 MiB memory map).
    """

    def __init__(self, program: Program, memory_bytes: int = MEMORY_BYTES):
        self.program = program
        self.memory = Memory(memory_bytes)
        self.memory.load_program(program)
        self.registers: List[int] = [0] * NUM_REGS
        self.registers[REG_SP] = STACK_TOP
        # Predecode lazily: the default fast engine keeps its own
        # compiled representation and never reads these tuples.
        self._decoded_cache: Optional[
            List[Tuple[int, int, int, int, int]]
        ] = None

    @property
    def _decoded(self) -> List[Tuple[int, int, int, int, int]]:
        if self._decoded_cache is None:
            self._decoded_cache = self._predecode(self.program)
        return self._decoded_cache

    @staticmethod
    def _predecode(program: Program) -> List[Tuple[int, int, int, int, int]]:
        """Decode the text segment to (opcode, rd, rs1, rs2, imm) tuples."""
        return [
            (_OP[i.mnemonic], i.rd, i.rs1, i.rs2, i.imm)
            for i in program.instructions()
        ]

    # ------------------------------------------------------------------

    def run(
        self,
        max_instructions: int = 20_000_000,
        engine: str = "fast",
    ) -> ExecutionResult:
        """Execute until ``halt`` and return the result with traces.

        Raises :class:`CPUError` if the program runs away (more than
        ``max_instructions`` executed) or the PC leaves the text
        segment.  ``engine`` selects the block-compiling fast engine
        (default) or the reference interpreter loop (``"interp"``).
        """
        if engine == "fast":
            from repro.sim.fastcpu import run_fast

            trace, instructions, halted = run_fast(
                self.program, self.memory, self.registers,
                max_instructions,
            )
            return ExecutionResult(
                trace=trace,
                registers=list(self.registers),
                memory=self.memory,
                instructions=instructions,
                halted=halted,
            )
        if engine != "interp":
            raise ValueError(f"unknown engine {engine!r}; use {ENGINES}")
        return self._run_interp(max_instructions)

    def _run_interp(self, max_instructions: int) -> ExecutionResult:
        """The reference interpreter loop (integer-opcode dispatch)."""
        regs = self.registers
        mem = self.memory
        decoded = self._decoded
        text_base = self.program.text.base
        text_len = len(decoded)
        recorder = TraceRecorder()
        mix_counts = [0] * _NUM_OPCODES

        pc = self.program.entry
        recorder.begin_run(pc, int(FlowKind.START), pc, 0)
        executed = 0
        halted = False

        read_u32, read_u16, read_u8 = mem.read_u32, mem.read_u16, mem.read_u8
        write_u32, write_u16, write_u8 = (
            mem.write_u32, mem.write_u16, mem.write_u8
        )
        record_data = recorder.record_data
        begin_run = recorder.begin_run
        run_count = recorder.run_count

        while True:
            idx = (pc - text_base) >> 2
            if not 0 <= idx < text_len or pc & 3:
                raise CPUError(f"PC {pc:#010x} outside text segment")
            if executed >= max_instructions:
                raise CPUError(
                    f"runaway program: exceeded {max_instructions} "
                    "instructions"
                )
            op, rd, rs1, rs2, imm = decoded[idx]
            executed += 1
            run_count[-1] += 1
            mix_counts[op] += 1
            next_pc = pc + INSTRUCTION_BYTES

            if op == _ADDI:
                if rd:
                    regs[rd] = (regs[rs1] + imm) & _M32
            elif op == _LW or op == _LH or op == _LHU or op == _LB \
                    or op == _LBU:
                base = regs[rs1]
                record_data(base, imm, False)
                addr = (base + imm) & _M32
                if op == _LW:
                    value = read_u32(addr)
                elif op == _LHU:
                    value = read_u16(addr)
                elif op == _LH:
                    value = read_u16(addr)
                    if value & 0x8000:
                        value -= 0x10000
                        value &= _M32
                elif op == _LBU:
                    value = read_u8(addr)
                else:  # lb
                    value = read_u8(addr)
                    if value & 0x80:
                        value -= 0x100
                        value &= _M32
                if rd:
                    regs[rd] = value
            elif op == _SW or op == _SH or op == _SB:
                base = regs[rs1]
                record_data(base, imm, True)
                addr = (base + imm) & _M32
                if op == _SW:
                    write_u32(addr, regs[rs2])
                elif op == _SH:
                    write_u16(addr, regs[rs2])
                else:
                    write_u8(addr, regs[rs2])
            elif op == _ADD:
                if rd:
                    regs[rd] = (regs[rs1] + regs[rs2]) & _M32
            elif op == _SUB:
                if rd:
                    regs[rd] = (regs[rs1] - regs[rs2]) & _M32
            elif op == _BEQ or op == _BNE or op == _BLT or op == _BGE \
                    or op == _BLTU or op == _BGEU:
                a, b = regs[rs1], regs[rs2]
                if op == _BEQ:
                    taken = a == b
                elif op == _BNE:
                    taken = a != b
                elif op == _BLTU:
                    taken = a < b
                elif op == _BGEU:
                    taken = a >= b
                elif op == _BLT:
                    taken = _signed(a) < _signed(b)
                else:
                    taken = _signed(a) >= _signed(b)
                if taken:
                    next_pc = pc + imm
                    begin_run(next_pc, int(FlowKind.BRANCH), pc, imm)
            elif op == _AND:
                if rd:
                    regs[rd] = regs[rs1] & regs[rs2]
            elif op == _OR:
                if rd:
                    regs[rd] = regs[rs1] | regs[rs2]
            elif op == _XOR:
                if rd:
                    regs[rd] = regs[rs1] ^ regs[rs2]
            elif op == _SLL:
                if rd:
                    regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _M32
            elif op == _SRL:
                if rd:
                    regs[rd] = regs[rs1] >> (regs[rs2] & 31)
            elif op == _SRA:
                if rd:
                    regs[rd] = (_signed(regs[rs1]) >> (regs[rs2] & 31)) & _M32
            elif op == _SLT:
                if rd:
                    regs[rd] = int(_signed(regs[rs1]) < _signed(regs[rs2]))
            elif op == _SLTU:
                if rd:
                    regs[rd] = int(regs[rs1] < regs[rs2])
            elif op == _ANDI:
                if rd:
                    regs[rd] = regs[rs1] & (imm & _M32)
            elif op == _ORI:
                if rd:
                    regs[rd] = regs[rs1] | (imm & _M32)
            elif op == _XORI:
                if rd:
                    regs[rd] = regs[rs1] ^ (imm & _M32)
            elif op == _SLLI:
                if rd:
                    regs[rd] = (regs[rs1] << (imm & 31)) & _M32
            elif op == _SRLI:
                if rd:
                    regs[rd] = regs[rs1] >> (imm & 31)
            elif op == _SRAI:
                if rd:
                    regs[rd] = (_signed(regs[rs1]) >> (imm & 31)) & _M32
            elif op == _SLTI:
                if rd:
                    regs[rd] = int(_signed(regs[rs1]) < imm)
            elif op == _SLTIU:
                if rd:
                    regs[rd] = int(regs[rs1] < (imm & _M32))
            elif op == _MUL:
                if rd:
                    regs[rd] = (regs[rs1] * regs[rs2]) & _M32
            elif op == _MULH:
                if rd:
                    regs[rd] = (
                        (_signed(regs[rs1]) * _signed(regs[rs2])) >> 32
                    ) & _M32
            elif op == _MULHU:
                if rd:
                    regs[rd] = ((regs[rs1] * regs[rs2]) >> 32) & _M32
            elif op == _DIV:
                if rd:
                    a, b = _signed(regs[rs1]), _signed(regs[rs2])
                    if b == 0:
                        q = -1
                    else:
                        q = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            q = -q
                    regs[rd] = q & _M32
            elif op == _DIVU:
                if rd:
                    b = regs[rs2]
                    regs[rd] = _M32 if b == 0 else regs[rs1] // b
            elif op == _REM:
                if rd:
                    a, b = _signed(regs[rs1]), _signed(regs[rs2])
                    if b == 0:
                        r = a
                    else:
                        r = abs(a) % abs(b)
                        if a < 0:
                            r = -r
                    regs[rd] = r & _M32
            elif op == _REMU:
                if rd:
                    b = regs[rs2]
                    regs[rd] = regs[rs1] if b == 0 else regs[rs1] % b
            elif op == _LUI:
                if rd:
                    regs[rd] = (imm << 16) & _M32
            elif op == _JAL:
                if rd:
                    regs[rd] = next_pc
                next_pc = pc + imm
                begin_run(next_pc, int(FlowKind.BRANCH), pc, imm)
            elif op == _JALR:
                base = regs[rs1]
                if rd:
                    regs[rd] = next_pc
                next_pc = (base + imm) & _M32 & ~3
                begin_run(next_pc, int(FlowKind.INDIRECT), base, imm)
            elif op == _HALT:
                halted = True
                break
            else:  # pragma: no cover - decode guarantees coverage
                raise CPUError(f"unimplemented opcode {op!r}")
            pc = next_pc

        mix = {
            OPCODE_BY_NUMBER[op].mnemonic: count
            for op, count in enumerate(mix_counts)
            if count and op in OPCODE_BY_NUMBER
        }
        trace = recorder.finish(self.program.name, executed, mix)
        return ExecutionResult(
            trace=trace,
            registers=list(regs),
            memory=mem,
            instructions=executed,
            halted=halted,
        )


def run_program(
    program: Program,
    max_instructions: int = 20_000_000,
    memory_bytes: Optional[int] = None,
    engine: str = "fast",
) -> ExecutionResult:
    """Assemble-and-go helper: execute ``program`` on a fresh CPU."""
    cpu = CPU(
        program,
        memory_bytes=memory_bytes if memory_bytes is not None
        else MEMORY_BYTES,
    )
    return cpu.run(max_instructions=max_instructions, engine=engine)
