"""Block-compiling fast engine for the FRL-32 ISS.

The interpreter in :mod:`repro.sim.cpu` dispatches every instruction
through a predecoded operand tuple — robust, but the per-instruction
Python overhead (dispatch, per-instruction trace bookkeeping, mix
counting) dominates execution time.  This module compiles each *block*
of the program to a specialized Python closure instead:

* A block starts at any jump-target index and extends through straight
  -line code (including not-taken conditional branches) up to the
  first unconditional control transfer (``jal``/``jalr``/``halt``),
  the end of the text segment, or a length cap.
* Registers used by the block are promoted to Python locals on entry
  and written back at every exit.
* A conditional branch whose taken-target is the block entry is
  compiled into a native ``while`` loop ("self-loop"), so hot inner
  loops execute with no per-iteration dispatch at all.
* Trace bookkeeping is batched: instruction counts and the mix are
  reconstructed from per-exit/per-loop execution counters after the
  run, and the flow-trace records of a self-loop's identical taken
  back-edges are recorded as a single run-length segment expanded into
  the numpy arrays at the end (run records of non-loop transfers are
  ordinary list appends of compile-time constants).

The engine is bit-exact with the interpreter: identical registers,
memory, :class:`~repro.sim.trace.ExecutionTrace` (data + flow + mix)
and instruction counts (``tests/test_fastpath_differential.py`` proves
it on every bundled workload and on random programs).  The only
divergence is *when* a runaway program is detected: the interpreter
raises exactly at ``max_instructions``, the fast engine at the next
block boundary after crossing it.

Compiled blocks are cached per :class:`~repro.isa.program.Program`
instance, so repeated runs (fresh CPUs on the same program) skip
compilation.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.isa.instructions import INSTRUCTION_BYTES, OPCODES, Format
from repro.isa.program import Program
from repro.sim.memory import Memory
from repro.sim.trace import (
    DataTrace,
    ExecutionTrace,
    FlowKind,
    FlowTrace,
)

_M32 = 0xFFFFFFFF
_SIGN = 0x80000000

#: Cap on instructions scanned into one block.
_MAX_BLOCK = 256
#: Cap on self-loop iterations executed inside one block call (the
#: driver re-enters the block afterwards, bounding the work between
#: runaway-budget checks).
_LOOP_CAP = 1 << 20

#: Exit table sentinels for the "next block" field.
_NEXT_HALT = -1
_NEXT_DYNAMIC = -2

_BRANCH_COND = {
    "beq": "{a} == {b}",
    "bne": "{a} != {b}",
    "bltu": "{a} < {b}",
    "bgeu": "{a} >= {b}",
    "blt": "({a} ^ 2147483648) < ({b} ^ 2147483648)",
    "bge": "({a} ^ 2147483648) >= ({b} ^ 2147483648)",
}

_CONTROL = frozenset(_BRANCH_COND) | {"jal", "jalr", "halt"}


def _sdiv(a: int, b: int) -> int:
    sa = a - 0x1_0000_0000 if a & _SIGN else a
    sb = b - 0x1_0000_0000 if b & _SIGN else b
    if sb == 0:
        return _M32
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & _M32


def _srem(a: int, b: int) -> int:
    sa = a - 0x1_0000_0000 if a & _SIGN else a
    sb = b - 0x1_0000_0000 if b & _SIGN else b
    if sb == 0:
        return sa & _M32
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & _M32


def _mulh(a: int, b: int) -> int:
    sa = a - 0x1_0000_0000 if a & _SIGN else a
    sb = b - 0x1_0000_0000 if b & _SIGN else b
    return ((sa * sb) >> 32) & _M32


class _FastRecorder:
    """Trace builder with O(1) bulk recording of repeated runs."""

    def __init__(self, entry_pc: int):
        self.db: List[int] = []
        self.dd: List[int] = []
        self.ds: List[bool] = []
        self.rs: List[int] = [entry_pc]
        self.rc: List[int] = [0]
        self.rk: List[int] = [int(FlowKind.START)]
        self.rb: List[int] = [entry_pc]
        self.rd: List[int] = [0]
        # (position, n, start, count, kind, base, disp) segments; the
        # n identical runs are spliced in at `position` on finish.
        self.reps: List[Tuple[int, int, int, int, int, int, int]] = []

    def rep(
        self, n: int, start: int, count: int, kind: int,
        base: int, disp: int,
    ) -> None:
        self.reps.append((len(self.rs), n, start, count, kind, base, disp))

    def _column(self, plain: List[int], col: int, dtype) -> np.ndarray:
        parts = []
        prev = 0
        for rep in self.reps:
            pos, n = rep[0], rep[1]
            if pos > prev:
                parts.append(np.asarray(plain[prev:pos], dtype=dtype))
            parts.append(np.full(n, rep[2 + col], dtype=dtype))
            prev = pos
        parts.append(np.asarray(plain[prev:], dtype=dtype))
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def finish(self, program_name: str, instructions: int, mix) -> (
            ExecutionTrace):
        data = DataTrace.from_lists(self.db, self.dd, self.ds)
        if not self.reps:
            flow = FlowTrace.from_lists(
                self.rs, self.rc, self.rk, self.rb, self.rd
            )
        else:
            flow = FlowTrace(
                start=self._column(self.rs, 0, np.uint32),
                count=self._column(self.rc, 1, np.uint32),
                kind=self._column(self.rk, 2, np.uint8),
                base=self._column(self.rb, 3, np.uint32),
                disp=self._column(self.rd, 4, np.int32),
            )
        return ExecutionTrace(
            program_name=program_name,
            data=data,
            flow=flow,
            instructions=instructions,
            mix=dict(mix),
        )


class _CompiledProgram:
    """Per-program compilation state (block makers, exit/loop tables)."""

    def __init__(self, program: Program):
        self.program = program
        self.text_base = program.text.base
        insns = program.instructions()
        self.text_len = len(insns)
        self.decoded = [
            (i.mnemonic, i.rd, i.rs1, i.rs2, i.imm) for i in insns
        ]
        self.mnemonics = [d[0] for d in self.decoded]
        # entry idx -> maker(env) producing the block closure.
        self.makers: Dict[int, Callable] = {}
        # exit id -> (n_path_insns, next_idx | _NEXT_*, coverage tuple).
        self.exits: List[Tuple[int, int, Tuple[int, ...]]] = []
        # loop id -> loop body coverage tuple.
        self.loops: List[Tuple[int, ...]] = []


_COMPILED: Dict[int, Tuple[weakref.ref, _CompiledProgram]] = {}


def _compiled(program: Program) -> _CompiledProgram:
    key = id(program)
    ent = _COMPILED.get(key)
    if ent is not None and ent[0]() is program:
        return ent[1]
    cp = _CompiledProgram(program)

    def _drop(_ref, _key=key, _cache=_COMPILED):
        try:
            _cache.pop(_key, None)
        except TypeError:  # pragma: no cover - interpreter shutdown
            pass

    _COMPILED[key] = (weakref.ref(program, _drop), cp)
    return cp


# ----------------------------------------------------------------------
# block compilation
# ----------------------------------------------------------------------

class _Emitter:
    def __init__(self):
        self.lines: List[str] = ["        pass"]

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("        " + "    " * indent + text)


def _reg(n: int) -> str:
    return f"r{n}" if n else "0"


def _compile_block(cp: _CompiledProgram, entry: int) -> Callable:
    """Compile the block starting at instruction index ``entry``."""
    decoded = cp.decoded
    text_base = cp.text_base
    text_len = cp.text_len

    # -- scan the block -------------------------------------------------
    idxs: List[int] = []
    loop_pos = -1  # position (offset in idxs) of the self-loop back-edge
    i = entry
    while i < text_len and len(idxs) < _MAX_BLOCK:
        m = decoded[i][0]
        idxs.append(i)
        if m in ("jal", "jalr", "halt"):
            break
        if m in _BRANCH_COND and loop_pos < 0:
            imm = decoded[i][4]
            if i + imm // INSTRUCTION_BYTES == entry:
                loop_pos = len(idxs) - 1
        i += 1

    # -- register promotion ---------------------------------------------
    used: set = set()
    written: set = set()
    for i in idxs:
        m, rd, rs1, rs2, imm = decoded[i]
        fmt = OPCODES[m].format
        if fmt in (Format.R, Format.BRANCH):
            used.add(rs1)
            used.add(rs2)
        elif fmt in (Format.I, Format.LOAD, Format.JR):
            used.add(rs1)
        elif fmt is Format.STORE:
            used.add(rs1)
            used.add(rs2)
        if fmt in (Format.R, Format.I, Format.LOAD, Format.U, Format.J,
                   Format.JR) and rd:
            used.add(rd)
            written.add(rd)
    used.discard(0)
    written.discard(0)

    e = _Emitter()
    for n in sorted(used):
        e.emit(0, f"r{n} = regs[{n}]")

    wb = "; ".join(f"regs[{n}] = r{n}" for n in sorted(written)) or "pass"

    exits = cp.exits
    loop_body_len = loop_pos + 1 if loop_pos >= 0 else 0
    loop_id = -1
    if loop_pos >= 0:
        loop_id = len(cp.loops)
        cp.loops.append(tuple(idxs[: loop_pos + 1]))

    # back-edge constants (for loop flush code)
    if loop_pos >= 0:
        bi = idxs[loop_pos]
        b_pc = text_base + 4 * bi
        b_imm = decoded[bi][4]
        sp = b_pc + b_imm  # == entry pc
        bk = int(FlowKind.BRANCH)
        flush_taken = (
            f"rc[-1] += {loop_body_len}\n"
            f"if m > 1: rep(m - 1, {sp}, {loop_body_len}, {bk}, "
            f"{b_pc}, {b_imm})\n"
            f"rsa({sp}); rca({{cnt}}); rka({bk}); rba({b_pc}); "
            f"rda({b_imm})"
        )

    def loop_flush(ind: int, partial: int) -> None:
        """Emit run-record flush for exiting the loop mid-pass.

        ``partial`` = instructions executed in the current (unfinished)
        pass; the m completed passes are recorded in bulk.
        """
        e.emit(ind, "if m:")
        for ln in flush_taken.format(cnt=partial).split("\n"):
            e.emit(ind + 1, ln)
        e.emit(ind, "else:")
        e.emit(ind + 1, f"rc[-1] += {partial}")
        e.emit(ind, f"lc[{loop_id}] += m")
        e.emit(ind, f"st[0] += m * {loop_body_len}")

    def new_exit(n_insns: int, next_idx: int,
                 coverage: Tuple[int, ...]) -> int:
        exits.append((n_insns, next_idx, coverage))
        return len(exits) - 1

    # -- emit instructions ----------------------------------------------
    in_loop = loop_pos >= 0
    if in_loop:
        e.emit(0, "m = 0")
        e.emit(0, "while True:")
    ind = 1 if in_loop else 0
    c = 0  # run-count contribution accumulated since the last boundary

    for pos, i in enumerate(idxs):
        if in_loop and pos == loop_pos + 1:
            # we are past the back-edge: close the loop construct
            e.emit(1, "break")
            in_loop = False
            ind = 0
            e.emit(0, f"rc[-1] += {loop_body_len}")
            e.emit(0, "if m:")
            for ln in flush_taken.format(cnt=loop_body_len).split("\n")[1:]:
                e.emit(1, ln)
            e.emit(0, f"lc[{loop_id}] += m")
            e.emit(0, f"st[0] += m * {loop_body_len}")
            c = 0

        m, rd, rs1, rs2, imm = decoded[i]
        pc = text_base + 4 * i
        next_pc = pc + INSTRUCTION_BYTES
        a, b = _reg(rs1), _reg(rs2)
        d = _reg(rd)

        if m == "addi":
            if rd:
                e.emit(ind, f"{d} = ({a} + {imm}) & 4294967295")
        elif m in ("lw", "lh", "lhu", "lb", "lbu"):
            e.emit(ind, f"_b = {a}")
            e.emit(ind, f"dba(_b); dda({imm}); dsa(False)")
            e.emit(ind, f"_a = (_b + {imm}) & 4294967295")
            if m == "lw":
                rhs = "r_u32(_a)"
            elif m == "lhu":
                rhs = "r_u16(_a)"
            elif m == "lbu":
                rhs = "r_u8(_a)"
            elif m == "lh":
                rhs = None
            else:
                rhs = None
            if rhs is not None:
                e.emit(ind, f"{d} = {rhs}" if rd else f"{rhs}")
            elif m == "lh":
                e.emit(ind, "_v = r_u16(_a)")
                if rd:
                    e.emit(
                        ind,
                        f"{d} = (_v - 65536) & 4294967295 "
                        "if _v & 32768 else _v",
                    )
            else:  # lb
                e.emit(ind, "_v = r_u8(_a)")
                if rd:
                    e.emit(
                        ind,
                        f"{d} = (_v - 256) & 4294967295 "
                        "if _v & 128 else _v",
                    )
        elif m in ("sw", "sh", "sb"):
            e.emit(ind, f"_b = {a}")
            e.emit(ind, f"dba(_b); dda({imm}); dsa(True)")
            fn = {"sw": "w_u32", "sh": "w_u16", "sb": "w_u8"}[m]
            e.emit(ind, f"{fn}((_b + {imm}) & 4294967295, {b})")
        elif m == "add":
            if rd:
                e.emit(ind, f"{d} = ({a} + {b}) & 4294967295")
        elif m == "sub":
            if rd:
                e.emit(ind, f"{d} = ({a} - {b}) & 4294967295")
        elif m in _BRANCH_COND:
            cond = _BRANCH_COND[m].format(a=a, b=b)
            t_idx = i + imm // INSTRUCTION_BYTES
            e.emit(ind, f"if {cond}:")
            if not 0 <= t_idx < text_len:
                e.emit(
                    ind + 1,
                    f'raise CPUError("PC {pc + imm:#010x} '
                    'outside text segment")',
                )
            elif in_loop and pos == loop_pos:
                # the self-loop back-edge
                e.emit(ind + 1, "m += 1")
                e.emit(ind + 1, "if m < CAP:")
                e.emit(ind + 2, "continue")
                for ln in flush_taken.format(cnt=0).split("\n"):
                    e.emit(ind + 1, ln)
                e.emit(ind + 1, f"lc[{loop_id}] += m")
                e.emit(ind + 1, f"st[0] += m * {loop_body_len}")
                e.emit(ind + 1, wb)
                eid = new_exit(0, entry, ())
                e.emit(ind + 1, f"return {eid}")
            else:
                if in_loop:
                    loop_flush(ind + 1, c + 1)
                else:
                    e.emit(ind + 1, f"rc[-1] += {c + 1}")
                e.emit(
                    ind + 1,
                    f"rsa({pc + imm}); rca(0); "
                    f"rka({int(FlowKind.BRANCH)}); rba({pc}); rda({imm})",
                )
                e.emit(ind + 1, wb)
                if in_loop:
                    coverage = tuple(idxs[: pos + 1])
                else:
                    coverage = _coverage(idxs, loop_pos, pos)
                eid = new_exit(len(coverage), t_idx, coverage)
                e.emit(ind + 1, f"return {eid}")
        elif m == "and":
            if rd:
                e.emit(ind, f"{d} = {a} & {b}")
        elif m == "or":
            if rd:
                e.emit(ind, f"{d} = {a} | {b}")
        elif m == "xor":
            if rd:
                e.emit(ind, f"{d} = {a} ^ {b}")
        elif m == "sll":
            if rd:
                e.emit(ind, f"{d} = ({a} << ({b} & 31)) & 4294967295")
        elif m == "srl":
            if rd:
                e.emit(ind, f"{d} = {a} >> ({b} & 31)")
        elif m == "sra":
            if rd:
                e.emit(ind, f"_a = {a}; _s = {b} & 31")
                e.emit(
                    ind,
                    f"{d} = ((_a - 4294967296 if _a & 2147483648 "
                    "else _a) >> _s) & 4294967295",
                )
        elif m == "slt":
            if rd:
                e.emit(
                    ind,
                    f"{d} = 1 if ({a} ^ 2147483648) < "
                    f"({b} ^ 2147483648) else 0",
                )
        elif m == "sltu":
            if rd:
                e.emit(ind, f"{d} = 1 if {a} < {b} else 0")
        elif m == "andi":
            if rd:
                e.emit(ind, f"{d} = {a} & {imm & _M32}")
        elif m == "ori":
            if rd:
                e.emit(ind, f"{d} = {a} | {imm & _M32}")
        elif m == "xori":
            if rd:
                e.emit(ind, f"{d} = {a} ^ {imm & _M32}")
        elif m == "slli":
            if rd:
                e.emit(ind, f"{d} = ({a} << {imm & 31}) & 4294967295")
        elif m == "srli":
            if rd:
                e.emit(ind, f"{d} = {a} >> {imm & 31}")
        elif m == "srai":
            if rd:
                e.emit(ind, f"_a = {a}")
                e.emit(
                    ind,
                    f"{d} = ((_a - 4294967296 if _a & 2147483648 "
                    f"else _a) >> {imm & 31}) & 4294967295",
                )
        elif m == "slti":
            if rd:
                e.emit(
                    ind,
                    f"{d} = 1 if ({a} ^ 2147483648) < "
                    f"{(imm & _M32) ^ _SIGN} else 0",
                )
        elif m == "sltiu":
            if rd:
                e.emit(ind, f"{d} = 1 if {a} < {imm & _M32} else 0")
        elif m == "mul":
            if rd:
                e.emit(ind, f"{d} = ({a} * {b}) & 4294967295")
        elif m == "mulh":
            if rd:
                e.emit(ind, f"{d} = mulh({a}, {b})")
        elif m == "mulhu":
            if rd:
                e.emit(ind, f"{d} = (({a} * {b}) >> 32) & 4294967295")
        elif m == "div":
            if rd:
                e.emit(ind, f"{d} = sdiv({a}, {b})")
        elif m == "divu":
            if rd:
                e.emit(ind, f"_b = {b}")
                e.emit(
                    ind,
                    f"{d} = 4294967295 if _b == 0 else {a} // _b",
                )
        elif m == "rem":
            if rd:
                e.emit(ind, f"{d} = srem({a}, {b})")
        elif m == "remu":
            if rd:
                e.emit(ind, f"_b = {b}")
                e.emit(ind, f"{d} = {a} if _b == 0 else {a} % _b")
        elif m == "lui":
            if rd:
                e.emit(ind, f"{d} = {(imm << 16) & _M32}")
        elif m == "jal":
            if rd:
                e.emit(ind, f"{d} = {next_pc}")
            t_idx = i + imm // INSTRUCTION_BYTES
            if in_loop:
                loop_flush(ind, c + 1)
            else:
                e.emit(ind, f"rc[-1] += {c + 1}")
            if not 0 <= t_idx < text_len:
                e.emit(
                    ind,
                    f'raise CPUError("PC {pc + imm:#010x} '
                    'outside text segment")',
                )
            else:
                e.emit(
                    ind,
                    f"rsa({pc + imm}); rca(0); "
                    f"rka({int(FlowKind.BRANCH)}); rba({pc}); rda({imm})",
                )
                e.emit(ind, wb)
                coverage = _coverage(idxs, loop_pos, pos)
                eid = new_exit(len(coverage), t_idx, coverage)
                e.emit(ind, f"return {eid}")
        elif m == "jalr":
            e.emit(ind, f"_t = {a}")
            if rd:
                e.emit(ind, f"{d} = {next_pc}")
            e.emit(ind, f"_n = (_t + {imm}) & 4294967292")
            if in_loop:
                loop_flush(ind, c + 1)
            else:
                e.emit(ind, f"rc[-1] += {c + 1}")
            e.emit(
                ind,
                f"rsa(_n); rca(0); rka({int(FlowKind.INDIRECT)}); "
                f"rba(_t); rda({imm})",
            )
            e.emit(ind, "st[1] = _n")
            e.emit(ind, wb)
            coverage = _coverage(idxs, loop_pos, pos)
            eid = new_exit(len(coverage), _NEXT_DYNAMIC, coverage)
            e.emit(ind, f"return {eid}")
        elif m == "halt":
            if in_loop:
                loop_flush(ind, c + 1)
            else:
                e.emit(ind, f"rc[-1] += {c + 1}")
            e.emit(ind, wb)
            coverage = _coverage(idxs, loop_pos, pos)
            eid = new_exit(len(coverage), _NEXT_HALT, coverage)
            e.emit(ind, f"return {eid}")
        else:  # pragma: no cover - decode guarantees coverage
            raise RuntimeError(f"unimplemented instruction {m!r}")
        c += 1

    last = idxs[-1]
    last_m = decoded[last][0]
    if last_m not in ("jal", "jalr", "halt"):
        # The block fell off its end without an unconditional transfer:
        # either the text segment ends here (executing past it is a
        # fault, like the interpreter's PC bounds check) or the block
        # was capped and execution continues in the next block with
        # the current run left open.
        if in_loop and loop_pos == len(idxs) - 1:
            # back-edge is the final instruction: not-taken falls out
            e.emit(1, "break")
            e.emit(0, f"rc[-1] += {loop_body_len}")
            e.emit(0, "if m:")
            for ln in flush_taken.format(cnt=loop_body_len).split("\n")[1:]:
                e.emit(1, ln)
            e.emit(0, f"lc[{loop_id}] += m")
            e.emit(0, f"st[0] += m * {loop_body_len}")
            c = 0
        cont_idx = last + 1
        if cont_idx >= text_len:
            e.emit(0, f"rc[-1] += {c}")
            e.emit(0, wb)
            e.emit(
                0,
                f'raise CPUError("PC {text_base + 4 * cont_idx:#010x} '
                'outside text segment")',
            )
        else:
            e.emit(0, f"rc[-1] += {c}")
            e.emit(0, wb)
            coverage = _coverage(idxs, loop_pos, len(idxs) - 1)
            eid = new_exit(len(coverage), cont_idx, coverage)
            e.emit(0, f"return {eid}")

    body = "\n".join(e.lines)
    src = (
        "def _maker(env):\n"
        "    regs = env['regs']\n"
        "    dba = env['dba']; dda = env['dda']; dsa = env['dsa']\n"
        "    rc = env['rc']; rsa = env['rsa']; rca = env['rca']\n"
        "    rka = env['rka']; rba = env['rba']; rda = env['rda']\n"
        "    rep = env['rep']; lc = env['lc']; st = env['st']\n"
        "    CAP = env['cap']\n"
        "    r_u32 = env['r_u32']; r_u16 = env['r_u16']\n"
        "    r_u8 = env['r_u8']\n"
        "    w_u32 = env['w_u32']; w_u16 = env['w_u16']\n"
        "    w_u8 = env['w_u8']\n"
        "    sdiv = env['sdiv']; srem = env['srem']; mulh = env['mulh']\n"
        "    CPUError = env['CPUError']\n"
        "    def _block():\n"
        f"{body}\n"
        "    return _block\n"
    )
    namespace: dict = {}
    exec(compile(src, f"<block@{entry}>", "exec"), namespace)
    maker = namespace["_maker"]
    cp.makers[entry] = maker
    return maker


def _coverage(idxs: List[int], loop_pos: int, upto: int) -> Tuple[int, ...]:
    """Instruction indices executed along the path entry..position.

    For blocks with a self-loop, paths that reach past the back-edge
    cover the loop body exactly once (the final pass); extra passes
    are accounted separately via the loop counter.
    """
    return tuple(idxs[: upto + 1])


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------

def run_fast(
    program: Program,
    memory: Memory,
    registers: List[int],
    max_instructions: int,
) -> Tuple[ExecutionTrace, int, bool]:
    """Execute ``program`` with the block-compiling engine.

    Mutates ``memory`` and ``registers`` exactly like the interpreter
    loop and returns ``(trace, instructions, halted)``.
    """
    from repro.sim.cpu import CPUError  # local import avoids a cycle

    cp = _compiled(program)
    text_base = cp.text_base
    text_len = cp.text_len

    entry_pc = program.entry
    idx = (entry_pc - text_base) >> 2
    if not 0 <= idx < text_len or entry_pc & 3:
        raise CPUError(f"PC {entry_pc:#010x} outside text segment")

    rec = _FastRecorder(entry_pc)
    st = [0, 0]
    lc = [0] * len(cp.loops)
    ec = [0] * len(cp.exits)
    env = {
        "regs": registers,
        "dba": rec.db.append,
        "dda": rec.dd.append,
        "dsa": rec.ds.append,
        "rc": rec.rc,
        "rsa": rec.rs.append,
        "rca": rec.rc.append,
        "rka": rec.rk.append,
        "rba": rec.rb.append,
        "rda": rec.rd.append,
        "rep": rec.rep,
        "lc": lc,
        "st": st,
        "cap": min(_LOOP_CAP, max_instructions + 1),
        "r_u32": memory.read_u32,
        "r_u16": memory.read_u16,
        "r_u8": memory.read_u8,
        "w_u32": memory.write_u32,
        "w_u16": memory.write_u16,
        "w_u8": memory.write_u8,
        "sdiv": _sdiv,
        "srem": _srem,
        "mulh": _mulh,
        "CPUError": CPUError,
    }
    bound: Dict[int, Callable] = {}
    exits = cp.exits
    executed = 0
    halted = False

    while True:
        fn = bound.get(idx)
        if fn is None:
            maker = cp.makers.get(idx) or _compile_block(cp, idx)
            # Compilation may have appended loops/exits: grow the
            # per-run counters in place (closures hold references).
            if len(lc) < len(cp.loops):
                lc.extend([0] * (len(cp.loops) - len(lc)))
            if len(ec) < len(exits):
                ec.extend([0] * (len(exits) - len(ec)))
            fn = maker(env)
            bound[idx] = fn
        eid = fn()
        ec[eid] += 1
        info = exits[eid]
        executed += info[0]
        if executed + st[0] > max_instructions:
            raise CPUError(
                f"runaway program: exceeded {max_instructions} "
                "instructions"
            )
        nxt = info[1]
        if nxt >= 0:
            idx = nxt
        elif nxt == _NEXT_HALT:
            halted = True
            break
        else:  # dynamic (jalr)
            target = st[1]
            idx = (target - text_base) >> 2
            if not 0 <= idx < text_len or (target - text_base) & 3:
                raise CPUError(f"PC {target:#010x} outside text segment")

    # -- reconstruct visits, mix and the instruction count --------------
    visits = [0] * text_len
    for eid, cnt in enumerate(ec):
        if cnt:
            for i in exits[eid][2]:
                visits[i] += cnt
    for lid, cnt in enumerate(lc):
        if cnt:
            for i in cp.loops[lid]:
                visits[i] += cnt
    mix: Dict[str, int] = {}
    mnemonics = cp.mnemonics
    mix_get = mix.get
    for i, v in enumerate(visits):
        if v:
            m = mnemonics[i]
            mix[m] = mix_get(m, 0) + v
    instructions = sum(visits)
    assert instructions == executed + st[0], (
        "fast engine bookkeeping out of sync"
    )
    trace = rec.finish(program.name, instructions, mix)
    return trace, instructions, halted
