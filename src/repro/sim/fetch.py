"""Derive the I-cache access stream from a flow trace.

The FR-V fetches an aligned 8-byte packet (two 4-byte instructions) per
cycle; each packet fetch is one I-cache access.  Given the run-length
encoded :class:`~repro.sim.trace.FlowTrace`, this module produces one
record per packet access together with the address-generation inputs of
the paper's Figure 2 input mux:

========== =================================== =========================
kind       when                                MAB inputs (base, disp)
========== =================================== =========================
START      first fetch of the program          (entry, 0) — cold
SEQ        fall-through to the next packet     (previous packet, +stride)
BRANCH     taken branch / direct ``jal``       (branch PC, offset)
INDIRECT   ``jalr`` (returns, indirect calls)  (register value, imm)
========== =================================== =========================

``INDIRECT`` covers the paper's "address stored in a link register"
input; ``SEQ`` is the inter- or intra-cache-line sequential flow whose
stride equals the fetch packet size.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sim.trace import FlowKind, FlowTrace

#: FR-V fetch packet size in bytes (two 32-bit instructions per cycle).
DEFAULT_FETCH_BYTES = 8


class FetchKind(enum.IntEnum):
    """How a fetch-packet access was triggered."""

    START = 0
    SEQ = 1
    BRANCH = 2
    INDIRECT = 3


@dataclass(frozen=True)
class FetchStream:
    """Per-I-cache-access record arrays.

    Attributes
    ----------
    addr:
        uint32 packet addresses (aligned to ``packet_bytes``).
    kind:
        uint8 :class:`FetchKind` values.
    base, disp:
        Address-generation inputs feeding the MAB for this access.
        ``base + disp`` always lands inside the packet at ``addr``.
    packet_bytes:
        Fetch packet size used to derive the stream.
    """

    addr: np.ndarray
    kind: np.ndarray
    base: np.ndarray
    disp: np.ndarray
    packet_bytes: int

    def __len__(self) -> int:
        return len(self.addr)

    @property
    def num_sequential(self) -> int:
        return int((self.kind == FetchKind.SEQ).sum())

    @property
    def num_control_flow(self) -> int:
        return int(
            ((self.kind == FetchKind.BRANCH)
             | (self.kind == FetchKind.INDIRECT)).sum()
        )


_FLOW_TO_FETCH = {
    int(FlowKind.START): int(FetchKind.START),
    int(FlowKind.BRANCH): int(FetchKind.BRANCH),
    int(FlowKind.INDIRECT): int(FetchKind.INDIRECT),
}


def fetch_stream(
    flow: FlowTrace, packet_bytes: int = DEFAULT_FETCH_BYTES
) -> FetchStream:
    """Expand a run-length flow trace into per-packet I-cache accesses.

    For every run the first packet access carries the run's entry kind
    and address-generation inputs; subsequent packets of the run are
    ``SEQ`` accesses with base = previous packet address and
    disp = ``packet_bytes`` (the PC stride of Figure 2).
    """
    if packet_bytes & (packet_bytes - 1) or packet_bytes < 4:
        raise ValueError("packet_bytes must be a power of two >= 4")
    if len(flow) == 0:
        empty = np.empty(0, dtype=np.uint32)
        return FetchStream(
            addr=empty, kind=empty.astype(np.uint8),
            base=empty.copy(), disp=empty.astype(np.int32),
            packet_bytes=packet_bytes,
        )

    mask = ~np.uint32(packet_bytes - 1)
    start = flow.start.astype(np.uint32)
    # Address of the last instruction of each run.
    last = (start + 4 * (flow.count.astype(np.uint32) - 1)).astype(np.uint32)
    first_packet = start & mask
    last_packet = last & mask
    packets_per_run = (
        ((last_packet - first_packet) // packet_bytes) + 1
    ).astype(np.int64)

    total = int(packets_per_run.sum())
    run_id = np.repeat(np.arange(len(flow)), packets_per_run)
    offsets = np.concatenate(([0], np.cumsum(packets_per_run)[:-1]))
    pos_in_run = np.arange(total) - offsets[run_id]

    addr = (
        first_packet[run_id].astype(np.int64) + packet_bytes * pos_in_run
    ).astype(np.uint32)
    entry = pos_in_run == 0

    kind_map = np.vectorize(_FLOW_TO_FETCH.get, otypes=[np.uint8])
    entry_kinds = kind_map(flow.kind.astype(int))
    kind = np.where(
        entry, entry_kinds[run_id], np.uint8(int(FetchKind.SEQ))
    ).astype(np.uint8)
    base = np.where(
        entry, flow.base[run_id], (addr - packet_bytes).astype(np.uint32)
    ).astype(np.uint32)
    disp = np.where(
        entry, flow.disp[run_id], np.int32(packet_bytes)
    ).astype(np.int32)

    return FetchStream(
        addr=addr, kind=kind, base=base, disp=disp,
        packet_bytes=packet_bytes,
    )
