"""Execution profiling from flow traces.

Turns the run-length flow trace into the reports an ASIP designer
needs when sizing a MAB for an application: hot basic blocks, branch
target working-set size (what the I-MAB's index side must hold), and
data-region working sets (what the D-MAB must hold).  Exposed via
``repro profile <benchmark>`` on the command line.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.sim.trace import ExecutionTrace, FlowKind


@dataclass(frozen=True)
class BlockStats:
    """Execution statistics of one basic-block start address."""

    start: int
    entries: int
    instructions: int


@dataclass(frozen=True)
class Profile:
    """Aggregate profile of one execution trace."""

    program_name: str
    total_instructions: int
    hot_blocks: List[BlockStats]
    #: distinct taken-branch/indirect target count (I-MAB pressure)
    branch_targets: int
    #: distinct (tag, set) pairs per 10k data accesses (D-MAB pressure)
    data_working_set: float
    #: fraction of control transfers that are returns/indirect jumps
    indirect_fraction: float
    #: instruction mix, mnemonic -> fraction
    mix: Dict[str, float]

    def report(self, top: int = 10) -> str:
        """Render a human-readable profile report."""
        lines = [
            f"profile of {self.program_name}: "
            f"{self.total_instructions} instructions",
            f"  distinct branch targets : {self.branch_targets}",
            f"  indirect transfer share : {self.indirect_fraction:.1%}",
            f"  data (tag,set) pairs per 10k accesses: "
            f"{self.data_working_set:.1f}",
            f"  top {min(top, len(self.hot_blocks))} blocks "
            "(start, entries, instructions):",
        ]
        for block in self.hot_blocks[:top]:
            share = block.instructions / max(self.total_instructions, 1)
            lines.append(
                f"    {block.start:#010x}  x{block.entries:<8d} "
                f"{block.instructions:>9d}  ({share:.1%})"
            )
        top_mix = sorted(self.mix.items(), key=lambda kv: -kv[1])[:8]
        rendered = ", ".join(f"{m} {f:.1%}" for m, f in top_mix)
        lines.append(f"  instruction mix: {rendered}")
        return "\n".join(lines)


def profile_trace(
    trace: ExecutionTrace,
    line_bytes: int = 32,
    index_bits: int = 9,
    offset_bits: int = 5,
) -> Profile:
    """Build a :class:`Profile` from an execution trace."""
    flow = trace.flow
    starts = flow.start.tolist()
    counts = flow.count.tolist()
    kinds = flow.kind.tolist()

    per_block_entries: Counter = Counter()
    per_block_instructions: Counter = Counter()
    for start, count in zip(starts, counts):
        per_block_entries[start] += 1
        per_block_instructions[start] += count

    hot = sorted(
        (
            BlockStats(
                start=start,
                entries=per_block_entries[start],
                instructions=per_block_instructions[start],
            )
            for start in per_block_entries
        ),
        key=lambda b: -b.instructions,
    )

    transfers = [
        (start, kind) for start, kind in zip(starts, kinds)
        if kind != int(FlowKind.START)
    ]
    targets = {start for start, _ in transfers}
    indirect = sum(
        1 for _, kind in transfers if kind == int(FlowKind.INDIRECT)
    )
    indirect_fraction = indirect / len(transfers) if transfers else 0.0

    addr = trace.data.addr
    if len(addr):
        tag_set = (addr >> offset_bits).astype(np.uint32)
        working = len(np.unique(tag_set)) / len(addr) * 10_000
    else:
        working = 0.0

    total = trace.instructions or 1
    mix = {m: c / total for m, c in trace.mix.items()}

    return Profile(
        program_name=trace.program_name,
        total_instructions=trace.instructions,
        hot_blocks=hot,
        branch_targets=len(targets),
        data_working_set=working,
        indirect_fraction=indirect_fraction,
        mix=mix,
    )


def recommend_mab(
    profile: Profile,
    index_options: Tuple[int, ...] = (4, 8, 16, 32),
) -> Tuple[int, int]:
    """Heuristic MAB sizing from a profile.

    Picks the smallest index-side size comfortably above the observed
    working set (branch targets for I-caches enter via the same
    number).  This mirrors the designer workflow the paper implies;
    the exact sweep lives in ``examples/mab_design_space.py``.
    """
    need = max(profile.data_working_set / 100.0, 1.0)
    for ns in index_options:
        if ns >= need:
            return (2, ns)
    return (2, index_options[-1])
