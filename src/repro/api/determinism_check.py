"""Determinism self-check: ``evaluate_many`` with 1 vs N workers.

Run as ``python -m repro.api.determinism_check [--workers N]``.  Builds
a small cross-section of the design space (both cache sides, the
comparison baselines, a parametric way-memo point and a synthetic
workload), evaluates it serially and with a worker pool, and fails
(exit 1) unless the serialized result batches are byte-identical.
CI runs this against a warm trace cache; it also reproduces the
guarantee locally in a few seconds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api.evaluate import evaluate_many
from repro.api.registry import comparison_archs
from repro.api.spec import RunSpec


def check_specs() -> List[RunSpec]:
    """A small but representative batch (both sides, params, synthetic)."""
    specs = [
        RunSpec(cache=side, arch=arch, workload=benchmark)
        for side in ("dcache", "icache")
        for arch in comparison_archs(side)
        for benchmark in ("dct", "fft")
    ]
    specs.append(RunSpec(
        cache="dcache", arch="way-memo", workload="dct",
        params={"tag_entries": 4, "index_entries": 4},
    ))
    specs.append(RunSpec(
        cache="icache", arch="way-memo", workload="fft",
        params={"index_entries": 32},
    ))
    specs.append(RunSpec(
        cache="dcache", arch="way-memo-2x8",
        workload="synthetic:num_accesses=4096,seed=7",
    ))
    return specs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.determinism_check",
        description="evaluate_many 1-vs-N-worker byte-identity check",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="pool size for the parallel run (default: 4)",
    )
    args = parser.parse_args(argv)

    specs = check_specs()
    serial = evaluate_many(specs, workers=1, use_cache=False)
    pooled = evaluate_many(specs, workers=args.workers, use_cache=False)
    serial_doc = "\n".join(r.to_json() for r in serial)
    pooled_doc = "\n".join(r.to_json() for r in pooled)
    if serial_doc != pooled_doc:
        for i, (a, b) in enumerate(zip(serial, pooled)):
            if a.to_json() != b.to_json():
                print(
                    f"MISMATCH at spec {i}: {specs[i].key()}",
                    file=sys.stderr,
                )
        return 1
    print(
        f"evaluate_many determinism ok: {len(specs)} specs, "
        f"1 vs {args.workers} workers byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
