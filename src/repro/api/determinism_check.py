"""Determinism self-check: 1 vs N workers vs the HTTP service.

Run as ``python -m repro.api.determinism_check [--workers N]``.  Builds
a small cross-section of the design space (both cache sides, the
comparison baselines, a parametric way-memo point, a scaled benchmark
and a synthetic workload), evaluates it three ways —

* serially in this process (``workers=1``),
* over a worker pool (``workers=N``), and
* through an in-process instance of the HTTP batch service
  (``repro.service``, unless ``--no-service``), and
* with ``--faults``, through a service under injected worker
  crashes, hangs, and store faults (``repro.testing.faults``) —
  proving the failure path is as deterministic as the happy path —
* with ``--scenario``, additionally rendering a shipped scenario's
  finished table serially, pooled and via a live service —

and fails (exit 1) unless all serialized result batches are
byte-identical.  The service leg also renders a markdown report
remotely (``repro report --url`` semantics: a fingerprint-checked
deduplicated spec batch is evaluated server-side, this process
tabulates) and compares it byte-for-byte against the locally
generated document.  CI runs this against a warm trace cache; it
also reproduces the guarantee locally in a few seconds.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional, Tuple

from repro.api.evaluate import evaluate_many
from repro.api.registry import comparison_archs
from repro.api.spec import RunSpec


def check_specs() -> List[RunSpec]:
    """A small but representative batch (both sides, params, synthetic).

    The shared-workload groups are deliberately wide: each side's
    ``dct``/``fft`` group spans seven distinct architectures
    (batchable and stateful mixed) and carries three way-memo MAB
    geometries, so the replay engine's shared batch sweep, the
    stateful columnar derivations, and the one-column-split-per-sweep
    property are all exercised by every leg of this check.
    """
    specs = [
        RunSpec(cache=side, arch=arch, workload=benchmark)
        for side in ("dcache", "icache")
        for arch in comparison_archs(side)
        for benchmark in ("dct", "fft")
    ]
    specs.append(RunSpec(
        cache="dcache", arch="set-buffer", workload="dct",
    ))
    specs.append(RunSpec(
        cache="dcache", arch="way-memo", workload="dct",
        params={"tag_entries": 4, "index_entries": 4},
    ))
    specs.append(RunSpec(
        cache="dcache", arch="way-memo", workload="dct",
        params={"tag_entries": 8, "index_entries": 16},
    ))
    specs.append(RunSpec(
        cache="icache", arch="way-memo", workload="fft",
        params={"index_entries": 32},
    ))
    specs.append(RunSpec(
        cache="icache", arch="way-memo", workload="fft",
        params={"tag_entries": 4, "index_entries": 16},
    ))
    specs.append(RunSpec(
        cache="dcache", arch="way-memo-2x8",
        workload="synthetic:num_accesses=4096,seed=7",
    ))
    specs.append(RunSpec(
        cache="dcache", arch="way-memo-2x8", workload="dct:scale=1",
    ))
    return specs


#: The experiments the remote-report leg renders: one spec-driven
#: figure plus one analytic table keeps the check representative and
#: fast (the figure's points land in the store for later legs).
REPORT_EXPERIMENTS = ("figure4_dcache_accesses", "table2_delay")


def _service_batch(
    specs: List[RunSpec], workers: int
) -> Tuple[List[str], str]:
    """Evaluate ``specs`` — and render a remote report — through a
    live in-process HTTP service."""
    from repro.experiments import report
    from repro.service import ServiceClient, create_server

    server = create_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.server_address[1]}"
        client = ServiceClient(url)
        results = client.evaluate_many(specs, workers=workers)
        remote_report = report.generate(
            list(REPORT_EXPERIMENTS), url=url, workers=workers
        )
        return [r.to_json() for r in results], remote_report
    finally:
        server.shutdown()
        server.server_close()


#: The fault plan the ``--faults`` leg injects: two worker crashes,
#: one hang (killed at the task timeout), seeded store read/write
#: faults and a seeded slow-simulation chance — every failure mode
#: the service must absorb without changing a byte.
FAULT_PLAN = (
    "worker_crash:2,worker_hang:1,"
    "store_read_error:0.2,store_write_error:0.2,slow_sim:0.1"
)


def _fault_leg(specs: List[RunSpec], workers: int) -> List[str]:
    """Evaluate ``specs`` through a service under injected faults.

    Runs against a *fresh* temporary store and job queue so every
    result is really simulated under the fault plan (a warm store
    would answer from disk and prove nothing), with a short task
    timeout so the injected hang exercises the kill-and-retry path.
    """
    import os
    import tempfile

    from repro.service import (
        ServiceClient,
        create_server,
        wait_until_ready,
    )
    from repro.service.jobs import JOB_DB_ENV
    from repro.store import STORE_ENV, reset_default_stores
    from repro.testing import faults

    with tempfile.TemporaryDirectory(prefix="repro-faultleg-") as tmp:
        saved = {
            name: os.environ.get(name)
            for name in (STORE_ENV, JOB_DB_ENV)
        }
        os.environ[STORE_ENV] = os.path.join(tmp, "results.sqlite")
        os.environ[JOB_DB_ENV] = os.path.join(tmp, "jobs.sqlite")
        reset_default_stores()
        try:
            with faults.activate(
                FAULT_PLAN, seed=13,
                state_dir=os.path.join(tmp, "state"),
            ) as plan:
                server = create_server(
                    port=0, task_timeout=5.0, max_attempts=5,
                )
                thread = threading.Thread(
                    target=server.serve_forever, daemon=True
                )
                thread.start()
                try:
                    url = (
                        f"http://127.0.0.1:{server.server_address[1]}"
                    )
                    wait_until_ready(url)
                    client = ServiceClient(url, timeout=600.0)
                    results = client.evaluate_many(
                        specs, workers=workers
                    )
                finally:
                    server.shutdown()
                    server.server_close()
                print(
                    f"  fault leg: {plan.fired('worker_crash')} "
                    f"crash(es), {plan.fired('worker_hang')} hang(s) "
                    "injected",
                    file=sys.stderr,
                )
            return [r.to_json() for r in results]
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
            reset_default_stores()


def _replay_leg(
    specs: List[RunSpec], workers: int
) -> Tuple[List[str], List[str]]:
    """Evaluate per-spec (grouped replay disabled), serial and pooled.

    The default legs already run with replay grouping on; this leg
    forces ``REPRO_REPLAY=off`` so the strictly per-spec path is
    exercised too — grouped vs per-spec vs serial must all be
    byte-identical.
    """
    import os

    from repro.replay.engine import REPLAY_ENV

    saved = os.environ.get(REPLAY_ENV)
    os.environ[REPLAY_ENV] = "off"
    try:
        serial = [
            r.to_json()
            for r in evaluate_many(specs, workers=1, use_cache=False)
        ]
        pooled = [
            r.to_json()
            for r in evaluate_many(specs, workers=workers,
                                   use_cache=False)
        ]
        return serial, pooled
    finally:
        if saved is None:
            os.environ.pop(REPLAY_ENV, None)
        else:
            os.environ[REPLAY_ENV] = saved


#: The shipped scenario the ``--scenario`` leg renders: the cheapest
#: one (six synthetic design points, no ISS runs needed).
SCENARIO_NAME = "thrash-adversarial"


def _scenario_leg(
    workers: int, include_service: bool
) -> Tuple[str, str, Optional[str]]:
    """Render one shipped scenario's finished table three ways.

    ``repro run scenario:<name>`` must produce the same bytes with
    serial evaluation, a worker pool, and design points evaluated by
    a live HTTP service (``--url`` semantics: remote results, local
    tabulation).  Returns the three rendered tables (service leg is
    None when skipped); the caller compares.
    """
    from repro.experiments.registry import keyed_results
    from repro.experiments.reporting import render
    from repro.scenarios import load_shipped, scenario_experiment

    record = scenario_experiment(load_shipped(SCENARIO_NAME))
    specs = record.specs()

    def rendered(results) -> str:
        return render(record.tabulate(keyed_results(specs, results)))

    serial = rendered(evaluate_many(specs, workers=1, use_cache=False))
    pooled = rendered(
        evaluate_many(specs, workers=workers, use_cache=False)
    )
    if not include_service:
        return serial, pooled, None

    from repro.service import ServiceClient, create_server

    server = create_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        url = f"http://127.0.0.1:{server.server_address[1]}"
        results = ServiceClient(url).evaluate_many(
            specs, workers=workers
        )
    finally:
        server.shutdown()
        server.server_close()
    return serial, pooled, rendered(results)


def _telemetry_leg(
    specs: List[RunSpec], workers: int
) -> Tuple[List[str], List[str], str, str, int, int]:
    """Evaluate — and render a report — with telemetry fully on and
    fully off.

    Telemetry must be a pure observer: serialized results and the
    rendered markdown report must be byte-identical with the metrics
    registry live and a span trace file attached
    (``REPRO_TELEMETRY=1`` + ``$REPRO_TRACE_FILE``) and with the
    whole layer disabled (``REPRO_TELEMETRY=0``).  Returns the two
    result batches, the two reports, and the trace-file span count
    after each leg — the off leg keeps ``$REPRO_TRACE_FILE`` set, so
    an unchanged count proves the kill switch covers tracing too.
    """
    import os
    import tempfile

    from repro.experiments import report
    from repro.telemetry import metrics as telemetry
    from repro.telemetry.tracing import TRACE_FILE_ENV, load_trace_file

    saved = {
        name: os.environ.get(name)
        for name in (telemetry.TELEMETRY_ENV, TRACE_FILE_ENV)
    }
    with tempfile.TemporaryDirectory(prefix="repro-teleleg-") as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")
        try:
            os.environ[telemetry.TELEMETRY_ENV] = "1"
            os.environ[TRACE_FILE_ENV] = trace_path
            on = [
                r.to_json()
                for r in evaluate_many(specs, workers=workers,
                                       use_cache=False)
            ]
            on_report = report.generate(
                list(REPORT_EXPERIMENTS), workers=workers
            )
            spans_on = len(load_trace_file(trace_path))

            os.environ[telemetry.TELEMETRY_ENV] = "0"
            off = [
                r.to_json()
                for r in evaluate_many(specs, workers=workers,
                                       use_cache=False)
            ]
            off_report = report.generate(
                list(REPORT_EXPERIMENTS), workers=workers
            )
            spans_off = len(load_trace_file(trace_path))
            return on, off, on_report, off_report, spans_on, spans_off
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value


def _report_mismatch(
    label: str, specs: List[RunSpec], a: List[str], b: List[str]
) -> None:
    if len(a) != len(b):
        print(
            f"MISMATCH ({label}): {len(a)} vs {len(b)} results for "
            f"{len(specs)} specs",
            file=sys.stderr,
        )
    for i, (left, right) in enumerate(zip(a, b)):
        if left != right:
            print(
                f"MISMATCH ({label}) at spec {i}: {specs[i].key()}",
                file=sys.stderr,
            )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.determinism_check",
        description=(
            "evaluate_many 1-vs-N-worker and in-process-vs-service "
            "byte-identity check"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="pool size for the parallel run (default: 4)",
    )
    parser.add_argument(
        "--no-service", action="store_true",
        help="skip the HTTP-service leg of the check",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="add a replay leg: re-evaluate with grouped replay "
             "disabled (REPRO_REPLAY=off), serial and pooled, and "
             "require byte-identity with the grouped runs",
    )
    parser.add_argument(
        "--scenario", action="store_true",
        help="add a scenario leg: render the shipped "
             f"'{SCENARIO_NAME}' scenario table serially, pooled and "
             "against a live service, and require byte-identity",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="add a telemetry leg: re-evaluate and re-render the "
             "report with the metrics registry and a span trace file "
             "on, then with REPRO_TELEMETRY=0, and require "
             "byte-identity both ways",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="add a fault-injection leg: evaluate through a service "
             "under injected worker crashes, hangs and store faults "
             "and require byte-identity with the clean serial run",
    )
    args = parser.parse_args(argv)

    specs = check_specs()
    serial = [
        r.to_json()
        for r in evaluate_many(specs, workers=1, use_cache=False)
    ]
    pooled = [
        r.to_json()
        for r in evaluate_many(specs, workers=args.workers,
                               use_cache=False)
    ]
    if serial != pooled:
        _report_mismatch("1 vs N workers", specs, serial, pooled)
        return 1
    legs = f"1 vs {args.workers} workers"
    if args.replay:
        per_spec_serial, per_spec_pooled = _replay_leg(
            specs, args.workers
        )
        if serial != per_spec_serial:
            _report_mismatch(
                "grouped vs per-spec serial", specs, serial,
                per_spec_serial,
            )
            return 1
        if serial != per_spec_pooled:
            _report_mismatch(
                "grouped vs per-spec pooled", specs, serial,
                per_spec_pooled,
            )
            return 1
        legs += " vs per-spec replay-off (serial and pooled)"
    if not args.no_service:
        from repro.experiments import report

        service, remote_report = _service_batch(specs, args.workers)
        if serial != service:
            _report_mismatch("in-process vs service", specs, serial,
                             service)
            return 1
        local_report = report.generate(
            list(REPORT_EXPERIMENTS), workers=args.workers
        )
        if local_report != remote_report:
            print(
                "MISMATCH (report --url vs local): remote and local "
                f"markdown differ for {REPORT_EXPERIMENTS}",
                file=sys.stderr,
            )
            return 1
        legs += " vs HTTP service (incl. remote report render)"
    if args.scenario:
        s_serial, s_pooled, s_service = _scenario_leg(
            args.workers, include_service=not args.no_service
        )
        if s_serial != s_pooled:
            print(
                f"MISMATCH (scenario {SCENARIO_NAME}): serial and "
                "pooled rendered tables differ",
                file=sys.stderr,
            )
            return 1
        if s_service is not None and s_serial != s_service:
            print(
                f"MISMATCH (scenario {SCENARIO_NAME}): local and "
                "service-evaluated rendered tables differ",
                file=sys.stderr,
            )
            return 1
        legs += " vs scenario table render"
    if args.telemetry:
        (tele_on, tele_off, report_on, report_off,
         spans_on, spans_off) = _telemetry_leg(specs, args.workers)
        if serial != tele_on:
            _report_mismatch(
                "clean vs telemetry-on", specs, serial, tele_on
            )
            return 1
        if tele_on != tele_off:
            _report_mismatch(
                "telemetry-on vs telemetry-off", specs, tele_on,
                tele_off,
            )
            return 1
        if report_on != report_off:
            print(
                "MISMATCH (telemetry): markdown report differs with "
                "REPRO_TELEMETRY on vs off",
                file=sys.stderr,
            )
            return 1
        if spans_on == 0:
            print(
                "MISMATCH (telemetry): trace file is empty after the "
                "telemetry-on leg",
                file=sys.stderr,
            )
            return 1
        if spans_off != spans_on:
            print(
                "MISMATCH (telemetry): disabled leg appended "
                f"{spans_off - spans_on} span(s) to the trace file",
                file=sys.stderr,
            )
            return 1
        print(
            f"  telemetry leg: {spans_on} span(s) traced, "
            "results and report byte-identical on/off",
            file=sys.stderr,
        )
        legs += " vs telemetry on/off (incl. report render)"
    if args.faults:
        faulted = _fault_leg(specs, args.workers)
        if serial != faulted:
            _report_mismatch(
                "clean vs fault-injected service", specs, serial,
                faulted,
            )
            return 1
        legs += " vs fault-injected service"
    print(
        f"evaluate_many determinism ok: {len(specs)} specs, "
        f"{legs} byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
