"""The central architecture registry.

Every cache architecture this repository can evaluate — the paper's
way-memoized controllers and all six comparison baselines — is
registered here exactly once, as an :class:`ArchitectureInfo`: a
factory accepting keyword parameters, the cache side it attaches to,
JSON-serializable parameter defaults, and the metadata the power model
needs (MAB geometry for way-memo variants, auxiliary storage bits for
the baselines' side structures).

This registry is the single source of truth that the historical
per-module registries are now thin aliases over:

* ``experiments/runner.py:DCACHE_ARCHS`` / ``ICACHE_ARCHS`` — the
  zero-argument factory dicts, re-exported from here.
* ``experiments/runner.py:AUX_BITS`` / ``MAB_GEOMETRY`` — power-model
  metadata, derived from the registered defaults.
* ``experiments/extension_baselines.py:D_ARCHS`` / ``I_ARCHS`` — the
  baseline-comparison orderings, derived from ``comparison_rank``.

Fixed-geometry labels like ``way-memo-2x8`` are presets: the same
factory as the parametric ``way-memo`` entry with pinned defaults.
``repro.api.evaluate`` resolves a :class:`~repro.api.spec.RunSpec`
against this registry, so registering a new architecture makes it
reachable from the library, ``repro eval``, ``repro list`` and the
sweep harness with no further plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.baselines import (
    FilterCacheDCache,
    FilterCacheICache,
    MaLinksICache,
    OriginalDCache,
    OriginalICache,
    PanwarICache,
    SetBufferDCache,
    TwoPhaseDCache,
    TwoPhaseICache,
    WayPredictionDCache,
    WayPredictionICache,
)
from repro.core import (
    LineBufferWayMemoDCache,
    MABConfig,
    WayMemoDCache,
    WayMemoICache,
)
from repro.energy.technology import FRV_TECH, TechnologyParameters

#: Valid values of ``RunSpec.cache``.
CACHE_SIDES: Tuple[str, ...] = ("dcache", "icache")

#: Registered technology/power models, keyed by ``RunSpec.technology``.
TECHNOLOGIES: Dict[str, TechnologyParameters] = {"frv": FRV_TECH}


@dataclass(frozen=True, eq=False)
class ArchitectureInfo:
    """One registered architecture: factory + metadata.

    ``defaults`` holds every keyword the factory accepts with its
    default value; a :class:`~repro.api.spec.RunSpec` may override any
    subset of them (unknown keys are rejected at spec construction).
    ``uses_mab`` marks way-memo variants whose power is priced with a
    :class:`~repro.energy.mab_model.MABHardwareModel` of the resolved
    ``(tag_entries, index_entries)`` geometry; ``aux_bits`` prices a
    baseline's non-MAB side structure as a small SRAM.
    """

    id: str
    side: str
    factory: Callable[..., object]
    description: str
    defaults: Mapping[str, Any] = field(default_factory=dict)
    uses_mab: bool = False
    aux_bits: Optional[Callable[[Mapping[str, Any]], int]] = None
    #: Position in the extension_baselines comparison (None = not in it).
    comparison_rank: Optional[int] = None
    #: Parametric entries (e.g. ``way-memo``) are the sweep surface and
    #: are excluded from the legacy fixed-label alias dicts.
    parametric: bool = False

    def merged_params(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Defaults overlaid with ``params`` (unknown keys rejected)."""
        merged = dict(self.defaults)
        for key, value in (params or {}).items():
            if key not in merged:
                raise KeyError(
                    f"architecture {self.id!r} ({self.side}) has no "
                    f"parameter {key!r}; known: {sorted(merged)}"
                )
            merged[key] = value
        return merged

    def build(self, params: Optional[Mapping[str, Any]] = None) -> object:
        """Construct a fresh controller with ``params`` overrides."""
        return self.factory(**self.merged_params(params))

    def mab_geometry(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> Optional[Tuple[int, int]]:
        """Resolved (Nt, Ns) for way-memo variants, else None."""
        if not self.uses_mab:
            return None
        merged = self.merged_params(params)
        return (int(merged["tag_entries"]), int(merged["index_entries"]))

    def resolved_aux_bits(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> Optional[int]:
        """Auxiliary-structure storage bits for the resolved params."""
        if self.aux_bits is None:
            return None
        return self.aux_bits(self.merged_params(params))


_REGISTRY: Dict[Tuple[str, str], ArchitectureInfo] = {}


def register(info: ArchitectureInfo) -> ArchitectureInfo:
    """Add ``info`` to the registry (duplicate ids are an error)."""
    if info.side not in CACHE_SIDES:
        raise ValueError(f"unknown cache side {info.side!r}")
    key = (info.side, info.id)
    if key in _REGISTRY:
        raise ValueError(
            f"architecture {info.id!r} already registered for {info.side}"
        )
    _REGISTRY[key] = info
    return info


def get_architecture(side: str, arch_id: str) -> ArchitectureInfo:
    """Look up one architecture (KeyError with the known ids on miss)."""
    try:
        return _REGISTRY[(side, arch_id)]
    except KeyError:
        raise KeyError(
            f"unknown {side} architecture {arch_id!r}; "
            f"available: {architecture_ids(side)}"
        ) from None


def architecture_ids(side: str) -> Tuple[str, ...]:
    """Registered ids for one cache side, in registration order."""
    return tuple(
        info.id for (s, _), info in _REGISTRY.items() if s == side
    )


def architectures(side: Optional[str] = None) -> Tuple[ArchitectureInfo, ...]:
    """All registered architectures (optionally one side)."""
    return tuple(
        info for (s, _), info in _REGISTRY.items()
        if side is None or s == side
    )


def comparison_archs(side: str) -> Tuple[str, ...]:
    """The extension_baselines comparison set, in paper order."""
    ranked = [
        info for info in architectures(side)
        if info.comparison_rank is not None
    ]
    ranked.sort(key=lambda info: info.comparison_rank)
    return tuple(info.id for info in ranked)


# ----------------------------------------------------------------------
# registrations
# ----------------------------------------------------------------------

def _way_memo_dcache(tag_entries=2, index_entries=8, consistency="paper",
                     policy="lru"):
    return WayMemoDCache(
        mab_config=MABConfig(tag_entries, index_entries, consistency),
        policy=policy,
    )


def _way_memo_icache(tag_entries=2, index_entries=16, consistency="paper",
                     policy="lru"):
    return WayMemoICache(
        mab_config=MABConfig(tag_entries, index_entries, consistency),
        policy=policy,
    )


def _line_buffer_way_memo(tag_entries=2, index_entries=8,
                          consistency="paper", line_buffer_entries=1,
                          policy="lru"):
    return LineBufferWayMemoDCache(
        mab_config=MABConfig(tag_entries, index_entries, consistency),
        line_buffer_entries=line_buffer_entries,
        policy=policy,
    )


#: Storage-bit formulas for the baselines' auxiliary structures, per
#: resolved parameters (defaults reproduce runner.py's old AUX_BITS).
def _set_buffer_bits(params: Mapping[str, Any]) -> int:
    # entries x (2 tags + index) per buffered set.
    return int(params["entries"]) * (2 * 18 + 9)


def _filter_cache_bits(params: Mapping[str, Any]) -> int:
    # L0 lines x (32-byte data + tag).
    return int(params["l0_lines"]) * (32 * 8 + 27)


def _way_prediction_bits(params: Mapping[str, Any]) -> int:
    return 512 * 1                       # 1 prediction bit per set


def _ma_links_bits(params: Mapping[str, Any]) -> int:
    # [11]: 2 links x (1 valid + 1 way bit) per line, every line.
    return 1024 * 2 * 2


def _mab_defaults(tag_entries: int, index_entries: int,
                  consistency: str = "paper") -> Dict[str, Any]:
    return {
        "tag_entries": tag_entries,
        "index_entries": index_entries,
        "consistency": consistency,
        "policy": "lru",
    }


# -- D-cache (registration order preserves the legacy dict order) ------

register(ArchitectureInfo(
    id="original", side="dcache", factory=OriginalDCache,
    description="conventional 2-way set-associative D-cache",
    defaults={"policy": "lru"}, comparison_rank=0,
))
register(ArchitectureInfo(
    id="set-buffer", side="dcache", factory=SetBufferDCache,
    description="lightweight set buffer [14]",
    defaults={"entries": 2, "policy": "lru"},
    aux_bits=_set_buffer_bits,
))
register(ArchitectureInfo(
    id="way-memo-2x8", side="dcache", factory=_way_memo_dcache,
    description="way memoization, 2x8 MAB (the paper's D-cache pick)",
    defaults=_mab_defaults(2, 8), uses_mab=True, comparison_rank=4,
))
register(ArchitectureInfo(
    id="way-memo-2x8-evict", side="dcache", factory=_way_memo_dcache,
    description="2x8 MAB with the conservative eviction hook",
    defaults=_mab_defaults(2, 8, "evict_hook"), uses_mab=True,
))
register(ArchitectureInfo(
    id="way-memo+line-buffer", side="dcache",
    factory=_line_buffer_way_memo,
    description="2x8 MAB combined with a line buffer (conclusion)",
    defaults={**_mab_defaults(2, 8), "line_buffer_entries": 1},
    uses_mab=True,
))
register(ArchitectureInfo(
    id="filter-cache", side="dcache", factory=FilterCacheDCache,
    description="L0 filter cache [6] (extra cycle on L0 misses)",
    defaults={"l0_lines": 8, "policy": "lru"},
    aux_bits=_filter_cache_bits, comparison_rank=1,
))
register(ArchitectureInfo(
    id="way-prediction", side="dcache", factory=WayPredictionDCache,
    description="MRU way prediction [9] (extra cycle on mispredict)",
    defaults={"policy": "lru"}, aux_bits=_way_prediction_bits,
    comparison_rank=2,
))
register(ArchitectureInfo(
    id="two-phase", side="dcache", factory=TwoPhaseDCache,
    description="two-phase tag-then-way cache [8] (extra cycle always)",
    defaults={"policy": "lru"}, comparison_rank=3,
))
register(ArchitectureInfo(
    id="way-memo", side="dcache", factory=_way_memo_dcache,
    description="way memoization with a parametric (Nt, Ns) MAB",
    defaults=_mab_defaults(2, 8), uses_mab=True, parametric=True,
))

# -- I-cache -----------------------------------------------------------

register(ArchitectureInfo(
    id="original", side="icache", factory=OriginalICache,
    description="conventional 2-way set-associative I-cache",
    defaults={"policy": "lru"}, comparison_rank=0,
))
register(ArchitectureInfo(
    id="panwar", side="icache", factory=PanwarICache,
    description="intra-line sequential-fetch elision [4]",
    defaults={"policy": "lru"},
))
register(ArchitectureInfo(
    id="ma-links", side="icache", factory=MaLinksICache,
    description="memory-address links [11]",
    defaults={"policy": "lru"}, aux_bits=_ma_links_bits,
    comparison_rank=1,
))
register(ArchitectureInfo(
    id="way-memo-2x8", side="icache", factory=_way_memo_icache,
    description="way memoization, 2x8 MAB",
    defaults=_mab_defaults(2, 8), uses_mab=True,
))
register(ArchitectureInfo(
    id="way-memo-2x16", side="icache", factory=_way_memo_icache,
    description="way memoization, 2x16 MAB (the paper's I-cache pick)",
    defaults=_mab_defaults(2, 16), uses_mab=True, comparison_rank=5,
))
register(ArchitectureInfo(
    id="way-memo-2x32", side="icache", factory=_way_memo_icache,
    description="way memoization, 2x32 MAB",
    defaults=_mab_defaults(2, 32), uses_mab=True,
))
register(ArchitectureInfo(
    id="way-memo-2x16-evict", side="icache", factory=_way_memo_icache,
    description="2x16 MAB with the conservative eviction hook",
    defaults=_mab_defaults(2, 16, "evict_hook"), uses_mab=True,
))
register(ArchitectureInfo(
    id="filter-cache", side="icache", factory=FilterCacheICache,
    description="L0 filter cache [6] (extra cycle on L0 misses)",
    defaults={"l0_lines": 8, "policy": "lru"},
    aux_bits=_filter_cache_bits, comparison_rank=2,
))
register(ArchitectureInfo(
    id="way-prediction", side="icache", factory=WayPredictionICache,
    description="MRU way prediction [9] (extra cycle on mispredict)",
    defaults={"policy": "lru"}, aux_bits=_way_prediction_bits,
    comparison_rank=3,
))
register(ArchitectureInfo(
    id="two-phase", side="icache", factory=TwoPhaseICache,
    description="two-phase tag-then-way cache [8] (extra cycle always)",
    defaults={"policy": "lru"}, comparison_rank=4,
))
register(ArchitectureInfo(
    id="way-memo", side="icache", factory=_way_memo_icache,
    description="way memoization with a parametric (Nt, Ns) MAB",
    defaults=_mab_defaults(2, 16), uses_mab=True, parametric=True,
))


# ----------------------------------------------------------------------
# legacy aliases (the old per-module registries, now derived views)
# ----------------------------------------------------------------------

def _legacy_factories(side: str) -> Dict[str, Callable[[], object]]:
    return {
        info.id: info.build
        for info in architectures(side) if not info.parametric
    }


#: Zero-argument factory dicts, as experiments/runner.py used to define.
DCACHE_ARCHS: Dict[str, Callable[[], object]] = _legacy_factories("dcache")
ICACHE_ARCHS: Dict[str, Callable[[], object]] = _legacy_factories("icache")

#: Auxiliary storage bits by label (default parameters), both sides.
AUX_BITS: Dict[str, int] = {}
#: (Nt, Ns) by way-memo label (default parameters), both sides.
MAB_GEOMETRY: Dict[str, Tuple[int, int]] = {}
for _info in architectures():
    if _info.parametric:
        continue
    _bits = _info.resolved_aux_bits()
    if _bits is not None:
        AUX_BITS.setdefault(_info.id, _bits)
    _geom = _info.mab_geometry()
    if _geom is not None:
        MAB_GEOMETRY.setdefault(_info.id, _geom)
del _info
