"""``repro.api`` — the declarative evaluation layer.

Every question this repository answers is an instance of "evaluate
cache architecture A on workload W and report counters + power".  This
package gives that question one typed, serializable shape:

>>> from repro.api import RunSpec, evaluate
>>> spec = RunSpec(cache="dcache", arch="way-memo-2x8", workload="dct")
>>> result = evaluate(spec)
>>> result.counters.tags_per_access, result.power.total_mw  # doctest: +SKIP

A :class:`RunSpec` round-trips losslessly through JSON
(``spec.to_json()`` / ``RunSpec.from_json``), so the same design point
runs from the library, from ``repro eval '<spec.json>'``, or inside a
sweep batch.  :func:`evaluate_many` fans batches over the shared
multiprocessing harness with byte-identical results for any worker
count.  The architecture registry (:mod:`repro.api.registry`) is the
single source of truth the experiments, the sweeps, ``repro list``
and the CLI all read.

CLI-vs-library mapping:

=============================================  =========================
CLI                                            library
=============================================  =========================
``repro eval '<spec.json>'``                   ``evaluate(RunSpec(...))``
``repro eval @specs.json --workers 8``         ``evaluate_many(specs, 8)``
``repro list`` (architectures section)         ``architectures(side)``
``repro run <experiment> --json``              ``run_experiment(name)``
``repro sweep ...``                            ``experiments.sweep.*``
``repro serve`` / ``repro submit``             ``repro.service``
``repro store stats``                          ``repro.store.default_store()``
=============================================  =========================

``evaluate``/``evaluate_many`` read through the persistent result
store (:mod:`repro.store`) — identical questions asked of identical
code are answered from SQLite without simulating, across processes
and machines.
"""

from repro.api.evaluate import (
    cached_results,
    clear_result_cache,
    evaluate,
    evaluate_many,
    simulation_count,
)
from repro.api.parallel import parallel_map, warm_trace_cache
from repro.api.registry import (
    CACHE_SIDES,
    TECHNOLOGIES,
    ArchitectureInfo,
    architecture_ids,
    architectures,
    comparison_archs,
    get_architecture,
    register,
)
from repro.api.result import RESULT_SCHEMA_VERSION, RunResult
from repro.api.spec import ENGINES, SPEC_SCHEMA_VERSION, RunSpec

__all__ = [
    "ArchitectureInfo",
    "CACHE_SIDES",
    "ENGINES",
    "RESULT_SCHEMA_VERSION",
    "RunResult",
    "RunSpec",
    "SPEC_SCHEMA_VERSION",
    "TECHNOLOGIES",
    "architecture_ids",
    "architectures",
    "cached_results",
    "clear_result_cache",
    "comparison_archs",
    "evaluate",
    "evaluate_many",
    "get_architecture",
    "parallel_map",
    "register",
    "simulation_count",
    "warm_trace_cache",
]
