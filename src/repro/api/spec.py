"""The declarative run specification: one (architecture x workload) point.

A :class:`RunSpec` names everything needed to reproduce one
evaluation — cache side, architecture id, architecture parameter
overrides, workload, simulation engine and technology model — and
round-trips losslessly through JSON, so the same design point can be
expressed from the library, the CLI (``repro eval``), a sweep batch or
a file on disk.

Specs are validated eagerly against the central registry at
construction: unknown sides, architectures, parameters, workloads,
engines and technologies all fail immediately with the list of valid
values, never deep inside a worker process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.api.registry import (
    CACHE_SIDES,
    TECHNOLOGIES,
    get_architecture,
)
from repro.workloads import BENCHMARK_NAMES, parse_workload

#: Version of the serialized spec layout.
SPEC_SCHEMA_VERSION = 1

#: ``process()`` (fast kernels) vs ``process_reference()`` (object-API
#: executable spec); both are bit-for-bit equivalent by the
#: differential tests, so ``fast`` is the default.
ENGINES: Tuple[str, ...] = ("fast", "reference")

#: Prefix of synthetic workload names, e.g.
#: ``synthetic:num_accesses=4096,seed=7`` (dcache) or
#: ``synthetic:kind=mab-thrash,num_fetches=4096`` (icache) — the
#: reserved ``kind`` parameter selects a generator from
#: :func:`repro.workloads.synthetic_kinds` (original generators when
#: omitted); everything else is forwarded as keyword overrides.
SYNTHETIC_PREFIX = "synthetic"

_SCALARS = (int, float, str, bool)

ParamsLike = Union[
    Mapping[str, Any], Tuple[Tuple[str, Any], ...], None
]


def parse_synthetic_params(workload: str) -> Dict[str, Any]:
    """Parse ``synthetic[:k=v,...]`` into generator keyword overrides."""
    _, _, tail = workload.partition(":")
    params: Dict[str, Any] = {}
    for item in filter(None, tail.split(",")):
        key, sep, value = item.partition("=")
        if not sep:
            raise ValueError(
                f"malformed synthetic workload parameter {item!r} "
                f"in {workload!r} (expected key=value)"
            )
        try:
            params[key.strip()] = int(value)
        except ValueError:
            try:
                params[key.strip()] = float(value)
            except ValueError:
                # Non-numeric values name things (e.g. kind=mab-thrash).
                params[key.strip()] = value.strip()
    return params


def _validate_synthetic(cache: str, workload: str) -> None:
    """Eagerly reject bad synthetic parameters (names and sizes).

    The generators themselves run lazily, possibly inside a pool
    worker; checking their keyword names and the stream size here
    keeps the failure at spec construction, with a usable message.
    """
    import inspect

    from repro.workloads import (
        KIND_PARAM,
        default_synthetic_kind,
        synthetic_generator,
        synthetic_kinds,
    )

    params = parse_synthetic_params(workload)
    kind = params.get(KIND_PARAM, default_synthetic_kind(cache))
    if not isinstance(kind, str):
        raise ValueError(
            f"synthetic {KIND_PARAM}= must name a generator, got "
            f"{kind!r}; available for {cache}: "
            f"{list(synthetic_kinds(cache))}"
        )
    # Raises KeyError listing the registered kinds on a bad name.
    generator = synthetic_generator(cache, kind)
    known = set(inspect.signature(generator).parameters)
    unknown = set(params) - known - {KIND_PARAM}
    if unknown:
        raise KeyError(
            f"unknown synthetic parameter(s) {sorted(unknown)} for "
            f"{cache} kind {kind!r}; known: {sorted(known)}"
        )
    for key, value in params.items():
        if key != KIND_PARAM and not isinstance(value, (int, float)):
            raise ValueError(
                f"synthetic parameter {key}= must be numeric, "
                f"got {value!r}"
            )
    for size_key in ("num_accesses", "num_blocks", "num_fetches"):
        if size_key in params and params[size_key] <= 0:
            raise ValueError(
                f"synthetic workload needs {size_key} > 0, "
                f"got {params[size_key]}"
            )


@dataclass(frozen=True)
class RunSpec:
    """One declarative evaluation: architecture x workload x models.

    ``params`` may be given as a mapping; it is canonicalised to a
    sorted tuple of pairs so specs are hashable and two specs with the
    same content always serialize to the same bytes.
    """

    cache: str
    arch: str
    workload: str
    params: ParamsLike = ()
    engine: str = "fast"
    technology: str = "frv"

    def __post_init__(self):
        params = self.params
        if params is None:
            params = {}
        if isinstance(params, Mapping):
            items = params.items()
        else:
            items = tuple(params)
        canonical = tuple(sorted((str(k), v) for k, v in items))
        object.__setattr__(self, "params", canonical)
        self._canonicalise_workload()
        self._validate()

    def _canonicalise_workload(self) -> None:
        """Collapse redundant ``:scale=1`` spellings to the base name.

        ``spec.key()`` is the content address for dedup and the
        persistent store, so two spellings of the same design point
        must serialize identically; malformed names are left for
        ``_validate`` to reject with its usual messages.
        """
        workload = self.workload
        if (not isinstance(workload, str) or ":" not in workload
                or self.is_synthetic):
            return
        try:
            base, scale = parse_workload(workload)
        except (KeyError, ValueError):
            return
        if scale == 1:
            object.__setattr__(self, "workload", base)

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        if self.cache not in CACHE_SIDES:
            raise ValueError(
                f"cache must be one of {CACHE_SIDES}, not {self.cache!r}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, not {self.engine!r}"
            )
        if self.technology not in TECHNOLOGIES:
            raise ValueError(
                f"technology must be one of "
                f"{tuple(TECHNOLOGIES)}, not {self.technology!r}"
            )
        for key, value in self.params:
            if not isinstance(value, _SCALARS):
                raise ValueError(
                    f"parameter {key!r} must be a JSON scalar, "
                    f"got {type(value).__name__}"
                )
        # Raises KeyError listing valid ids / parameter names.
        info = get_architecture(self.cache, self.arch)
        info.merged_params(self.param_dict)
        if self.is_synthetic:
            _validate_synthetic(self.cache, self.workload)
        else:
            # Benchmark names, optionally scaled ('compress:scale=4').
            # ValueError (bad suffix/scale) propagates with its message.
            try:
                parse_workload(self.workload)
            except KeyError:
                raise KeyError(
                    f"unknown workload {self.workload!r}; available: "
                    f"{BENCHMARK_NAMES} (':scale=N' for scalable ones) "
                    f"or '{SYNTHETIC_PREFIX}:...'"
                ) from None

    # -- accessors -----------------------------------------------------

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def is_synthetic(self) -> bool:
        return self.workload.split(":", 1)[0] == SYNTHETIC_PREFIX

    def key(self) -> str:
        """Canonical compact serialization (cache-key / dedup string)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec_version": SPEC_SCHEMA_VERSION,
            "cache": self.cache,
            "arch": self.arch,
            "workload": self.workload,
            "params": self.param_dict,
            "engine": self.engine,
            "technology": self.technology,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        version = payload.get("spec_version", SPEC_SCHEMA_VERSION)
        if version != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported spec_version {version!r} "
                f"(this build speaks {SPEC_SCHEMA_VERSION})"
            )
        unknown = set(payload) - {
            "spec_version", "cache", "arch", "workload", "params",
            "engine", "technology",
        }
        if unknown:
            raise ValueError(f"unknown spec field(s): {sorted(unknown)}")
        return cls(
            cache=payload["cache"],
            arch=payload["arch"],
            workload=payload["workload"],
            params=payload.get("params") or {},
            engine=payload.get("engine", "fast"),
            technology=payload.get("technology", "frv"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))
