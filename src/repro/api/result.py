"""Typed, schema-versioned evaluation results.

A :class:`RunResult` bundles what the table/figure experiments consume
— raw :class:`~repro.cache.stats.AccessCounters`, the priced
:class:`~repro.energy.power.PowerBreakdown` and the run's cycle base —
together with the spec that produced it, and serializes to a stable
JSON document (sorted keys, versioned layout) so batches are
byte-comparable across worker counts, processes and machines.

Schema (``schema_version`` = :data:`RESULT_SCHEMA_VERSION`)::

    {
      "schema_version": 1,
      "spec":       { ... RunSpec.to_dict() ... },
      "cycles":     <int>,       # program cycles (pre-penalty base)
      "counters":   { <raw integer counters> , "notes": {...} },
      "derived":    { tags_per_access, ways_per_access,
                      mab_hit_rate, cache_hit_rate, slowdown_pct },
      "power_mw":   { data, tag, aux, leakage, total }
    }

Bump :data:`RESULT_SCHEMA_VERSION` whenever a field is added, removed
or changes meaning; ``from_dict`` refuses documents from a different
version instead of guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.cache.stats import AccessCounters
from repro.energy import PowerBreakdown

from repro.api.spec import RunSpec

#: Version of the serialized result layout.
RESULT_SCHEMA_VERSION = 1

#: The raw integer fields of AccessCounters, in serialization order.
COUNTER_FIELDS = (
    "accesses", "tag_accesses", "way_accesses", "cache_hits",
    "cache_misses", "loads", "stores", "mab_lookups", "mab_hits",
    "mab_bypasses", "stale_hits", "aux_accesses", "extra_cycles",
    "intra_line_hits",
)


@dataclass(frozen=True)
class RunResult:
    """The outcome of evaluating one :class:`RunSpec`."""

    spec: RunSpec
    counters: AccessCounters
    power: PowerBreakdown
    cycles: int
    schema_version: int = RESULT_SCHEMA_VERSION

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        counters: Dict[str, Any] = {
            name: int(getattr(self.counters, name))
            for name in COUNTER_FIELDS
        }
        counters["notes"] = dict(self.counters.notes)
        return {
            "schema_version": self.schema_version,
            "spec": self.spec.to_dict(),
            "cycles": int(self.cycles),
            "counters": counters,
            "derived": {
                "tags_per_access": self.counters.tags_per_access,
                "ways_per_access": self.counters.ways_per_access,
                "mab_hit_rate": self.counters.mab_hit_rate,
                "cache_hit_rate": self.counters.cache_hit_rate,
                "slowdown_pct": (
                    100.0 * self.counters.extra_cycles / self.cycles
                    if self.cycles else 0.0
                ),
            },
            "power_mw": {
                "data": self.power.data_mw,
                "tag": self.power.tag_mw,
                "aux": self.power.aux_mw,
                "leakage": self.power.leakage_mw,
                "total": self.power.total_mw,
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        version = payload.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema_version {version!r} "
                f"(this build speaks {RESULT_SCHEMA_VERSION})"
            )
        raw = dict(payload["counters"])
        notes = raw.pop("notes", {})
        counters = AccessCounters(**{
            name: int(raw[name]) for name in COUNTER_FIELDS
        })
        counters.notes.update(notes)
        spec = RunSpec.from_dict(payload["spec"])
        power = payload["power_mw"]
        return cls(
            spec=spec,
            counters=counters,
            power=PowerBreakdown(
                label=spec.arch,
                data_mw=power["data"],
                tag_mw=power["tag"],
                aux_mw=power["aux"],
                leakage_mw=power["leakage"],
            ),
            cycles=int(payload["cycles"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))
