"""The shared fan-out harness: ordered parallel map + trace warming.

Every batch evaluation in the repository — ``evaluate_many``, the
design-space sweeps, the parallel figure experiments and ``repro
report`` — goes through :func:`parallel_map`: an ordered
``multiprocessing`` map whose reductions are deterministic by
construction (results always come back in task order), so rendered
output is byte-identical for any worker count.

Workers never run the ISS: :func:`warm_trace_cache` populates both the
in-process workload cache (inherited by forked workers) and the
versioned on-disk trace cache (``$REPRO_TRACE_CACHE``) in the parent
first, so each worker just loads the ``.npz`` arrays.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence

from repro.workloads import BENCHMARK_NAMES, load_workload, parse_workload


def warm_trace_cache(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
) -> None:
    """Run every benchmark once so workers skip the ISS entirely.

    Accepts scaled workload strings (``compress:scale=4``) and
    normalizes redundant spellings (``compress:scale=1`` warms the
    same archive as ``compress``), so one batch never executes a
    program twice.
    """
    seen = set()
    for name in benchmarks:
        base, scale = parse_workload(name)
        canonical = base if scale == 1 else name
        if canonical not in seen:
            seen.add(canonical)
            load_workload(canonical)


def resolve_worker_count(workers: Optional[int]) -> int:
    """``None``/``0`` means every core — the one sizing rule shared by
    :func:`parallel_map` and the service worker pool.

    Negative counts are a caller bug (historically they fell through
    ``min()`` into silent serial execution) and raise ``ValueError``.
    """
    if workers is not None and workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if not workers:
        return os.cpu_count() or 1
    return workers


def parallel_map(
    fn: Callable, tasks: List, workers: Optional[int]
) -> List:
    """Ordered map over ``tasks`` with ``workers`` processes.

    ``workers=None`` uses every core; ``workers<=1`` runs serially in
    this process (no pool, easiest to debug).  Results always come
    back in task order, which keeps every reduction deterministic.
    """
    workers = resolve_worker_count(workers)
    workers = min(workers, len(tasks)) if tasks else 1
    if workers <= 1:
        return [fn(task) for task in tasks]
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(fn, tasks, chunksize=1)
