"""``evaluate(spec) -> RunResult``: the one evaluation entry point.

Resolves a :class:`~repro.api.spec.RunSpec` against the central
registry, replays the workload through a fresh controller, prices the
counters with the paper's Equation (1) and returns a typed
:class:`~repro.api.result.RunResult`.  ``evaluate_many`` fans a batch
out over the shared :func:`~repro.api.parallel.parallel_map` harness
(after warming the trace cache in the parent), deduplicating repeated
specs and reducing in input order — results are byte-identical for
any worker count and for cold vs. warm trace caches.

Results are cached per process by canonical spec key, so the figure
experiments, the report generator and ad-hoc library callers share
one computation per design point.  Behind the per-process cache sits
the **persistent result store** (:mod:`repro.store`): misses read
through to the SQLite store (keyed by canonical spec JSON + result
schema version + code fingerprint) and fresh computations are written
back, so a warm store skips simulation entirely across processes, CI
runs and service restarts.  ``use_cache=False`` bypasses both layers —
that is what the determinism checks use to force real recomputation.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.config import FRV_DCACHE, FRV_ICACHE
from repro.cache.stats import AccessCounters
from repro.energy import CachePowerModel, MABHardwareModel
from repro.workloads import generate_synthetic, load_workload

from repro.api.parallel import parallel_map, warm_trace_cache
from repro.api.registry import TECHNOLOGIES, get_architecture
from repro.api.result import RunResult
from repro.api.spec import RunSpec, parse_synthetic_params
from repro.telemetry import metrics as telemetry
from repro.telemetry.tracing import span as trace_span

#: Per-process result cache, keyed by canonical spec serialization.
_RESULTS: Dict[str, RunResult] = {}

#: Count of real simulations (``_run`` calls) in this process — the
#: assertable evidence that warm paths and pure tabulations never
#: simulate.  Pool workers count in their own processes, so a parent
#: that only fans out keeps its own count at zero.
_SIMULATIONS = 0


def simulation_count() -> int:
    """How many evaluations actually simulated in this process."""
    return _SIMULATIONS


@lru_cache(maxsize=None)
def _power_model(cache: str, technology: str) -> CachePowerModel:
    config = FRV_DCACHE if cache == "dcache" else FRV_ICACHE
    return CachePowerModel(config, TECHNOLOGIES[technology])


def _resolve_stream(spec: RunSpec) -> Tuple[object, int]:
    """The access stream and cycle base the spec's workload defines.

    Benchmarks use the VLIW fetch model's cycle count; synthetic
    workloads have no program behind them, so one access per cycle is
    the (documented) time base.
    """
    if spec.is_synthetic:
        params = parse_synthetic_params(spec.workload)
        stream = generate_synthetic(spec.cache, params)
        return stream, len(stream)
    workload = load_workload(spec.workload)
    stream = (
        workload.trace.data if spec.cache == "dcache" else workload.fetch
    )
    return stream, workload.cycles


def _begin_simulation() -> None:
    """Account one real simulation (and run the chaos slow-sim hook)."""
    global _SIMULATIONS
    _SIMULATIONS += 1
    telemetry.counter(
        "repro_simulations_total",
        "Real simulations performed (cache hits never count).",
    ).inc()
    # Chaos hook: an injected slow simulation exercises the service's
    # timeout/lease machinery without touching the result's bytes.
    from repro.testing import faults

    faults.sleep_if_slow()


def _finish_result(
    spec: RunSpec,
    info,
    params: Dict[str, object],
    counters: AccessCounters,
    cycles: int,
) -> RunResult:
    """Price counters with Equation (1) and wrap them as a RunResult.

    Shared tail of the per-spec path (:func:`_run`) and the grouped
    replay path (:func:`repro.replay.engine.replay_specs`) — one
    pricing implementation keeps the two byte-identical.
    """
    geometry = info.mab_geometry(params)
    power = _power_model(spec.cache, spec.technology).power(
        counters,
        cycles,
        label=spec.arch,
        mab_model=MABHardwareModel(*geometry) if geometry else None,
        aux_bits=info.resolved_aux_bits(params),
    )
    return RunResult(
        spec=spec, counters=counters, power=power, cycles=cycles
    )


def _run(spec: RunSpec) -> RunResult:
    with trace_span(
        "simulate", cache=spec.cache, arch=spec.arch,
        workload=spec.workload, engine=spec.engine,
    ):
        _begin_simulation()
        info = get_architecture(spec.cache, spec.arch)
        params = spec.param_dict
        controller = info.build(params)
        stream, cycles = _resolve_stream(spec)
        if spec.engine == "reference":
            process = getattr(controller, "process_reference", None)
            if process is None:
                raise ValueError(
                    f"architecture {spec.arch!r} ({spec.cache}) has no "
                    "reference engine; use engine='fast'"
                )
        else:
            process = controller.process
        counters: AccessCounters = process(stream)
        return _finish_result(spec, info, params, counters, cycles)


def _default_store():
    """The persistent result store, or None (lazy import: repro.store
    depends on this package's result/spec modules)."""
    from repro.store import default_store

    return default_store()


#: Distinct store-failure messages already warned about, per process.
#: A broken store fails identically on every operation; one line per
#: distinct failure keeps a 10k-spec sweep's stderr readable.
_STORE_WARNINGS: set = set()


def _warn_store_unavailable(exc: BaseException) -> None:
    """Warn about a failing store once per distinct failure message."""
    message = f"warning: result store unavailable: {exc}"
    if message not in _STORE_WARNINGS:
        _STORE_WARNINGS.add(message)
        print(message, file=sys.stderr)


def _store_op(fn, fallback):
    """Best-effort persistence: a failing store (lock starvation, full
    or read-only disk) degrades to a rate-limited warning — it must
    never fail an evaluation whose simulation already succeeded."""
    import sqlite3

    try:
        return fn()
    except (sqlite3.Error, OSError) as exc:
        _warn_store_unavailable(exc)
        return fallback


def evaluate(spec: RunSpec, use_cache: bool = True) -> RunResult:
    """Evaluate one design point (cached per process by spec key).

    Misses read through to the persistent result store and fresh
    computations are written back, so a later process asking the same
    question of the same code skips the simulation entirely.
    """
    if not use_cache:
        return _run(spec)
    key = spec.key()
    result = _RESULTS.get(key)
    if result is not None:
        telemetry.counter(
            "repro_evaluate_memo_hits_total",
            "Evaluations served from the per-process result cache.",
        ).inc()
        return result
    store = _default_store()
    if store is not None:
        result = _store_op(lambda: store.get(spec), None)
    if result is None:
        result = _run(spec)
        if store is not None:
            _store_op(lambda: store.put(result), None)
    _RESULTS[key] = result
    return result


def _evaluate_payload(payload: str) -> RunResult:
    """Worker entry point: JSON spec in, result out.

    Round-tripping the spec through its serialized form in every
    worker keeps the wire format honest: anything expressible from
    the library is expressible from a JSON file and vice versa.
    """
    return _run(RunSpec.from_json(payload))


def _evaluate_task(payloads: Tuple[str, ...]) -> List[RunResult]:
    """Worker entry point for one replay group of JSON specs.

    Singleton groups take the classic per-spec path; larger groups —
    fresh fast-engine specs sharing (cache side, workload), as planned
    by :func:`repro.replay.engine.plan_groups` — replay the workload
    once through the single-pass multi-architecture engine.  Both
    paths produce byte-identical results (the determinism check's
    ``--replay`` leg asserts it).
    """
    specs = [RunSpec.from_json(payload) for payload in payloads]
    if len(specs) == 1:
        return [_run(specs[0])]
    from repro.replay.engine import replay_specs

    return replay_specs(specs)


def evaluate_many(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    use_cache: bool = True,
) -> List[RunResult]:
    """Evaluate a batch, fanned out over the shared pool harness.

    Duplicate specs are computed once; the returned list is in input
    order regardless of worker count, so any reduction over it is
    deterministic.  The parent warms the on-disk trace cache for the
    batch's benchmarks before forking, so workers never run the ISS.
    Fresh fast-engine specs sharing (cache side, workload) are routed
    through the single-pass replay engine as one task (disable with
    ``REPRO_REPLAY=0``); the results are byte-identical either way.

    ``use_cache=False`` bypasses both cache layers completely: no
    reads from the per-process cache or the store, no write-back.
    """
    from repro.replay.engine import plan_groups

    specs = list(specs)
    with trace_span("evaluate_many", batch=len(specs)) as batch_span:
        keys = [spec.key() for spec in specs]
        fresh: Dict[str, RunSpec] = {}
        for spec, key in zip(specs, keys):
            if key not in fresh and not (use_cache and key in _RESULTS):
                fresh[key] = spec
        memo_hits = len(set(keys)) - len(fresh)
        telemetry.counter(
            "repro_evaluate_memo_hits_total",
            "Evaluations served from the per-process result cache.",
        ).inc(memo_hits)
        telemetry.histogram(
            "repro_evaluate_batch_size",
            "Unique design points per evaluate_many call.",
            buckets=telemetry.SIZE_BUCKETS,
        ).observe(len(set(keys)))
        store = _default_store() if use_cache else None
        stored: Dict[str, RunResult] = {}
        if fresh and store is not None:
            stored = _store_op(
                lambda: store.get_many(list(fresh.values())), {}
            )
            for key in stored:
                fresh.pop(key, None)
        batch_span.set_attribute("memo_hits", memo_hits)
        batch_span.set_attribute("store_hits", len(stored))
        batch_span.set_attribute("fresh", len(fresh))
        if fresh:
            warm_trace_cache(tuple(dict.fromkeys(
                spec.workload for spec in fresh.values()
                if not spec.is_synthetic
            )))
            groups = plan_groups(list(fresh.values()))
            grouped_results = parallel_map(
                _evaluate_task,
                [tuple(spec.to_json() for spec in group)
                 for group in groups],
                workers,
            )
            computed = {
                spec.key(): result
                for group, results in zip(groups, grouped_results)
                for spec, result in zip(group, results)
            }
            if store is not None:
                _store_op(
                    lambda: store.put_many(computed.values()), None
                )
        else:
            computed = {}
        computed.update(stored)
        if use_cache:
            _RESULTS.update(computed)
            return [_RESULTS[key] for key in keys]
        return [computed[key] for key in keys]


def clear_result_cache() -> None:
    """Drop every cached result (tests and long-lived services)."""
    _RESULTS.clear()
    _STORE_WARNINGS.clear()


def cached_results() -> Iterable[RunResult]:
    """A snapshot of the per-process result cache (diagnostics)."""
    return tuple(_RESULTS.values())
