"""Command-line front-end: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``repro list``
    Show available experiments, benchmarks, registered architectures
    (with cache side and parameter defaults), sweeps and shipped
    scenarios.
``repro run <experiment> [...] [--json] [--workers N] [--url URL]``
    Run one or more experiments (or ``all``) and print their tables,
    or a schema-versioned JSON document with ``--json``.  Accepts any
    catalog name — paper experiments, registered sweeps
    (``sweep_mab_size``), shipped scenarios (``scenario:<name>``) —
    plus ``@scenario.json`` files.  With ``--url`` the design points
    are evaluated on a running service and only the (pure) tabulation
    happens locally.
``repro eval <spec.json> [--workers N]``
    Evaluate declarative run specs (inline JSON, ``@file`` or ``-``
    for stdin) and print serialized ``RunResult`` documents.  A
    scenario document (``scenario_version`` field) expands to its
    declared spec batch.
``repro bench <benchmark>``
    Execute one benchmark on the ISS, verify it against its golden
    model and print trace statistics.
``repro disasm <benchmark>``
    Print the benchmark's assembled text segment.
``repro profile <benchmark>``
    Print a hot-block / working-set profile and a MAB size suggestion.
``repro trace <benchmark> -o out.npz``
    Export the benchmark's traces for external tooling.
``repro report [-o FILE] [--workers N] [--url URL] [EXPERIMENT ...]``
    Run every experiment (or a subset) into one markdown report
    (parallel prefetch; ``--url`` evaluates on a running service and
    renders locally, byte-identical).
``repro sweep [--experiment ...] [--workers N] [--grid paper|full]``
    Parallel design-space sweeps (full MAB grid, baseline matrix)
    over the shared on-disk trace cache.
``repro search [--cache SIDE] [--objective NAME] [--seed N]
[--budget K] [--out FILE] [--quick]``
    Hunt the synthetic-generator parameter space for the scenario
    maximizing a scored objective; writes the winner as a reloadable
    scenario file (``repro.scenarios.search``).
``repro serve [--host H] [--port P] [--workers N] [--port-file F]
[--job-db F] [--task-timeout S] [--max-attempts N] [--queue-limit N]``
    Run the HTTP batch-evaluation service (``repro.service``):
    durable job queue, supervised worker subprocesses with per-task
    timeouts and retry/backoff, load shedding, SIGTERM drain.
``repro submit <spec.json> [--url URL] [--async]``
    Evaluate run specs against a running service — same input and
    output documents as ``repro eval``, remote execution.  With
    ``--async`` print a durable job id immediately.
``repro jobs [ID] [--url URL] [--wait]``
    List the service's jobs, show one job's progress, or poll it to
    completion (``--wait``; survives transient outages).
``repro store {stats,gc,export,import}``
    Inspect / reclaim / dump / merge the persistent result store
    (``$REPRO_RESULT_STORE``).  ``gc`` takes ``--max-rows`` /
    ``--max-age`` for least-recently-used eviction; ``import`` merges
    another store's ``export`` archive.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, render
from repro.workloads import BENCHMARK_NAMES, get_benchmark, run_benchmark


def _remote_results(records, workers: Optional[int], url: str):
    """One deduplicated remote batch covering ``records``' specs.

    Shares ``report.fetch_results`` with the report generator, so
    ``repro run all --url`` transfers design points declared by
    several experiments once, after a single fingerprint check.
    """
    from repro.experiments.report import fetch_results

    return fetch_results(records, workers=workers, url=url)


def _report_service_failure(url: str, exc: Exception) -> int:
    """Print a usable message for a failed remote call; exit code 1.

    The client wraps every transport fault (refused connections,
    timeouts, resets mid-response) in :class:`ServiceError` with
    status 0, so one branch covers "the service is unreachable" and
    another covers real HTTP errors.  Anything else is local work's
    own failure and keeps its traceback rather than slander a
    healthy server.
    """
    from repro.service.client import TRANSPORT_ERROR, ServiceError

    if isinstance(exc, ServiceError):
        if exc.status == TRANSPORT_ERROR:
            print(f"cannot reach service at {url}: {exc.message} "
                  "(start one with 'repro serve')", file=sys.stderr)
        else:
            print(f"service error: {exc}", file=sys.stderr)
    else:
        raise exc
    return 1


def _resolve_run_targets(names: List[str]):
    """Resolve ``repro run`` arguments to Experiment records.

    Accepts any catalog name — paper experiments, registered sweeps,
    shipped ``scenario:<name>`` records — plus ``@file.json`` scenario
    files; returns the records, or None after printing the error.
    """
    from repro.experiments import get_experiment
    from repro.experiments.registry import experiment_catalog
    from repro.scenarios import (
        ScenarioError,
        load_scenario_file,
        scenario_experiment,
    )

    if names == ["all"]:
        names = list(EXPERIMENTS)
    records, unknown = [], []
    for name in names:
        if name.startswith("@"):
            try:
                records.append(
                    scenario_experiment(load_scenario_file(name[1:]))
                )
            except ScenarioError as exc:
                print(f"invalid scenario: {exc}", file=sys.stderr)
                return None
            continue
        try:
            records.append(get_experiment(name))
        except KeyError:
            unknown.append(name)
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(experiment_catalog())} "
              "(or @scenario.json)", file=sys.stderr)
        return None
    return records


def _run_experiments(
    names: List[str],
    as_json: bool = False,
    workers: Optional[int] = 1,
    url: Optional[str] = None,
) -> int:
    from repro.scenarios import ScenarioInvariantError

    records = _resolve_run_targets(names)
    if records is None:
        return 2
    # Only the remote fetch gets the service-failure translation;
    # tabulation and rendering below are local work whose errors
    # should surface as their own tracebacks.
    try:
        fetched = (
            _remote_results(records, workers, url)
            if url is not None else None
        )
    except Exception as exc:   # noqa: BLE001 — remote failures only
        return _report_service_failure(url, exc)
    try:
        results = [
            record.run(workers=workers, results=fetched)
            for record in records
        ]
    except ScenarioInvariantError as exc:
        print(f"scenario invariant violated: {exc}", file=sys.stderr)
        return 1
    if as_json:
        from repro.api import RESULT_SCHEMA_VERSION

        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "results": [
                {
                    "name": r.name,
                    "title": r.title,
                    "columns": list(r.columns),
                    "rows": r.rows,
                    "notes": r.notes,
                    "paper_reference": r.paper_reference,
                    "rendered": render(r),
                }
                for r in results
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for pos, result in enumerate(results):
        print(render(result))
        if pos + 1 != len(results):
            print()
    return 0


def _read_spec_document(text: str) -> str:
    if text == "-":
        return sys.stdin.read()
    if text.startswith("@"):
        with open(text[1:]) as handle:
            return handle.read()
    return text


def _parse_specs(document: str):
    """Shared spec parsing for ``eval``/``submit``.

    Returns ``(specs, single)`` or ``None`` after printing the error
    (single marks a bare object, echoed back as one document).
    """
    from repro.api import RunSpec

    try:
        payload = json.loads(_read_spec_document(document))
    except OSError as exc:
        print(f"cannot read spec file: {exc}", file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"invalid spec JSON: {exc}", file=sys.stderr)
        return None
    single = isinstance(payload, dict)
    if single and "scenario_version" in payload:
        # A scenario document: expand to its declared spec batch.
        from repro.scenarios import Scenario, ScenarioError

        try:
            return Scenario.from_dict(payload).specs(), False
        except ScenarioError as exc:
            print(f"invalid scenario: {exc}", file=sys.stderr)
            return None
    items = [payload] if single else payload
    if not isinstance(items, list) or not all(
        isinstance(item, dict) for item in items
    ):
        print("invalid spec: expected a JSON object or an array of "
              "objects", file=sys.stderr)
        return None
    try:
        specs = [RunSpec.from_dict(item) for item in items]
    except (KeyError, ValueError, TypeError) as exc:
        print(f"invalid spec: {exc}", file=sys.stderr)
        return None
    return specs, single


def _print_results(results, single: bool, indent: int) -> None:
    documents = [r.to_dict() for r in results]
    print(json.dumps(
        documents[0] if single else documents,
        indent=indent, sort_keys=True,
    ))


def _eval_specs(
    document: str, workers: Optional[int], indent: int
) -> int:
    """``repro eval``: evaluate one spec or a batch from JSON."""
    from repro.api import evaluate_many

    parsed = _parse_specs(document)
    if parsed is None:
        return 2
    specs, single = parsed
    results = evaluate_many(specs, workers=workers)
    _print_results(results, single, indent)
    return 0


def _submit_specs(
    document: str,
    url: str,
    workers: Optional[int],
    indent: int,
    as_async: bool = False,
) -> int:
    """``repro submit``: like ``eval``, but against a running service.

    ``--async`` submits a durable job and prints its id immediately;
    poll it with ``repro jobs ID --wait``.
    """
    from repro.service import ServiceClient

    parsed = _parse_specs(document)
    if parsed is None:
        return 2
    specs, single = parsed
    client = ServiceClient(url)
    try:
        if as_async:
            job_id = client.submit_async(specs)
            print(json.dumps({"job_id": job_id}, indent=indent))
            return 0
        results = client.evaluate_many(specs, workers=workers)
    except Exception as exc:   # noqa: BLE001 — remote failures only
        return _report_service_failure(url, exc)
    _print_results(results, single, indent)
    return 0


def _jobs_progress_printer():
    """Build a ``wait_job`` progress callback printing to stderr.

    Emits a line only when the picture changes (done count, retry
    count, or a task's attempt counter), so a long quiet poll loop
    stays quiet; retrying tasks surface their attempt number and last
    error, which is how a flapping worker becomes visible from the
    client side.
    """
    last = [None]

    def on_progress(status) -> None:
        errors = status.get("task_errors") or {}
        snapshot = (
            status.get("done"),
            status.get("retrying"),
            tuple(sorted(
                (key, info.get("attempts"))
                for key, info in errors.items()
            )),
        )
        if snapshot == last[0]:
            return
        last[0] = snapshot
        line = (
            f"jobs: {status.get('done', 0)}/{status.get('total', 0)} done"
        )
        retrying = status.get("retrying") or 0
        if retrying:
            line += f", {retrying} retrying"
        print(line, file=sys.stderr)
        for key, info in sorted(errors.items()):
            print(
                f"  retry {key[:12]} attempt {info.get('attempts')}: "
                f"{info.get('last_error')}",
                file=sys.stderr,
            )

    return on_progress


def _jobs_command(
    url: str, job_id: Optional[str], wait: bool, indent: int
) -> int:
    """``repro jobs [ID]``: inspect the service's durable job queue."""
    from repro.service import ServiceClient

    client = ServiceClient(url)
    try:
        if job_id is None:
            payload = {"jobs": client.jobs()}
        elif wait:
            results = client.wait_job(
                job_id, on_progress=_jobs_progress_printer()
            )
            _print_results(results, single=False, indent=indent)
            return 0
        else:
            payload = client.job_status(job_id)
            payload.pop("keys", None)
            payload.pop("results", None)
    except Exception as exc:   # noqa: BLE001 — remote failures only
        return _report_service_failure(url, exc)
    print(json.dumps(payload, indent=indent, sort_keys=True))
    return 0


def _store_command(args) -> int:
    """``repro store {stats,gc,export,import}`` on the resolved store."""
    from repro.store import default_store, store_path

    command = args.store_command
    if store_path() is None:
        print("result store is disabled ($REPRO_RESULT_STORE is off)",
              file=sys.stderr)
        return 2
    store = default_store()
    if store is None:
        print(f"result store at {store_path()} cannot be opened",
              file=sys.stderr)
        return 2
    if command == "stats":
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
        return 0
    if command == "gc":
        try:
            removed = store.gc(
                max_rows=args.max_rows, max_age_days=args.max_age
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        scope = "older code versions / schemas"
        if args.max_rows is not None or args.max_age is not None:
            scope += " and least-recently-used rows"
        print(f"removed {removed} row(s) from {scope}; "
              f"{store.stats()['entries']} row(s) remain")
        return 0
    if command == "export":
        output = args.output
        if output:
            with open(output, "w") as handle:
                count = store.export(handle)
            print(f"wrote {count} result(s) to {output}")
        else:
            store.export(sys.stdout)
        return 0
    if command == "import":
        try:
            with open(args.archive) as handle:
                merged = store.import_archive(handle)
        except OSError as exc:
            print(f"cannot read archive: {exc}", file=sys.stderr)
            return 2
        print(
            f"merged {merged.merged} row(s) from {args.archive}; "
            f"skipped {merged.skipped_version} (other code version / "
            f"schema), {merged.skipped_invalid} invalid, "
            f"{merged.skipped_existing} already present"
        )
        return 0
    print(f"unknown store command {command!r}", file=sys.stderr)
    return 2


def _list() -> int:
    from repro.api import architectures
    from repro.experiments import all_experiments
    from repro.experiments.sweep import SWEEPS
    from repro.scenarios import load_shipped, shipped_scenario_names

    print("experiments:")
    for experiment in all_experiments():
        points = len(experiment.specs())
        suffix = (
            f"[{points} design points]" if points
            else f"[{experiment.category}]"
        )
        print(f"  {experiment.name}  {suffix}")
        print(f"      {experiment.title}")
    print("benchmarks:")
    for name in BENCHMARK_NAMES:
        print(f"  {name}")
    print("architectures:")
    for side in ("dcache", "icache"):
        for info in architectures(side):
            defaults = ", ".join(
                f"{k}={v}" for k, v in sorted(info.defaults.items())
            )
            print(f"  {side}/{info.id}  [{defaults}]")
            print(f"      {info.description}")
    print("sweeps:")
    for name, description in SWEEPS.items():
        print(f"  {name}  — {description}")
    print("scenarios:")
    for name in shipped_scenario_names():
        scenario = load_shipped(name)
        print(f"  scenario:{name}  "
              f"[{len(scenario.specs())} design points]")
        print(f"      {scenario.description.splitlines()[0]}")
    return 0


def _run_bench(name: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}; available: "
              f"{', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
        return 2
    benchmark = get_benchmark(name)
    result = run_benchmark(name)
    benchmark.check(result)
    print(result.trace.summary())
    print("golden-model check: OK")
    mix = sorted(result.trace.mix.items(), key=lambda kv: -kv[1])[:8]
    rendered = ", ".join(f"{m}:{c}" for m, c in mix)
    print(f"top instructions: {rendered}")
    return 0


def _disasm(name: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}", file=sys.stderr)
        return 2
    print(get_benchmark(name).build().disassemble())
    return 0


def _profile(name: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}", file=sys.stderr)
        return 2
    from repro.sim import profile_trace, recommend_mab
    from repro.workloads import load_workload

    workload = load_workload(name)
    profile = profile_trace(workload.trace)
    print(profile.report())
    nt, ns = recommend_mab(profile)
    print(f"  suggested D-cache MAB: {nt}x{ns} "
          "(verify with examples/mab_design_space.py)")
    return 0


def _export_trace(name: str, output: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}", file=sys.stderr)
        return 2
    from repro.sim import save_traces
    from repro.workloads import load_workload

    workload = load_workload(name)
    save_traces(output, workload.trace, workload.fetch)
    print(f"wrote {output}: {len(workload.trace.data)} data accesses, "
          f"{len(workload.fetch)} fetch accesses")
    return 0


def _trace_summary(argv: List[str]) -> int:
    """``repro trace summary FILE``: aggregate a span trace file.

    The file is the JSONL written via ``$REPRO_TRACE_FILE``; the
    summary is a per-span-name table of counts and total/self/min/max
    durations.
    """
    from repro.telemetry.tracing import (
        load_trace_file, render_trace_summary,
    )

    wants_help = argv[:1] and argv[0] in ("-h", "--help")
    if wants_help or len(argv) != 1:
        stream = sys.stdout if wants_help else sys.stderr
        print("usage: repro trace summary FILE", file=stream)
        print("  FILE: JSONL span trace written via $REPRO_TRACE_FILE",
              file=stream)
        return 0 if wants_help else 2
    try:
        records = load_trace_file(argv[0])
    except OSError as exc:
        print(f"cannot read trace file: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(render_trace_summary(records))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["sweep"]:
        # Forward everything verbatim (argparse.REMAINDER cannot pass
        # through leading options like --experiment).
        from repro.experiments import sweep

        return sweep.main(argv[1:])
    if argv[:1] == ["search"]:
        from repro.scenarios import search

        return search.main(argv[1:])
    if argv[:2] == ["trace", "summary"]:
        # ``trace <benchmark>`` exports .npz traces; ``trace summary
        # FILE`` aggregates a telemetry span file.  Dispatch before
        # argparse so the benchmark-oriented parser never sees it.
        return _trace_summary(argv[2:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Way memoization for low-power caches "
            "(Ishihara & Fallah, DATE 2005) - reproduction harness"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list experiments and benchmarks")

    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment names, or 'all'",
    )
    run_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a schema-versioned JSON document (rows + rendered "
             "tables) instead of plain tables",
    )
    run_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="prefetch pool size for spec-declaring experiments "
             "(default: 1 = serial; 0 = all cores)",
    )
    run_parser.add_argument(
        "--url", default=None, metavar="URL",
        help="evaluate design points on a running service "
             "(repro serve) and tabulate locally",
    )

    eval_parser = sub.add_parser(
        "eval", help="evaluate declarative run specs (JSON)"
    )
    eval_parser.add_argument(
        "spec",
        help="a RunSpec JSON object or array, @file, or '-' for stdin",
    )
    eval_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for spec batches "
             "(default: 1 = serial; 0 = all cores)",
    )
    eval_parser.add_argument(
        "--indent", type=int, default=2,
        help="JSON indentation of the output (default: 2)",
    )

    bench_parser = sub.add_parser(
        "bench", help="execute and verify one benchmark"
    )
    bench_parser.add_argument("benchmark")

    disasm_parser = sub.add_parser(
        "disasm", help="disassemble a benchmark"
    )
    disasm_parser.add_argument("benchmark")

    profile_parser = sub.add_parser(
        "profile", help="profile a benchmark's execution"
    )
    profile_parser.add_argument("benchmark")

    trace_parser = sub.add_parser(
        "trace",
        help="export a benchmark's traces to .npz "
             "('trace summary FILE' aggregates a telemetry trace)",
    )
    trace_parser.add_argument("benchmark")
    trace_parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: <benchmark>.npz)",
    )

    report_parser = sub.add_parser(
        "report", help="run every experiment into a markdown report"
    )
    report_parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment subset (default: every registered experiment)",
    )
    report_parser.add_argument(
        "-o", "--output", default=None,
        help="write to a file instead of stdout",
    )
    report_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="prefetch pool size (default: all cores; 1 = serial)",
    )
    report_parser.add_argument(
        "--url", default=None, metavar="URL",
        help="evaluate design points on a running service "
             "(repro serve) and render locally (byte-identical)",
    )

    sub.add_parser(
        "sweep", add_help=False,
        help="parallel design-space sweeps (repro sweep --help)",
    )

    sub.add_parser(
        "search", add_help=False,
        help="hunt adversarial synthetic scenarios "
             "(repro search --help)",
    )

    serve_parser = sub.add_parser(
        "serve", help="run the HTTP batch-evaluation service"
    )
    serve_parser.add_argument(
        "--host", default=None,
        help="bind address (default: loopback)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 8323; 0 = pick a free port)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="default pool size for batches that do not name one "
             "(default: 0 = all cores)",
    )
    serve_parser.add_argument(
        "--port-file", default=None, metavar="FILE",
        help="write the bound port here once listening (for --port 0)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true",
        help="log each request to stderr",
    )
    serve_parser.add_argument(
        "--job-db", default=None, metavar="FILE",
        help="durable job-queue database (default: $REPRO_JOB_DB, "
             "else jobs.sqlite next to the result store)",
    )
    serve_parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per simulation before its worker "
             "subprocess is killed and the task retried (default: 300)",
    )
    serve_parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per task before it dead-letters (default: 3)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="outstanding tasks beyond which new submissions are "
             "load-shed with 503 + Retry-After (default: 1024)",
    )

    submit_parser = sub.add_parser(
        "submit", help="evaluate run specs via a running service"
    )
    submit_parser.add_argument(
        "spec",
        help="a RunSpec JSON object or array, @file, or '-' for stdin",
    )
    submit_parser.add_argument(
        "--url", default=None,
        help="service endpoint (default: http://127.0.0.1:8323)",
    )
    submit_parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="advisory remote pool size (the server's worker pool "
             "owns concurrency)",
    )
    submit_parser.add_argument(
        "--async", action="store_true", dest="as_async",
        help="submit a durable job and print its id immediately "
             "(poll with 'repro jobs ID --wait')",
    )
    submit_parser.add_argument(
        "--indent", type=int, default=2,
        help="JSON indentation of the output (default: 2)",
    )

    jobs_parser = sub.add_parser(
        "jobs", help="inspect the service's durable job queue"
    )
    jobs_parser.add_argument(
        "job_id", nargs="?", default=None,
        help="job id to show (default: list recent jobs)",
    )
    jobs_parser.add_argument(
        "--url", default=None,
        help="service endpoint (default: http://127.0.0.1:8323)",
    )
    jobs_parser.add_argument(
        "--wait", action="store_true",
        help="poll the job to completion and print its results "
             "(resumes across transient outages)",
    )
    jobs_parser.add_argument(
        "--indent", type=int, default=2,
        help="JSON indentation of the output (default: 2)",
    )

    store_parser = sub.add_parser(
        "store", help="inspect the persistent result store"
    )
    store_sub = store_parser.add_subparsers(dest="store_command")
    store_sub.add_parser(
        "stats", help="entry counts, file size, process hit/miss"
    )
    gc_parser = store_sub.add_parser(
        "gc", help="drop rows from older code versions / schemas "
                   "(plus LRU eviction with --max-rows / --max-age)"
    )
    gc_parser.add_argument(
        "--max-rows", type=int, default=None, metavar="N",
        help="additionally evict least-recently-used rows beyond N",
    )
    gc_parser.add_argument(
        "--max-age", type=float, default=None, metavar="DAYS",
        help="additionally evict rows not used for DAYS days",
    )
    export_parser = store_sub.add_parser(
        "export", help="dump current-code results as JSON lines"
    )
    export_parser.add_argument(
        "-o", "--output", default=None,
        help="write to a file instead of stdout",
    )
    import_parser = store_sub.add_parser(
        "import", help="merge a 'store export' archive into this store"
    )
    import_parser.add_argument(
        "archive", help="path to a JSON-lines export archive"
    )

    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None and args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    if args.command == "list":
        return _list()
    if args.command == "run":
        workers = None if args.workers == 0 else args.workers
        return _run_experiments(
            args.experiments, as_json=args.as_json, workers=workers,
            url=args.url,
        )
    if args.command == "eval":
        workers = None if args.workers == 0 else args.workers
        return _eval_specs(args.spec, workers, args.indent)
    if args.command == "bench":
        return _run_bench(args.benchmark)
    if args.command == "disasm":
        return _disasm(args.benchmark)
    if args.command == "profile":
        return _profile(args.benchmark)
    if args.command == "trace":
        output = args.output or f"{args.benchmark}.npz"
        return _export_trace(args.benchmark, output)
    if args.command == "report":
        from repro.experiments import report

        unknown = [
            n for n in args.experiments if n not in EXPERIMENTS
        ]
        if unknown:
            print(f"unknown experiment(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        try:
            report.main(
                output=args.output, workers=args.workers,
                url=args.url, experiments=args.experiments or None,
            )
        except Exception as exc:   # noqa: BLE001 — remote failures only
            if args.url is None:
                raise
            return _report_service_failure(args.url, exc)
        return 0
    if args.command == "serve":
        from repro.service import DEFAULT_HOST, DEFAULT_PORT, serve
        from repro.service.server import (
            DEFAULT_QUEUE_LIMIT,
            DEFAULT_TASK_TIMEOUT,
        )

        serve(
            host=DEFAULT_HOST if args.host is None else args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            workers=None if args.workers == 0 else args.workers,
            verbose=args.verbose,
            port_file=args.port_file,
            job_db=args.job_db,
            task_timeout=(
                DEFAULT_TASK_TIMEOUT if args.task_timeout is None
                else args.task_timeout
            ),
            max_attempts=args.max_attempts,
            queue_limit=(
                DEFAULT_QUEUE_LIMIT if args.queue_limit is None
                else args.queue_limit
            ),
        )
        return 0
    if args.command == "submit":
        from repro.service import DEFAULT_HOST, DEFAULT_PORT

        url = args.url or f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
        return _submit_specs(
            args.spec, url, args.workers, args.indent,
            as_async=args.as_async,
        )
    if args.command == "jobs":
        from repro.service import DEFAULT_HOST, DEFAULT_PORT

        url = args.url or f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"
        return _jobs_command(url, args.job_id, args.wait, args.indent)
    if args.command == "store":
        if not args.store_command:
            store_parser.print_help()
            return 1
        return _store_command(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
