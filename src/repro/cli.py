"""Command-line front-end: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``repro list``
    Show available experiments and benchmarks.
``repro run <experiment> [...]``
    Run one or more experiments (or ``all``) and print their tables.
``repro bench <benchmark>``
    Execute one benchmark on the ISS, verify it against its golden
    model and print trace statistics.
``repro disasm <benchmark>``
    Print the benchmark's assembled text segment.
``repro profile <benchmark>``
    Print a hot-block / working-set profile and a MAB size suggestion.
``repro trace <benchmark> -o out.npz``
    Export the benchmark's traces for external tooling.
``repro sweep [--experiment ...] [--workers N] [--grid paper|full]``
    Parallel design-space sweeps (full MAB grid, baseline matrix)
    over the shared on-disk trace cache.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, render
from repro.workloads import BENCHMARK_NAMES, get_benchmark, run_benchmark


def _run_experiments(names: List[str]) -> int:
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for pos, name in enumerate(names):
        module = importlib.import_module(f"repro.experiments.{name}")
        print(render(module.run()))
        if pos + 1 != len(names):
            print()
    return 0


def _run_bench(name: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}; available: "
              f"{', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
        return 2
    benchmark = get_benchmark(name)
    result = run_benchmark(name)
    benchmark.check(result)
    print(result.trace.summary())
    print("golden-model check: OK")
    mix = sorted(result.trace.mix.items(), key=lambda kv: -kv[1])[:8]
    rendered = ", ".join(f"{m}:{c}" for m, c in mix)
    print(f"top instructions: {rendered}")
    return 0


def _disasm(name: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}", file=sys.stderr)
        return 2
    print(get_benchmark(name).build().disassemble())
    return 0


def _profile(name: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}", file=sys.stderr)
        return 2
    from repro.sim import profile_trace, recommend_mab
    from repro.workloads import load_workload

    workload = load_workload(name)
    profile = profile_trace(workload.trace)
    print(profile.report())
    nt, ns = recommend_mab(profile)
    print(f"  suggested D-cache MAB: {nt}x{ns} "
          "(verify with examples/mab_design_space.py)")
    return 0


def _export_trace(name: str, output: str) -> int:
    if name not in BENCHMARK_NAMES:
        print(f"unknown benchmark {name!r}", file=sys.stderr)
        return 2
    from repro.sim import save_traces
    from repro.workloads import load_workload

    workload = load_workload(name)
    save_traces(output, workload.trace, workload.fetch)
    print(f"wrote {output}: {len(workload.trace.data)} data accesses, "
          f"{len(workload.fetch)} fetch accesses")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["sweep"]:
        # Forward everything verbatim (argparse.REMAINDER cannot pass
        # through leading options like --experiment).
        from repro.experiments import sweep

        return sweep.main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Way memoization for low-power caches "
            "(Ishihara & Fallah, DATE 2005) - reproduction harness"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list experiments and benchmarks")

    run_parser = sub.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment names, or 'all'",
    )

    bench_parser = sub.add_parser(
        "bench", help="execute and verify one benchmark"
    )
    bench_parser.add_argument("benchmark")

    disasm_parser = sub.add_parser(
        "disasm", help="disassemble a benchmark"
    )
    disasm_parser.add_argument("benchmark")

    profile_parser = sub.add_parser(
        "profile", help="profile a benchmark's execution"
    )
    profile_parser.add_argument("benchmark")

    trace_parser = sub.add_parser(
        "trace", help="export a benchmark's traces to .npz"
    )
    trace_parser.add_argument("benchmark")
    trace_parser.add_argument(
        "-o", "--output", default=None,
        help="output path (default: <benchmark>.npz)",
    )

    report_parser = sub.add_parser(
        "report", help="run every experiment into a markdown report"
    )
    report_parser.add_argument(
        "-o", "--output", default=None,
        help="write to a file instead of stdout",
    )

    sub.add_parser(
        "sweep", add_help=False,
        help="parallel design-space sweeps (repro sweep --help)",
    )

    args = parser.parse_args(argv)
    if args.command == "list":
        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("benchmarks:")
        for name in BENCHMARK_NAMES:
            print(f"  {name}")
        return 0
    if args.command == "run":
        return _run_experiments(args.experiments)
    if args.command == "bench":
        return _run_bench(args.benchmark)
    if args.command == "disasm":
        return _disasm(args.benchmark)
    if args.command == "profile":
        return _profile(args.benchmark)
    if args.command == "trace":
        output = args.output or f"{args.benchmark}.npz"
        return _export_trace(args.benchmark, output)
    if args.command == "report":
        from repro.experiments import report

        report.main(output=args.output)
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
