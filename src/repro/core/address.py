"""Partial address arithmetic for the MAB datapath (paper Figure 3).

The memory-address generation unit computes ``base + displacement``
with a full 32-bit adder on the critical path.  The MAB instead runs a
narrow adder over only the low ``low_bits`` bits (14 for the FR-V's
32 kB caches: 5 offset + 9 index bits) concurrently with the wide
adder.  Its outputs are:

* the exact low 14 bits of the sum — the set-index and line offset are
  therefore always exact, regardless of displacement size;
* the carry-out ``c`` of the narrow adder;
* the *sign class* of the displacement: whether its upper
  ``32 - low_bits`` bits are all zero, all one, or mixed.

When the sign class is not ``OTHER`` the target tag is computable
without the wide adder::

    tag(base + disp) = (tag(base) + c - sign) mod 2**tag_bits

which is why the MAB can match tags one full adder earlier than the
address is available.  ``OTHER`` (|disp| >= 2**(low_bits - 1)) forces a
MAB bypass; the paper measures this at under 1 % of accesses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

_M32 = 0xFFFFFFFF


class SignClass(enum.IntEnum):
    """Classification of a displacement's upper bits (Figure 3's 0/1/*)."""

    ZERO = 0   #: upper bits all zero (0 <= disp < 2**(low_bits-1))
    ONE = 1    #: upper bits all one (-2**(low_bits-1) <= disp < 0)
    OTHER = 2  #: anything else — MAB cannot be used


@dataclass(frozen=True)
class PartialSum:
    """Result of the narrow-adder datapath for one (base, disp) pair.

    Attributes
    ----------
    low:
        The exact low ``low_bits`` bits of ``base + disp``.
    carry:
        Carry-out of the narrow adder (0 or 1).
    sign:
        :class:`SignClass` of the displacement.
    base_tag:
        Upper ``32 - low_bits`` bits of the *base* address (what the
        MAB tag comparators see).
    low_bits:
        Width of the narrow adder.
    """

    low: int
    carry: int
    sign: SignClass
    base_tag: int
    low_bits: int

    @property
    def usable(self) -> bool:
        """False when the displacement is too large for the MAB."""
        return self.sign is not SignClass.OTHER

    @property
    def cflag(self) -> int:
        """The stored 2-bit flag: (carry << 1) | sign bit."""
        return (self.carry << 1) | int(self.sign)

    def target_tag(self, tag_bits: int) -> int:
        """Tag of ``base + disp`` reconstructed without the wide adder.

        Only meaningful when :attr:`usable` is True.
        """
        if not self.usable:
            raise ValueError("target tag undefined for OTHER sign class")
        adjust = self.carry - (1 if self.sign is SignClass.ONE else 0)
        return (self.base_tag + adjust) & ((1 << tag_bits) - 1)

    def set_index(self, offset_bits: int, index_bits: int) -> int:
        """Set-index field of the sum (always exact)."""
        return (self.low >> offset_bits) & ((1 << index_bits) - 1)


def displacement_sign_class(disp: int, low_bits: int = 14) -> SignClass:
    """Classify the upper ``32 - low_bits`` bits of a displacement.

    ``disp`` is interpreted as a 32-bit two's complement value.
    """
    upper = ((disp & _M32) >> low_bits) & ((1 << (32 - low_bits)) - 1)
    if upper == 0:
        return SignClass.ZERO
    if upper == (1 << (32 - low_bits)) - 1:
        return SignClass.ONE
    return SignClass.OTHER


def partial_add(base: int, disp: int, low_bits: int = 14) -> PartialSum:
    """Run the narrow-adder datapath on ``(base, disp)``.

    >>> ps = partial_add(0x0004_1000, 16)
    >>> ps.carry, ps.sign
    (0, <SignClass.ZERO: 0>)
    >>> ps.target_tag(18) == (0x0004_1000 + 16) >> 14
    True
    """
    if not 1 <= low_bits <= 31:
        raise ValueError("low_bits must be in [1, 31]")
    mask = (1 << low_bits) - 1
    base &= _M32
    raw = (base & mask) + ((disp & _M32) & mask)
    return PartialSum(
        low=raw & mask,
        carry=raw >> low_bits,
        sign=displacement_sign_class(disp, low_bits),
        base_tag=base >> low_bits,
        low_bits=low_bits,
    )
