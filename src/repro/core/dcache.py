"""Way-memoizing D-cache controller (paper Section 3.1, Figure 1).

Replays a :class:`~repro.sim.trace.DataTrace` through a set-associative
cache fronted by a MAB and counts tag/way accesses:

* **MAB hit** — no tag reads, exactly one data way accessed (the
  memoized way).
* **MAB miss / bypass** — a normal access: all ways' tags are compared;
  loads read all data ways in parallel, stores write only the single
  resolved way (the write-back buffer makes single-way stores possible
  on the baseline FR-V too, Section 4).  The resolved way is then
  installed in the MAB.
* A cache **miss** additionally writes the refill into one way.

Every MAB hit is verified against the actual cache content; a mismatch
is a *stale hit* and is counted (``AccessCounters.stale_hits``).  The
paper's consistency argument predicts zero.

:meth:`WayMemoDCache.process` is the fast engine: it inlines the
flat-state MAB and cache kernels into one loop, verifies a MAB hit
and performs the LRU touch in a *single* tag comparison instead of
the historical ``probe()`` + ``access()`` double scan, and
accumulates counters in local ints.
:meth:`WayMemoDCache.process_reference` keeps the original
object-API implementation verbatim as the executable specification;
``tests/test_fastpath_differential.py`` asserts the two agree
counter-for-counter and state-for-state on every workload.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.core.mab import MAB, MABConfig
from repro.replay.columns import DataColumns, columns_for_stream
from repro.sim.trace import DataTrace


class WayMemoDCache:
    """D-cache with the paper's way-memoization MAB in front.

    Parameters
    ----------
    cache_config:
        Cache geometry; defaults to the FR-V 32 kB 2-way D-cache.
    mab_config:
        MAB size/consistency; the paper found 2x8 optimal for D-caches.
    policy:
        Cache replacement policy name (default ``lru``).
    """

    name = "way-memo"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        mab_config: MABConfig = MABConfig(2, 8),
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.mab_config = mab_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.mab = MAB(mab_config, cache_config)
        self.write_buffer = WriteBuffer(cache_config)
        if mab_config.consistency == "evict_hook":
            self.cache.add_eviction_listener(self.mab.invalidate_line)

    # ------------------------------------------------------------------

    def process(self, trace: DataTrace) -> AccessCounters:
        """Replay ``trace`` and return the access counters (fast engine)."""
        return self.process_columns(columns_for_stream(trace))

    def process_columns(self, cols: DataColumns) -> AccessCounters:
        """Replay a pre-split columnar trace (fast engine).

        The MAB lookup/install rules and the cache scan are inlined
        into one flat loop over local bindings of the shared state
        (the MAB and cache objects stay authoritative: the loop
        mutates their lists/dicts in place and syncs the scalar
        counters afterwards).  The per-access columns — tag, set
        index, packed narrow-adder MAB key (paper Figure 3), store
        flag, effective address — depend only on the trace and the
        cache geometry, so they come pre-split (and shareable across
        architectures) from :mod:`repro.replay.columns`.
        ``process_reference`` is the readable specification this loop
        is differentially tested against.
        """
        counters = AccessCounters()
        cache = self.cache
        mab = self.mab

        # -- cache state, bound locally ---------------------------------
        nways = cache.ways
        way_range = range(nways)
        two_way = nways == 2
        ctags = cache._tags
        cdirty = cache._dirty
        lru = cache._lru
        lru2 = lru is not None and nways == 2
        policy_touch = cache.policy.touch
        policy_victim = cache.policy.victim
        listeners = cache._eviction_listeners
        c_hits = 0
        c_misses = 0
        c_evictions = 0
        c_writebacks = 0

        # -- MAB state, bound locally -----------------------------------
        nt, ns = mab._nt, mab._ns
        keys = mab._keys
        key_map = mab._key_map
        key_map_get = key_map.get
        idx_vals = mab._idx_vals
        idx_map = mab._idx_map
        idx_map_get = idx_map.get
        vmask = mab._vmask
        mab_ways = mab._ways
        tag_stamp = mab._tag_stamp
        idx_stamp = mab._idx_stamp
        stamp = mab._stamp

        wbuf_push = self.write_buffer.push

        # The narrow-adder reconstruction of (tag, set) is numerically
        # identical to the plain address split for every access (the
        # fuzz/differential suites assert this), so one shared column
        # set serves both the MAB and the cache scan.
        tags_l, sets_l = cols.cache_streams(
            cache.offset_bits, cache.index_bits
        )
        keys_l = cols.mab_keys(cache.offset_bits, cache.index_bits)
        stores = cols.writes()
        addrs = cols.addrs()

        mab_hits = 0
        mab_bypasses = 0
        stale_hits = 0
        tag_accesses = 0
        way_accesses = 0

        for key, tag, set_index, is_store, addr in zip(
            keys_l, tags_l, sets_l, stores, addrs
        ):
            install = key >= 0
            if not install:
                # Large displacement: MAB bypass + column clear rule.
                mab_bypasses += 1
                j = idx_map_get(set_index, -1)
                if j >= 0:
                    clear = ~(1 << j)
                    for i in range(nt):
                        vmask[i] &= clear
            else:
                te = key_map_get(key, -1)
                ie = idx_map_get(set_index, -1)
                if te >= 0 and ie >= 0 and vmask[te] >> ie & 1:
                    # MAB hit: touch both sides' LRU, then verify the
                    # memoized way and complete the cache hit in a
                    # single tag comparison (a tag lives in at most
                    # one way, so checking the memoized way is
                    # equivalent to the historical full probe).
                    tag_stamp[te] = stamp
                    idx_stamp[ie] = stamp + 1
                    stamp += 2
                    way = mab_ways[te][ie]
                    if ctags[set_index][way] == tag:
                        c_hits += 1
                        if lru2:
                            order = lru[set_index]
                            if order[1] != way:
                                order[0], order[1] = order[1], order[0]
                        elif lru is not None:
                            order = lru[set_index]
                            if order[-1] != way:
                                order.remove(way)
                                order.append(way)
                        else:
                            policy_touch(set_index, way)
                        if is_store:
                            cdirty[set_index][way] = True
                            wbuf_push(addr)
                        mab_hits += 1
                        way_accesses += 1  # memoized way only
                        continue
                    # Stale memoization: functionally this would return
                    # the wrong line.  Count it; repair below.
                    stale_hits += 1

            # -- full access: all tags compared (inline cache scan) -----
            if is_store:
                wbuf_push(addr)
            row = ctags[set_index]
            if two_way:
                if row[0] == tag:
                    hit_way = 0
                elif row[1] == tag:
                    hit_way = 1
                else:
                    hit_way = -1
            else:
                hit_way = -1
                for w in way_range:
                    if row[w] == tag:
                        hit_way = w
                        break
            tag_accesses += nways
            if hit_way >= 0:
                c_hits += 1
                way = hit_way
                if lru2:
                    order = lru[set_index]
                    if order[1] != way:
                        order[0], order[1] = order[1], order[0]
                elif lru is not None:
                    order = lru[set_index]
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                else:
                    policy_touch(set_index, way)
                if is_store:
                    cdirty[set_index][way] = True
                way_accesses += 1 if is_store else nways
            else:
                c_misses += 1
                if lru is not None:
                    order = lru[set_index]
                    way = order[0]
                else:
                    way = policy_victim(set_index)
                    order = None
                evicted = row[way]
                dirty_row = cdirty[set_index]
                if evicted >= 0:
                    c_evictions += 1
                    if dirty_row[way]:
                        c_writebacks += 1
                    if listeners:
                        for listener in listeners:
                            listener(evicted, set_index)
                row[way] = tag
                dirty_row[way] = is_store
                if lru2:
                    order[0], order[1] = order[1], order[0]
                elif lru is not None:
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                else:
                    policy_touch(set_index, way)
                way_accesses += (1 if is_store else nways) + 1

            # -- MAB install: the four cases of Section 3.3 -------------
            if install:
                if te < 0:
                    if nt == 2:
                        te = 0 if tag_stamp[0] < tag_stamp[1] else 1
                    else:
                        best = tag_stamp[0]
                        te = 0
                        for slot in range(1, nt):
                            if tag_stamp[slot] < best:
                                best = tag_stamp[slot]
                                te = slot
                    old = keys[te]
                    if old >= 0:
                        del key_map[old]
                    keys[te] = key
                    key_map[key] = te
                    vmask[te] = 0
                if ie < 0:
                    best = idx_stamp[0]
                    ie = 0
                    for slot in range(1, ns):
                        if idx_stamp[slot] < best:
                            best = idx_stamp[slot]
                            ie = slot
                    old = idx_vals[ie]
                    if old >= 0:
                        del idx_map[old]
                    idx_vals[ie] = set_index
                    idx_map[set_index] = ie
                    clear = ~(1 << ie)
                    for i in range(nt):
                        vmask[i] &= clear
                vmask[te] |= 1 << ie
                mab_ways[te][ie] = way
                tag_stamp[te] = stamp
                idx_stamp[ie] = stamp + 1
                stamp += 2

        # -- sync shared counters back ----------------------------------
        n = len(keys_l)
        mab._stamp = stamp
        mab.lookups += n
        # A stale hit still matched in the MAB (the reference
        # lookup path counts it), it just failed cache verification.
        mab.hits += mab_hits + stale_hits
        mab.bypasses += mab_bypasses
        cache.hits += c_hits
        cache.misses += c_misses
        cache.evictions += c_evictions
        cache.writebacks += c_writebacks

        num_stores = cols.num_stores
        counters.accesses = n
        counters.loads = n - num_stores
        counters.stores = num_stores
        counters.mab_lookups = n
        counters.mab_hits = mab_hits
        counters.mab_bypasses = mab_bypasses
        counters.stale_hits = stale_hits
        counters.cache_hits = c_hits
        counters.cache_misses = c_misses
        counters.tag_accesses = tag_accesses
        counters.way_accesses = way_accesses
        counters.notes["mab_label"] = self.mab_config.label
        counters.notes["write_buffer_coalesced"] = self.write_buffer.coalesced
        return counters

    # ------------------------------------------------------------------
    # reference implementation (executable specification)
    # ------------------------------------------------------------------

    def process_reference(self, trace: DataTrace) -> AccessCounters:
        """Replay ``trace`` through the original object-API path.

        Kept as the executable specification the fast engine is
        differentially tested against; runs the historical
        ``probe()``-then-``access()`` double scan on MAB hits.
        """
        counters = AccessCounters()
        cache = self.cache
        mab = self.mab
        wbuf = self.write_buffer

        bases = trace.base.tolist()
        disps = trace.disp.tolist()
        stores = trace.store.tolist()

        for base, disp, is_store in zip(bases, disps, stores):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            counters.mab_lookups += 1

            lookup = mab.lookup(base, disp)
            addr = (base + disp) & 0xFFFFFFFF

            if lookup.bypass:
                counters.mab_bypasses += 1
                mab.on_bypass(lookup.set_index)
                self._full_access(
                    counters, addr, is_store, install=None
                )
                continue

            if lookup.hit:
                actual = cache.probe(addr)
                if actual is not None and actual == lookup.way:
                    counters.mab_hits += 1
                    if is_store:
                        wbuf.push(addr)
                    result = cache.access(addr, write=is_store)
                    counters.cache_hits += 1
                    counters.way_accesses += 1  # memoized way only
                    assert result.hit, "MAB hit must be a cache hit"
                    continue
                counters.stale_hits += 1

            self._full_access(counters, addr, is_store, install=lookup)

        counters.notes["mab_label"] = self.mab_config.label
        counters.notes["write_buffer_coalesced"] = self.write_buffer.coalesced
        return counters

    # ------------------------------------------------------------------

    def _full_access(self, counters, addr, is_store, install) -> None:
        """Normal cache access (all tags compared), then MAB install."""
        cfg = self.cache_config
        if is_store:
            self.write_buffer.push(addr)
        result = self.cache.access(addr, write=is_store)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            # Loads read all data ways in parallel with the tag
            # compare; the write-back buffer lets stores touch only
            # the resolved way.
            counters.way_accesses += 1 if is_store else cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += (1 if is_store else cfg.ways) + 1
        if install is not None:
            self.mab.install(install, result.way)
