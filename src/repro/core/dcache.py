"""Way-memoizing D-cache controller (paper Section 3.1, Figure 1).

Replays a :class:`~repro.sim.trace.DataTrace` through a set-associative
cache fronted by a MAB and counts tag/way accesses:

* **MAB hit** — no tag reads, exactly one data way accessed (the
  memoized way).
* **MAB miss / bypass** — a normal access: all ways' tags are compared;
  loads read all data ways in parallel, stores write only the single
  resolved way (the write-back buffer makes single-way stores possible
  on the baseline FR-V too, Section 4).  The resolved way is then
  installed in the MAB.
* A cache **miss** additionally writes the refill into one way.

Every MAB hit is verified against the actual cache content; a mismatch
is a *stale hit* and is counted (``AccessCounters.stale_hits``).  The
paper's consistency argument predicts zero.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.cache.write_buffer import WriteBuffer
from repro.core.mab import MAB, MABConfig
from repro.sim.trace import DataTrace


class WayMemoDCache:
    """D-cache with the paper's way-memoization MAB in front.

    Parameters
    ----------
    cache_config:
        Cache geometry; defaults to the FR-V 32 kB 2-way D-cache.
    mab_config:
        MAB size/consistency; the paper found 2x8 optimal for D-caches.
    policy:
        Cache replacement policy name (default ``lru``).
    """

    name = "way-memo"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        mab_config: MABConfig = MABConfig(2, 8),
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.mab_config = mab_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.mab = MAB(mab_config, cache_config)
        self.write_buffer = WriteBuffer(cache_config)
        if mab_config.consistency == "evict_hook":
            self.cache.add_eviction_listener(self.mab.invalidate_line)

    # ------------------------------------------------------------------

    def process(self, trace: DataTrace) -> AccessCounters:
        """Replay ``trace`` and return the access counters."""
        counters = AccessCounters()
        cfg = self.cache_config
        nways = cfg.ways
        cache = self.cache
        mab = self.mab
        wbuf = self.write_buffer

        bases = trace.base.tolist()
        disps = trace.disp.tolist()
        stores = trace.store.tolist()

        for base, disp, is_store in zip(bases, disps, stores):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            counters.mab_lookups += 1

            lookup = mab.lookup(base, disp)
            addr = (base + disp) & 0xFFFFFFFF

            if lookup.bypass:
                counters.mab_bypasses += 1
                mab.on_bypass(lookup.set_index)
                self._full_access(
                    counters, addr, is_store, install=None
                )
                continue

            if lookup.hit:
                actual = cache.probe(addr)
                if actual is not None and actual == lookup.way:
                    counters.mab_hits += 1
                    if is_store:
                        wbuf.push(addr)
                    result = cache.access(addr, write=is_store)
                    counters.cache_hits += 1
                    counters.way_accesses += 1  # memoized way only
                    assert result.hit, "MAB hit must be a cache hit"
                    continue
                # Stale memoization: functionally this would return the
                # wrong line.  Count it and repair with a full access.
                counters.stale_hits += 1

            self._full_access(counters, addr, is_store, install=lookup)

        counters.notes["mab_label"] = self.mab_config.label
        counters.notes["write_buffer_coalesced"] = self.write_buffer.coalesced
        return counters

    # ------------------------------------------------------------------

    def _full_access(self, counters, addr, is_store, install) -> None:
        """Normal cache access (all tags compared), then MAB install."""
        cfg = self.cache_config
        if is_store:
            self.write_buffer.push(addr)
        result = self.cache.access(addr, write=is_store)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            # Loads read all data ways in parallel with the tag
            # compare; the write-back buffer lets stores touch only
            # the resolved way.
            counters.way_accesses += 1 if is_store else cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += (1 if is_store else cfg.ways) + 1
        if install is not None:
            self.mab.install(install, result.way)
