"""Way memoization combined with a line buffer (paper's future work).

The conclusion states: "We are currently extending our approach by
combining it with the line buffer technique to achieve more saving."
This module implements that combination for the D-cache:

* a small LRU line buffer sits in front of the cache; a buffer hit
  serves the access without touching tag or data arrays at all
  (cost: one buffer read, counted in ``aux_accesses``);
* buffer misses fall through to the normal MAB way-memoization path
  and allocate the line into the buffer.

The buffer is kept coherent with the cache via the eviction listener,
and dirty data is assumed written through to the cache arrays when a
line leaves the buffer (energy for that is charged as a way access).
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_DCACHE
from repro.cache.line_buffer import LineBuffer
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.core.mab import MAB, MABConfig
from repro.sim.trace import DataTrace


class LineBufferWayMemoDCache:
    """D-cache with line buffer + MAB way memoization stacked."""

    name = "way-memo+line-buffer"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_DCACHE,
        mab_config: MABConfig = MABConfig(2, 8),
        line_buffer_entries: int = 1,
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.mab_config = mab_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.mab = MAB(mab_config, cache_config)
        self.line_buffer = LineBuffer(cache_config, line_buffer_entries)
        if mab_config.consistency == "evict_hook":
            self.cache.add_eviction_listener(self.mab.invalidate_line)
        # Keep the buffer coherent with the cache regardless of mode.
        self.cache.add_eviction_listener(self._on_cache_evict)

    def _on_cache_evict(self, tag: int, set_index: int) -> None:
        self.line_buffer.invalidate_line(
            self.cache_config.join(tag, set_index)
        )

    # ------------------------------------------------------------------

    def process(self, trace: DataTrace) -> AccessCounters:
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        mab = self.mab
        lbuf = self.line_buffer

        for base, disp, is_store in zip(
            trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
        ):
            counters.accesses += 1
            if is_store:
                counters.stores += 1
            else:
                counters.loads += 1
            addr = (base + disp) & 0xFFFFFFFF

            counters.aux_accesses += 1  # the buffer is probed every access
            if lbuf.access(addr):
                # Line buffer hit: no cache arrays touched.  Keep the
                # cache's replacement state in step (the line is
                # architecturally still resident and used).
                result = cache.access(addr, write=is_store)
                assert result.hit, "buffered line must be cache-resident"
                counters.cache_hits += 1
                continue

            counters.mab_lookups += 1
            lookup = mab.lookup(base, disp)

            if lookup.bypass:
                counters.mab_bypasses += 1
                mab.on_bypass(lookup.set_index)
                self._full_access(counters, addr, is_store, None)
                continue

            if lookup.hit:
                # Verify the memoized way and complete the hit in one
                # tag comparison (replaces the probe() + access()
                # double scan; a tag lives in at most one way).
                if cache.hit_confirm(
                    lookup.tag, lookup.set_index, lookup.way, is_store
                ):
                    counters.mab_hits += 1
                    counters.cache_hits += 1
                    counters.way_accesses += 1
                    continue
                counters.stale_hits += 1

            self._full_access(counters, addr, is_store, lookup)

        counters.notes["mab_label"] = self.mab_config.label
        counters.notes["line_buffer_hit_rate"] = self.line_buffer.hit_rate
        return counters

    def _full_access(self, counters, addr, is_store, install) -> None:
        cfg = self.cache_config
        result = self.cache.access(addr, write=is_store)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            counters.way_accesses += 1 if is_store else cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += (1 if is_store else cfg.ways) + 1
        if install is not None:
            self.mab.install(install, result.way)
