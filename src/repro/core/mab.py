"""The Memory Address Buffer (paper Section 3.3, Figure 3).

The MAB is a cross-product cache over addresses: ``Nt`` tag-side
entries, each holding an 18-bit base tag plus the 2-bit ``cflag``
(narrow-adder carry, displacement sign), and ``Ns`` set-index-side
entries of 9 bits each.  A ``vflag[i][j]`` bit validates the pair
(tag entry *i*, index entry *j*), and each valid pair memoizes the
cache way that holds the line — so ``Nt + Ns`` stored values can cover
``Nt * Ns`` distinct addresses.  Both sides are managed LRU.

Update rules on a MAB miss (the four cases of Section 3.3):

1. tag hit *i*, index hit *j* (pair was merely invalid):
   set ``vflag[i][j]``;
2. tag miss, index hit *j*: evict LRU tag entry *i*, clear row
   ``vflag[i][*]``, set ``vflag[i][j]``;
3. tag hit *i*, index miss: evict LRU index entry *j*, clear column
   ``vflag[*][j]``, set ``vflag[i][j]``;
4. both miss: evict both LRU entries, clear the row and the column,
   set ``vflag[i][j]``.

Consistency with the cache ("a valid MAB pair always resides in the
cache") is maintained by two mechanisms selectable via
``MABConfig.consistency``:

* ``"paper"`` — only the paper's rules: the row/column clears above
  plus clearing the column of any large-displacement (bypassing)
  access.  The paper argues this suffices while the number of tag
  entries does not exceed the cache associativity.
* ``"evict_hook"`` — additionally invalidate any pair matching a line
  the cache evicts (a conservative guarantee).  The
  ``ablation_consistency`` experiment measures whether the paper mode
  ever yields a stale hit on our workloads.

Implementation notes (fast engine): state is flat — tag-side keys are
packed ``(base_tag << 2) | cflag`` ints mirrored in a dict for O(1)
match, ``vflag`` rows are int bitmasks, and LRU order is kept as
monotonically increasing use-stamps (victim = argmin) so a touch never
runs ``list.remove``.  The hot-path API is
:meth:`MAB.lookup_fast`/:meth:`MAB.install_fast` (plain ints/tuples,
no per-lookup object churn); :meth:`lookup`/:meth:`install` wrap them
to keep the original dataclass-based API for tests and cold callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.core.address import PartialSum, partial_add

CONSISTENCY_MODES = ("paper", "evict_hook")

#: ``status`` values of :meth:`MAB.lookup_fast`.
LOOKUP_MISS = 0
LOOKUP_HIT = 1
LOOKUP_BYPASS = 2

_M32 = 0xFFFFFFFF


@dataclass(frozen=True)
class MABConfig:
    """Size and behaviour of one MAB instance.

    ``tag_entries`` × ``index_entries`` is written "Nt x Ns" in the
    paper (e.g. the 2x8-entry MAB used for the D-cache).
    """

    tag_entries: int = 2
    index_entries: int = 8
    consistency: str = "paper"

    def __post_init__(self):
        if self.tag_entries < 1 or self.index_entries < 1:
            raise ValueError("MAB needs at least one entry per side")
        if self.consistency not in CONSISTENCY_MODES:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_MODES}"
            )

    @property
    def label(self) -> str:
        return f"{self.tag_entries}x{self.index_entries}"


@dataclass(frozen=True)
class MABLookup:
    """Outcome of one MAB lookup.

    ``tag`` and ``set_index`` are the *cache* tag/set of the target
    address (tag reconstructed via the cflag rule); they are valid
    whenever ``bypass`` is False.
    """

    hit: bool
    bypass: bool
    way: Optional[int]
    tag: Optional[int]
    set_index: int
    tag_entry: Optional[int]
    index_entry: Optional[int]
    partial: PartialSum = field(repr=False, default=None)


class MAB:
    """A Memory Address Buffer bound to a cache geometry."""

    def __init__(self, config: MABConfig, cache_config: CacheConfig):
        self.config = config
        self.cache_config = cache_config
        self.low_bits = cache_config.offset_bits + cache_config.index_bits
        self.tag_bits = 32 - self.low_bits
        # Precomputed geometry for the inline narrow-adder datapath.
        self._low_mask = (1 << self.low_bits) - 1
        self._upper_mask = (1 << (32 - self.low_bits)) - 1
        self._tag_mask = (1 << self.tag_bits) - 1
        self._offset_bits = cache_config.offset_bits
        self._index_mask = (1 << cache_config.index_bits) - 1
        nt, ns = config.tag_entries, config.index_entries
        self._nt = nt
        self._ns = ns
        # Tag side: packed (base_tag << 2) | cflag per slot, -1 empty,
        # mirrored in a dict for O(1) match.
        self._keys: List[int] = [-1] * nt
        self._key_map: Dict[int, int] = {}
        # Index side: 9-bit set-index per slot, -1 empty.
        self._idx_vals: List[int] = [-1] * ns
        self._idx_map: Dict[int, int] = {}
        # Validity matrix as one bitmask per tag row (bit j = pair i,j).
        self._vmask: List[int] = [0] * nt
        self._ways: List[List[int]] = [[0] * ns for _ in range(nt)]
        # LRU as use-stamps: victim = slot with the smallest stamp.
        # Initial stamps replicate the cold order "slot 0 is LRU".
        self._tag_stamp: List[int] = list(range(nt))
        self._idx_stamp: List[int] = list(range(ns))
        self._stamp = nt + ns
        # Statistics.
        self.lookups = 0
        self.hits = 0
        self.bypasses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # fast path
    # ------------------------------------------------------------------

    def lookup_fast(
        self, base: int, disp: int
    ) -> Tuple[int, int, int, int, int, int, int]:
        """Probe the MAB; allocation-free except for the result tuple.

        Returns ``(status, way, tag_entry, index_entry, key,
        target_tag, set_index)`` with ``status`` one of
        :data:`LOOKUP_MISS` / :data:`LOOKUP_HIT` / :data:`LOOKUP_BYPASS`
        and absent entries encoded as ``-1``.  ``key`` is the packed
        ``(base_tag << 2) | cflag`` the tag side matches on; pass it
        (with the entries and ``set_index``) to :meth:`install_fast`
        after a miss resolves.  A hit touches both sides' LRU state.
        """
        self.lookups += 1
        low_bits = self.low_bits
        low_mask = self._low_mask
        base &= _M32
        disp &= _M32
        raw = (base & low_mask) + (disp & low_mask)
        set_index = ((raw & low_mask) >> self._offset_bits) & self._index_mask
        upper = (disp >> low_bits) & self._upper_mask
        if upper == 0:
            sign = 0
        elif upper == self._upper_mask:
            sign = 1
        else:
            self.bypasses += 1
            return (LOOKUP_BYPASS, -1, -1, -1, -1, -1, set_index)

        base_tag = base >> low_bits
        carry = raw >> low_bits
        key = (base_tag << 2) | (carry << 1) | sign
        target_tag = (base_tag + carry - sign) & self._tag_mask

        tag_entry = self._key_map.get(key, -1)
        index_entry = self._idx_map.get(set_index, -1)
        if (
            tag_entry >= 0
            and index_entry >= 0
            and self._vmask[tag_entry] >> index_entry & 1
        ):
            self.hits += 1
            stamp = self._stamp
            self._tag_stamp[tag_entry] = stamp
            self._idx_stamp[index_entry] = stamp + 1
            self._stamp = stamp + 2
            return (
                LOOKUP_HIT, self._ways[tag_entry][index_entry],
                tag_entry, index_entry, key, target_tag, set_index,
            )
        return (
            LOOKUP_MISS, -1, tag_entry, index_entry, key, target_tag,
            set_index,
        )

    def install_fast(
        self, tag_entry: int, index_entry: int, key: int,
        set_index: int, way: int,
    ) -> None:
        """Memoize ``way`` after a miss (the four cases of Section 3.3).

        ``tag_entry`` / ``index_entry`` are the slots reported by
        :meth:`lookup_fast` (``-1`` = that side missed and its LRU
        entry is replaced, clearing the row/column).
        """
        if tag_entry < 0:
            stamps = self._tag_stamp
            tag_entry = 0
            best = stamps[0]
            for slot in range(1, self._nt):
                if stamps[slot] < best:
                    best = stamps[slot]
                    tag_entry = slot
            old = self._keys[tag_entry]
            if old >= 0:
                del self._key_map[old]
            self._keys[tag_entry] = key
            self._key_map[key] = tag_entry
            self._vmask[tag_entry] = 0
        if index_entry < 0:
            stamps = self._idx_stamp
            index_entry = 0
            best = stamps[0]
            for slot in range(1, self._ns):
                if stamps[slot] < best:
                    best = stamps[slot]
                    index_entry = slot
            old = self._idx_vals[index_entry]
            if old >= 0:
                del self._idx_map[old]
            self._idx_vals[index_entry] = set_index
            self._idx_map[set_index] = index_entry
            clear = ~(1 << index_entry)
            vmask = self._vmask
            for i in range(self._nt):
                vmask[i] &= clear
        self._vmask[tag_entry] |= 1 << index_entry
        self._ways[tag_entry][index_entry] = way
        stamp = self._stamp
        self._tag_stamp[tag_entry] = stamp
        self._idx_stamp[index_entry] = stamp + 1
        self._stamp = stamp + 2

    # ------------------------------------------------------------------
    # object API (thin wrappers over the fast path)
    # ------------------------------------------------------------------

    def lookup(self, base: int, disp: int) -> MABLookup:
        """Probe the MAB with address-generation inputs.

        A hit touches both sides' LRU state (the paper updates MAB
        entries with an LRU policy on every use).
        """
        status, way, tag_entry, index_entry, _, tag, set_index = (
            self.lookup_fast(base, disp)
        )
        partial = partial_add(base, disp, self.low_bits)
        if status == LOOKUP_BYPASS:
            return MABLookup(
                hit=False, bypass=True, way=None, tag=None,
                set_index=set_index, tag_entry=None, index_entry=None,
                partial=partial,
            )
        return MABLookup(
            hit=status == LOOKUP_HIT, bypass=False,
            way=way if status == LOOKUP_HIT else None, tag=tag,
            set_index=set_index,
            tag_entry=tag_entry if tag_entry >= 0 else None,
            index_entry=index_entry if index_entry >= 0 else None,
            partial=partial,
        )

    def install(self, lookup: MABLookup, way: int) -> None:
        """Memoize the resolved ``way`` for the missed address.

        Implements the four hit/miss cases of Section 3.3, including
        the row/column ``vflag`` clearing on entry replacement.
        """
        if lookup.bypass:
            raise ValueError("cannot install a bypassed lookup")
        partial = lookup.partial
        key = (partial.base_tag << 2) | partial.cflag
        self.install_fast(
            lookup.tag_entry if lookup.tag_entry is not None else -1,
            lookup.index_entry if lookup.index_entry is not None else -1,
            key, lookup.set_index, way,
        )

    def on_bypass(self, set_index: int) -> None:
        """Apply the paper's large-displacement consistency rule.

        A bypassing access still reaches the cache and may replace a
        line in ``set_index``; since the MAB was not consulted, any
        memoized pair for that set could go stale.  The set-index of
        the sum is exact even for large displacements (it only needs
        the narrow adder), so the matching column is cleared.
        """
        j = self._idx_map.get(set_index, -1)
        if j >= 0:
            clear = ~(1 << j)
            vmask = self._vmask
            for i in range(self._nt):
                vmask[i] &= clear

    def invalidate_line(self, tag: int, set_index: int) -> None:
        """Drop every pair matching an evicted cache line.

        Only used in ``evict_hook`` consistency mode.  Matching is on
        the *reconstructed* cache tag, since several (base_tag, cflag)
        keys can denote the same line.
        """
        j = self._idx_map.get(set_index, -1)
        if j < 0:
            return
        bit = 1 << j
        tag_mask = self._tag_mask
        for i, key in enumerate(self._keys):
            if key < 0 or not self._vmask[i] & bit:
                continue
            base_tag = key >> 2
            carry, sign = key >> 1 & 1, key & 1
            final = (base_tag + carry - sign) & tag_mask
            if final == tag:
                self._vmask[i] &= ~bit
                self.invalidations += 1

    def flush(self) -> None:
        """Invalidate all pairs and reset to the cold state.

        Used e.g. on context switch.  Besides clearing every ``vflag``
        this also drops the stored tag/index entries and resets both
        sides' LRU order, so a flushed MAB behaves exactly like a
        freshly constructed one (the activity counters ``lookups`` /
        ``hits`` / ``bypasses`` / ``invalidations`` are measurement
        accumulators and deliberately survive the flush).
        """
        nt, ns = self._nt, self._ns
        self._keys = [-1] * nt
        self._key_map.clear()
        self._idx_vals = [-1] * ns
        self._idx_map.clear()
        self._vmask = [0] * nt
        self._tag_stamp = list(range(nt))
        self._idx_stamp = list(range(ns))
        self._stamp = nt + ns

    # ------------------------------------------------------------------
    # invariants / introspection
    # ------------------------------------------------------------------

    @property
    def addresses_covered(self) -> int:
        """Number of currently valid (tag, index) pairs."""
        return sum(mask.bit_count() for mask in self._vmask)

    def valid_pairs(self) -> List[Tuple[int, int, int]]:
        """Return valid pairs as (cache_tag, set_index, way) triples."""
        pairs = []
        mask = self._tag_mask
        for i, key in enumerate(self._keys):
            if key < 0:
                continue
            base_tag = key >> 2
            final = (base_tag + (key >> 1 & 1) - (key & 1)) & mask
            vrow = self._vmask[i]
            for j, index in enumerate(self._idx_vals):
                if index >= 0 and vrow >> j & 1:
                    pairs.append((final, index, self._ways[i][j]))
        return pairs

    def _lru_order(self, stamps: List[int]) -> List[int]:
        """Slot numbers sorted LRU first (reconstructed from stamps)."""
        return sorted(range(len(stamps)), key=stamps.__getitem__)

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        if len(set(self._tag_stamp)) != self._nt:
            raise AssertionError("tag LRU order corrupted")
        if len(set(self._idx_stamp)) != self._ns:
            raise AssertionError("index LRU order corrupted")
        for i, key in enumerate(self._keys):
            if key < 0 and self._vmask[i]:
                raise AssertionError(f"vflag set on empty tag row {i}")
        col_mask = 0
        for row in self._vmask:
            col_mask |= row
        for j, index in enumerate(self._idx_vals):
            if index < 0 and col_mask >> j & 1:
                raise AssertionError(f"vflag set on empty index column {j}")
        live_keys = [k for k in self._keys if k >= 0]
        if len(live_keys) != len(set(live_keys)):
            raise AssertionError("duplicate tag-side keys")
        if sorted(self._key_map.items()) != sorted(
            (k, i) for i, k in enumerate(self._keys) if k >= 0
        ):
            raise AssertionError("tag-side key map out of sync")
        live_idx = [s for s in self._idx_vals if s >= 0]
        if len(live_idx) != len(set(live_idx)):
            raise AssertionError("duplicate index-side entries")
        if sorted(self._idx_map.items()) != sorted(
            (s, j) for j, s in enumerate(self._idx_vals) if s >= 0
        ):
            raise AssertionError("index-side map out of sync")
