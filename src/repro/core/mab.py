"""The Memory Address Buffer (paper Section 3.3, Figure 3).

The MAB is a cross-product cache over addresses: ``Nt`` tag-side
entries, each holding an 18-bit base tag plus the 2-bit ``cflag``
(narrow-adder carry, displacement sign), and ``Ns`` set-index-side
entries of 9 bits each.  A ``vflag[i][j]`` bit validates the pair
(tag entry *i*, index entry *j*), and each valid pair memoizes the
cache way that holds the line — so ``Nt + Ns`` stored values can cover
``Nt * Ns`` distinct addresses.  Both sides are managed LRU.

Update rules on a MAB miss (the four cases of Section 3.3):

1. tag hit *i*, index hit *j* (pair was merely invalid):
   set ``vflag[i][j]``;
2. tag miss, index hit *j*: evict LRU tag entry *i*, clear row
   ``vflag[i][*]``, set ``vflag[i][j]``;
3. tag hit *i*, index miss: evict LRU index entry *j*, clear column
   ``vflag[*][j]``, set ``vflag[i][j]``;
4. both miss: evict both LRU entries, clear the row and the column,
   set ``vflag[i][j]``.

Consistency with the cache ("a valid MAB pair always resides in the
cache") is maintained by two mechanisms selectable via
``MABConfig.consistency``:

* ``"paper"`` — only the paper's rules: the row/column clears above
  plus clearing the column of any large-displacement (bypassing)
  access.  The paper argues this suffices while the number of tag
  entries does not exceed the cache associativity.
* ``"evict_hook"`` — additionally invalidate any pair matching a line
  the cache evicts (a conservative guarantee).  The
  ``ablation_consistency`` experiment measures whether the paper mode
  ever yields a stale hit on our workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.core.address import PartialSum, partial_add

CONSISTENCY_MODES = ("paper", "evict_hook")


@dataclass(frozen=True)
class MABConfig:
    """Size and behaviour of one MAB instance.

    ``tag_entries`` × ``index_entries`` is written "Nt x Ns" in the
    paper (e.g. the 2x8-entry MAB used for the D-cache).
    """

    tag_entries: int = 2
    index_entries: int = 8
    consistency: str = "paper"

    def __post_init__(self):
        if self.tag_entries < 1 or self.index_entries < 1:
            raise ValueError("MAB needs at least one entry per side")
        if self.consistency not in CONSISTENCY_MODES:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_MODES}"
            )

    @property
    def label(self) -> str:
        return f"{self.tag_entries}x{self.index_entries}"


@dataclass(frozen=True)
class MABLookup:
    """Outcome of one MAB lookup.

    ``tag`` and ``set_index`` are the *cache* tag/set of the target
    address (tag reconstructed via the cflag rule); they are valid
    whenever ``bypass`` is False.
    """

    hit: bool
    bypass: bool
    way: Optional[int]
    tag: Optional[int]
    set_index: int
    tag_entry: Optional[int]
    index_entry: Optional[int]
    partial: PartialSum = field(repr=False, default=None)


class MAB:
    """A Memory Address Buffer bound to a cache geometry."""

    def __init__(self, config: MABConfig, cache_config: CacheConfig):
        self.config = config
        self.cache_config = cache_config
        self.low_bits = cache_config.offset_bits + cache_config.index_bits
        self.tag_bits = 32 - self.low_bits
        nt, ns = config.tag_entries, config.index_entries
        # Tag side: (base_tag, cflag) or None per slot.
        self._tags: List[Optional[Tuple[int, int]]] = [None] * nt
        # Index side: 9-bit set-index or None per slot.
        self._indices: List[Optional[int]] = [None] * ns
        # LRU order per side: slot numbers, LRU first.
        self._tag_lru: List[int] = list(range(nt))
        self._index_lru: List[int] = list(range(ns))
        self._vflag: List[List[bool]] = [[False] * ns for _ in range(nt)]
        self._way: List[List[int]] = [[0] * ns for _ in range(nt)]
        # Statistics.
        self.lookups = 0
        self.hits = 0
        self.bypasses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def lookup(self, base: int, disp: int) -> MABLookup:
        """Probe the MAB with address-generation inputs.

        A hit touches both sides' LRU state (the paper updates MAB
        entries with an LRU policy on every use).
        """
        self.lookups += 1
        partial = partial_add(base, disp, self.low_bits)
        set_index = partial.set_index(
            self.cache_config.offset_bits, self.cache_config.index_bits
        )
        if not partial.usable:
            self.bypasses += 1
            return MABLookup(
                hit=False, bypass=True, way=None, tag=None,
                set_index=set_index, tag_entry=None, index_entry=None,
                partial=partial,
            )

        key = (partial.base_tag, partial.cflag)
        tag_entry = self._find_tag(key)
        index_entry = self._find_index(set_index)
        target_tag = partial.target_tag(self.tag_bits)

        hit = (
            tag_entry is not None
            and index_entry is not None
            and self._vflag[tag_entry][index_entry]
        )
        way = self._way[tag_entry][index_entry] if hit else None
        if hit:
            self.hits += 1
            self._touch_tag(tag_entry)
            self._touch_index(index_entry)
        return MABLookup(
            hit=hit, bypass=False, way=way, tag=target_tag,
            set_index=set_index, tag_entry=tag_entry,
            index_entry=index_entry, partial=partial,
        )

    # ------------------------------------------------------------------
    # update (called by controllers after a MAB miss resolves)
    # ------------------------------------------------------------------

    def install(self, lookup: MABLookup, way: int) -> None:
        """Memoize the resolved ``way`` for the missed address.

        Implements the four hit/miss cases of Section 3.3, including
        the row/column ``vflag`` clearing on entry replacement.
        """
        if lookup.bypass:
            raise ValueError("cannot install a bypassed lookup")
        partial = lookup.partial
        key = (partial.base_tag, partial.cflag)
        i = lookup.tag_entry
        j = lookup.index_entry
        if i is None:
            i = self._tag_lru[0]
            self._tags[i] = key
            self._clear_row(i)
        if j is None:
            j = self._index_lru[0]
            self._indices[j] = lookup.set_index
            self._clear_column(j)
        self._vflag[i][j] = True
        self._way[i][j] = way
        self._touch_tag(i)
        self._touch_index(j)

    def on_bypass(self, set_index: int) -> None:
        """Apply the paper's large-displacement consistency rule.

        A bypassing access still reaches the cache and may replace a
        line in ``set_index``; since the MAB was not consulted, any
        memoized pair for that set could go stale.  The set-index of
        the sum is exact even for large displacements (it only needs
        the narrow adder), so the matching column is cleared.
        """
        j = self._find_index(set_index)
        if j is not None:
            self._clear_column(j)

    def invalidate_line(self, tag: int, set_index: int) -> None:
        """Drop every pair matching an evicted cache line.

        Only used in ``evict_hook`` consistency mode.  Matching is on
        the *reconstructed* cache tag, since several (base_tag, cflag)
        keys can denote the same line.
        """
        j = self._find_index(set_index)
        if j is None:
            return
        for i, key in enumerate(self._tags):
            if key is None or not self._vflag[i][j]:
                continue
            base_tag, cflag = key
            carry, sign = cflag >> 1, cflag & 1
            final = (base_tag + carry - sign) & ((1 << self.tag_bits) - 1)
            if final == tag:
                self._vflag[i][j] = False
                self.invalidations += 1

    def flush(self) -> None:
        """Invalidate all pairs (e.g. on context switch)."""
        for row in self._vflag:
            for j in range(len(row)):
                row[j] = False

    # ------------------------------------------------------------------
    # invariants / introspection
    # ------------------------------------------------------------------

    @property
    def addresses_covered(self) -> int:
        """Number of currently valid (tag, index) pairs."""
        return sum(sum(row) for row in self._vflag)

    def valid_pairs(self) -> List[Tuple[int, int, int]]:
        """Return valid pairs as (cache_tag, set_index, way) triples."""
        pairs = []
        mask = (1 << self.tag_bits) - 1
        for i, key in enumerate(self._tags):
            if key is None:
                continue
            base_tag, cflag = key
            final = (base_tag + (cflag >> 1) - (cflag & 1)) & mask
            for j, index in enumerate(self._indices):
                if index is not None and self._vflag[i][j]:
                    pairs.append((final, index, self._way[i][j]))
        return pairs

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests)."""
        if sorted(self._tag_lru) != list(range(self.config.tag_entries)):
            raise AssertionError("tag LRU order corrupted")
        if sorted(self._index_lru) != list(
            range(self.config.index_entries)
        ):
            raise AssertionError("index LRU order corrupted")
        for i, key in enumerate(self._tags):
            if key is None and any(self._vflag[i]):
                raise AssertionError(f"vflag set on empty tag row {i}")
        for j, index in enumerate(self._indices):
            if index is None and any(row[j] for row in self._vflag):
                raise AssertionError(f"vflag set on empty index column {j}")
        live_keys = [k for k in self._tags if k is not None]
        if len(live_keys) != len(set(live_keys)):
            raise AssertionError("duplicate tag-side keys")
        live_idx = [s for s in self._indices if s is not None]
        if len(live_idx) != len(set(live_idx)):
            raise AssertionError("duplicate index-side entries")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _find_tag(self, key: Tuple[int, int]) -> Optional[int]:
        for i, stored in enumerate(self._tags):
            if stored == key:
                return i
        return None

    def _find_index(self, set_index: int) -> Optional[int]:
        for j, stored in enumerate(self._indices):
            if stored == set_index:
                return j
        return None

    def _touch_tag(self, i: int) -> None:
        self._tag_lru.remove(i)
        self._tag_lru.append(i)

    def _touch_index(self, j: int) -> None:
        self._index_lru.remove(j)
        self._index_lru.append(j)

    def _clear_row(self, i: int) -> None:
        row = self._vflag[i]
        for j in range(len(row)):
            row[j] = False

    def _clear_column(self, j: int) -> None:
        for row in self._vflag:
            row[j] = False
