"""The paper's contribution: way memoization via a Memory Address Buffer.

* :mod:`repro.core.address` — the 14-bit partial adder and the 2-bit
  ``cflag`` (carry + displacement sign class) that let the MAB resolve
  the target tag and set-index *in parallel with* the 32-bit
  address-generation adder (paper Section 3.1, Figure 3).
* :mod:`repro.core.mab` — the MAB itself: ``Nt`` tag-side entries ×
  ``Ns`` set-index-side entries, the ``vflag`` validity matrix, the
  memoized way numbers and the LRU update rules of Section 3.3.
* :mod:`repro.core.dcache` / :mod:`repro.core.icache` — controllers
  that replay data / instruction-fetch traces through a cache + MAB and
  count tag/way accesses (Figures 4 and 6).
* :mod:`repro.core.line_buffer_memo` — the conclusion's future-work
  combination of way memoization with a line buffer.
"""

from repro.core.address import (
    SignClass,
    PartialSum,
    displacement_sign_class,
    partial_add,
)
from repro.core.dcache import WayMemoDCache
from repro.core.icache import WayMemoICache
from repro.core.line_buffer_memo import LineBufferWayMemoDCache
from repro.core.mab import MAB, MABConfig, MABLookup

__all__ = [
    "LineBufferWayMemoDCache",
    "MAB",
    "MABConfig",
    "MABLookup",
    "PartialSum",
    "SignClass",
    "WayMemoDCache",
    "WayMemoICache",
    "displacement_sign_class",
    "partial_add",
]
