"""Way-memoizing I-cache controller (paper Section 3.2, Figure 2).

Replays a :class:`~repro.sim.fetch.FetchStream` (one record per 8-byte
fetch-packet access) through a cache + MAB:

* **intra-cache-line sequential flow** — the fetch stays within the
  line of the previous access: no tag access and no MAB consult; the
  previously resolved way is reused (the classic optimisation of
  Panwar & Rennels [4], which the paper keeps).
* any other flow — inter-line sequential (PC + stride), taken branch
  (branch PC + offset) or indirect/link jump (register value + imm) —
  consults the MAB with exactly the inputs Figure 2's mux selects.
  MAB hit: 0 tags, 1 way.  MAB miss: full access (all tags, all ways)
  and the resolved way is installed.

The controller tracks the line address of the previous access to
classify intra- vs inter-line flow, mirroring the hardware's
"same-line" detector.

:meth:`WayMemoICache.process` is the fast engine (flat kernels, single
tag scan on MAB hits, vectorized address splitting, local counters);
:meth:`WayMemoICache.process_reference` keeps the original object-API
implementation as the executable specification for the differential
tests.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.core.mab import MAB, MABConfig
from repro.replay.columns import FetchColumns, columns_for_stream
from repro.sim.fetch import FetchKind, FetchStream


class WayMemoICache:
    """I-cache with intra-line tracking plus the paper's MAB.

    Parameters
    ----------
    cache_config:
        Cache geometry; defaults to the FR-V 32 kB 2-way I-cache.
    mab_config:
        MAB size; the paper evaluates 2x8, 2x16 (chosen) and 2x32.
    """

    name = "way-memo"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        mab_config: MABConfig = MABConfig(2, 16),
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.mab_config = mab_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.mab = MAB(mab_config, cache_config)
        if mab_config.consistency == "evict_hook":
            self.cache.add_eviction_listener(self.mab.invalidate_line)

    # ------------------------------------------------------------------

    def process(self, fetch: FetchStream) -> AccessCounters:
        """Replay the fetch stream and return counters (fast engine)."""
        return self.process_columns(columns_for_stream(fetch))

    def process_columns(self, cols: FetchColumns) -> AccessCounters:
        """Replay a pre-split columnar fetch stream (fast engine).

        Same construction as :meth:`WayMemoDCache.process_columns`:
        the MAB rules and the cache scan are inlined into one flat
        loop over local bindings of the shared state, fed by the
        pre-split (and cross-architecture shareable) columns from
        :mod:`repro.replay.columns`.  ``process_reference`` is the
        readable specification this loop is differentially tested
        against.
        """
        counters = AccessCounters()
        cache = self.cache
        mab = self.mab

        # -- cache state, bound locally ---------------------------------
        nways = cache.ways
        way_range = range(nways)
        two_way = nways == 2
        ctags = cache._tags
        cdirty = cache._dirty
        lru = cache._lru
        lru2 = lru is not None and two_way
        policy_touch = cache.policy.touch
        policy_victim = cache.policy.victim
        listeners = cache._eviction_listeners
        c_hits = 0
        c_misses = 0
        c_evictions = 0
        c_writebacks = 0

        # -- MAB state, bound locally -----------------------------------
        nt, ns = mab._nt, mab._ns
        keys = mab._keys
        key_map = mab._key_map
        key_map_get = key_map.get
        idx_vals = mab._idx_vals
        idx_map = mab._idx_map
        idx_map_get = idx_map.get
        vmask = mab._vmask
        mab_ways = mab._ways
        tag_stamp = mab._tag_stamp
        idx_stamp = mab._idx_stamp
        stamp = mab._stamp

        seq = int(FetchKind.SEQ)

        # -- per-access inputs, pre-split -------------------------------
        # The narrow-adder reconstruction of (tag, set) is numerically
        # identical to the plain address split for every access (the
        # fuzz/differential suites assert this), so the same column
        # pair serves the intra-line path, the MAB verify and the full
        # cache scan; line numbers share the geometry's offset bits.
        offset_bits = cache.offset_bits
        index_bits = cache.index_bits
        kinds = cols.kinds()
        lines = cols.lines(offset_bits, index_bits)
        tags_l, sets_l = cols.cache_streams(offset_bits, index_bits)
        keys_l = cols.mab_keys(offset_bits, index_bits)

        last_line = -1  # line number of the previous access

        intra_line_hits = 0
        mab_lookups = 0
        mab_hits = 0
        mab_bypasses = 0
        stale_hits = 0
        tag_accesses = 0
        way_accesses = 0

        for i in range(len(kinds)):
            line = lines[i]

            if kinds[i] == seq and line == last_line:
                # Intra-cache-line sequential flow: way known from the
                # previous access, no tag or MAB activity [3, 4, 10].
                # The line is guaranteed resident, so this is a plain
                # recency touch on the hitting way.
                intra_line_hits += 1
                tag = tags_l[i]
                set_index = sets_l[i]
                row = ctags[set_index]
                if two_way:
                    if row[0] == tag:
                        way = 0
                    elif row[1] == tag:
                        way = 1
                    else:
                        raise AssertionError("intra-line fetch must hit")
                else:
                    way = -1
                    for w in way_range:
                        if row[w] == tag:
                            way = w
                            break
                    if way < 0:
                        raise AssertionError("intra-line fetch must hit")
                c_hits += 1
                if lru2:
                    order = lru[set_index]
                    if order[1] != way:
                        order[0], order[1] = order[1], order[0]
                elif lru is not None:
                    order = lru[set_index]
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                else:
                    policy_touch(set_index, way)
                way_accesses += 1
                continue

            mab_lookups += 1
            key = keys_l[i]
            tag = tags_l[i]
            set_index = sets_l[i]
            install = key >= 0
            if not install:
                # Large displacement: MAB bypass + column clear rule.
                mab_bypasses += 1
                j = idx_map_get(set_index, -1)
                if j >= 0:
                    clear = ~(1 << j)
                    for k in range(nt):
                        vmask[k] &= clear
            else:
                te = key_map_get(key, -1)
                ie = idx_map_get(set_index, -1)
                if te >= 0 and ie >= 0 and vmask[te] >> ie & 1:
                    # MAB hit: touch both sides' LRU, then verify the
                    # memoized way and complete the cache hit in a
                    # single tag comparison.
                    tag_stamp[te] = stamp
                    idx_stamp[ie] = stamp + 1
                    stamp += 2
                    way = mab_ways[te][ie]
                    if ctags[set_index][way] == tag:
                        c_hits += 1
                        if lru2:
                            order = lru[set_index]
                            if order[1] != way:
                                order[0], order[1] = order[1], order[0]
                        elif lru is not None:
                            order = lru[set_index]
                            if order[-1] != way:
                                order.remove(way)
                                order.append(way)
                        else:
                            policy_touch(set_index, way)
                        mab_hits += 1
                        way_accesses += 1
                        last_line = line
                        continue
                    stale_hits += 1

            # -- full access: all tags compared (inline cache scan) -----
            row = ctags[set_index]
            if two_way:
                if row[0] == tag:
                    hit_way = 0
                elif row[1] == tag:
                    hit_way = 1
                else:
                    hit_way = -1
            else:
                hit_way = -1
                for w in way_range:
                    if row[w] == tag:
                        hit_way = w
                        break
            tag_accesses += nways
            if hit_way >= 0:
                c_hits += 1
                way = hit_way
                if lru2:
                    order = lru[set_index]
                    if order[1] != way:
                        order[0], order[1] = order[1], order[0]
                elif lru is not None:
                    order = lru[set_index]
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                else:
                    policy_touch(set_index, way)
                way_accesses += nways
            else:
                c_misses += 1
                if lru is not None:
                    order = lru[set_index]
                    way = order[0]
                else:
                    way = policy_victim(set_index)
                    order = None
                evicted = row[way]
                dirty_row = cdirty[set_index]
                if evicted >= 0:
                    c_evictions += 1
                    if dirty_row[way]:
                        c_writebacks += 1
                    if listeners:
                        for listener in listeners:
                            listener(evicted, set_index)
                row[way] = tag
                dirty_row[way] = False
                if lru2:
                    order[0], order[1] = order[1], order[0]
                elif lru is not None:
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                else:
                    policy_touch(set_index, way)
                way_accesses += nways + 1  # parallel read + refill

            # -- MAB install: the four cases of Section 3.3 -------------
            if install:
                if te < 0:
                    if nt == 2:
                        te = 0 if tag_stamp[0] < tag_stamp[1] else 1
                    else:
                        best = tag_stamp[0]
                        te = 0
                        for slot in range(1, nt):
                            if tag_stamp[slot] < best:
                                best = tag_stamp[slot]
                                te = slot
                    old = keys[te]
                    if old >= 0:
                        del key_map[old]
                    keys[te] = key
                    key_map[key] = te
                    vmask[te] = 0
                if ie < 0:
                    best = idx_stamp[0]
                    ie = 0
                    for slot in range(1, ns):
                        if idx_stamp[slot] < best:
                            best = idx_stamp[slot]
                            ie = slot
                    old = idx_vals[ie]
                    if old >= 0:
                        del idx_map[old]
                    idx_vals[ie] = set_index
                    idx_map[set_index] = ie
                    clear = ~(1 << ie)
                    for k in range(nt):
                        vmask[k] &= clear
                vmask[te] |= 1 << ie
                mab_ways[te][ie] = way
                tag_stamp[te] = stamp
                idx_stamp[ie] = stamp + 1
                stamp += 2
            last_line = line

        # -- sync shared counters back ----------------------------------
        mab._stamp = stamp
        mab.lookups += mab_lookups
        # A stale hit still matched in the MAB (the reference
        # lookup path counts it), it just failed cache verification.
        mab.hits += mab_hits + stale_hits
        mab.bypasses += mab_bypasses
        cache.hits += c_hits
        cache.misses += c_misses
        cache.evictions += c_evictions
        cache.writebacks += c_writebacks

        counters.accesses = len(kinds)
        counters.intra_line_hits = intra_line_hits
        counters.mab_lookups = mab_lookups
        counters.mab_hits = mab_hits
        counters.mab_bypasses = mab_bypasses
        counters.stale_hits = stale_hits
        counters.cache_hits = c_hits
        counters.cache_misses = c_misses
        counters.tag_accesses = tag_accesses
        counters.way_accesses = way_accesses
        counters.notes["mab_label"] = self.mab_config.label
        return counters

    # ------------------------------------------------------------------
    # reference implementation (executable specification)
    # ------------------------------------------------------------------

    def process_reference(self, fetch: FetchStream) -> AccessCounters:
        """Replay via the original object-API path (spec for diff tests)."""
        counters = AccessCounters()
        cfg = self.cache_config
        cache = self.cache
        mab = self.mab
        line_mask = ~(cfg.line_bytes - 1) & 0xFFFFFFFF
        seq = int(FetchKind.SEQ)

        last_line = None  # line address of the previous access

        addrs = fetch.addr.tolist()
        kinds = fetch.kind.tolist()
        bases = fetch.base.tolist()
        disps = fetch.disp.tolist()

        for addr, kind, base, disp in zip(addrs, kinds, bases, disps):
            counters.accesses += 1
            line = addr & line_mask

            if kind == seq and line == last_line:
                counters.intra_line_hits += 1
                result = cache.access(addr)
                counters.cache_hits += 1
                counters.way_accesses += 1
                assert result.hit, "intra-line fetch must hit"
                last_line = line
                continue

            counters.mab_lookups += 1
            lookup = mab.lookup(base, disp)

            if lookup.bypass:
                counters.mab_bypasses += 1
                mab.on_bypass(lookup.set_index)
                self._full_access(counters, addr, install=None)
                last_line = line
                continue

            if lookup.hit:
                actual = cache.probe(addr)
                if actual is not None and actual == lookup.way:
                    counters.mab_hits += 1
                    result = cache.access(addr)
                    counters.cache_hits += 1
                    counters.way_accesses += 1
                    last_line = line
                    continue
                counters.stale_hits += 1

            self._full_access(counters, addr, install=lookup)
            last_line = line

        counters.notes["mab_label"] = self.mab_config.label
        return counters

    # ------------------------------------------------------------------

    def _full_access(self, counters, addr, install) -> None:
        cfg = self.cache_config
        result = self.cache.access(addr)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            counters.way_accesses += cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += cfg.ways + 1  # parallel read + refill
        if install is not None:
            self.mab.install(install, result.way)
