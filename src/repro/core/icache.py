"""Way-memoizing I-cache controller (paper Section 3.2, Figure 2).

Replays a :class:`~repro.sim.fetch.FetchStream` (one record per 8-byte
fetch-packet access) through a cache + MAB:

* **intra-cache-line sequential flow** — the fetch stays within the
  line of the previous access: no tag access and no MAB consult; the
  previously resolved way is reused (the classic optimisation of
  Panwar & Rennels [4], which the paper keeps).
* any other flow — inter-line sequential (PC + stride), taken branch
  (branch PC + offset) or indirect/link jump (register value + imm) —
  consults the MAB with exactly the inputs Figure 2's mux selects.
  MAB hit: 0 tags, 1 way.  MAB miss: full access (all tags, all ways)
  and the resolved way is installed.

The controller tracks the line address of the previous access to
classify intra- vs inter-line flow, mirroring the hardware's
"same-line" detector.
"""

from __future__ import annotations

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig, FRV_ICACHE
from repro.cache.replacement import make_policy
from repro.cache.stats import AccessCounters
from repro.core.mab import MAB, MABConfig
from repro.sim.fetch import FetchKind, FetchStream


class WayMemoICache:
    """I-cache with intra-line tracking plus the paper's MAB.

    Parameters
    ----------
    cache_config:
        Cache geometry; defaults to the FR-V 32 kB 2-way I-cache.
    mab_config:
        MAB size; the paper evaluates 2x8, 2x16 (chosen) and 2x32.
    """

    name = "way-memo"

    def __init__(
        self,
        cache_config: CacheConfig = FRV_ICACHE,
        mab_config: MABConfig = MABConfig(2, 16),
        policy: str = "lru",
    ):
        self.cache_config = cache_config
        self.mab_config = mab_config
        self.cache = SetAssociativeCache(
            cache_config,
            make_policy(policy, cache_config.sets, cache_config.ways),
        )
        self.mab = MAB(mab_config, cache_config)
        if mab_config.consistency == "evict_hook":
            self.cache.add_eviction_listener(self.mab.invalidate_line)

    # ------------------------------------------------------------------

    def process(self, fetch: FetchStream) -> AccessCounters:
        """Replay the fetch stream and return access counters."""
        counters = AccessCounters()
        cfg = self.cache_config
        nways = cfg.ways
        cache = self.cache
        mab = self.mab
        line_mask = ~(cfg.line_bytes - 1) & 0xFFFFFFFF
        seq = int(FetchKind.SEQ)

        last_line = None  # line address of the previous access

        addrs = fetch.addr.tolist()
        kinds = fetch.kind.tolist()
        bases = fetch.base.tolist()
        disps = fetch.disp.tolist()

        for addr, kind, base, disp in zip(addrs, kinds, bases, disps):
            counters.accesses += 1
            line = addr & line_mask

            if kind == seq and line == last_line:
                # Intra-cache-line sequential flow: way known from the
                # previous access, no tag or MAB activity [3, 4, 10].
                counters.intra_line_hits += 1
                result = cache.access(addr)
                counters.cache_hits += 1
                counters.way_accesses += 1
                assert result.hit, "intra-line fetch must hit"
                last_line = line
                continue

            counters.mab_lookups += 1
            lookup = mab.lookup(base, disp)

            if lookup.bypass:
                counters.mab_bypasses += 1
                mab.on_bypass(lookup.set_index)
                self._full_access(counters, addr, install=None)
                last_line = line
                continue

            if lookup.hit:
                actual = cache.probe(addr)
                if actual is not None and actual == lookup.way:
                    counters.mab_hits += 1
                    result = cache.access(addr)
                    counters.cache_hits += 1
                    counters.way_accesses += 1
                    last_line = line
                    continue
                counters.stale_hits += 1

            self._full_access(counters, addr, install=lookup)
            last_line = line

        counters.notes["mab_label"] = self.mab_config.label
        return counters

    # ------------------------------------------------------------------

    def _full_access(self, counters, addr, install) -> None:
        cfg = self.cache_config
        result = self.cache.access(addr)
        counters.tag_accesses += cfg.ways
        if result.hit:
            counters.cache_hits += 1
            counters.way_accesses += cfg.ways
        else:
            counters.cache_misses += 1
            counters.way_accesses += cfg.ways + 1  # parallel read + refill
        if install is not None:
            self.mab.install(install, result.way)
