"""Parametric synthetic workload generators behind ``synthetic:k=v``.

These generators produce :class:`~repro.sim.trace.DataTrace` /
:class:`~repro.sim.fetch.FetchStream` objects directly, with
controllable locality and displacement distributions — handy for
stress-testing the MAB (e.g. the adder-width ablation sweeps the
fraction of large displacements precisely) and for opening the
scenario space beyond the paper's seven benchmarks.

Every generator is addressable from the spec syntax
``synthetic:kind=<name>,k=v,...`` (see
:func:`repro.api.spec.parse_synthetic_params`); the ``kind``
parameter selects a generator from :data:`DATA_GENERATORS` /
:data:`FETCH_GENERATORS` and the remaining parameters are forwarded
as keyword overrides.  Omitting ``kind`` keeps the original
generators (:data:`DEFAULT_DATA_KIND` / :data:`DEFAULT_FETCH_KIND`),
so existing spec spellings — and therefore their canonical keys and
stored results — are untouched.

All generators are pure functions of their parameters: the same
``seed`` yields bit-identical streams in any process, on any worker
count, so replay grouping, the trace-cache-independent column split
and the persistent result store all apply unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.sim.fetch import DEFAULT_FETCH_BYTES, FetchKind, FetchStream
from repro.sim.trace import DataTrace

#: The reserved spec parameter that names the generator.
KIND_PARAM = "kind"

#: Kinds selected when a spec names no ``kind=`` (the original
#: generators — their spellings and canonical keys are stable).
DEFAULT_DATA_KIND = "pointers"
DEFAULT_FETCH_KIND = "blocks"


# ----------------------------------------------------------------------
# data-side generators
# ----------------------------------------------------------------------

def synthetic_data_trace(
    num_accesses: int = 10_000,
    num_bases: int = 4,
    base_region_bytes: int = 1 << 16,
    max_disp: int = 256,
    store_fraction: float = 0.3,
    large_disp_fraction: float = 0.0,
    stride: int = 4,
    seed: int = 1234,
) -> DataTrace:
    """Generate a load/store stream with a few hot base registers.

    ``num_bases`` pointers walk disjoint regions with the given
    ``stride``; each access adds a small displacement below
    ``max_disp`` (word aligned).  ``large_disp_fraction`` of accesses
    instead use a displacement >= 2**13, forcing MAB bypasses.
    """
    rng = np.random.default_rng(seed)
    base_starts = (
        0x0004_0000
        + np.arange(num_bases, dtype=np.uint64) * base_region_bytes
    )
    which = rng.integers(0, num_bases, size=num_accesses)
    walk = rng.integers(0, base_region_bytes // (2 * stride),
                        size=num_accesses)
    base = (base_starts[which] + walk * stride).astype(np.uint32)
    disp = (
        rng.integers(0, max(max_disp // 4, 1), size=num_accesses) * 4
    ).astype(np.int32)
    if large_disp_fraction > 0:
        large = rng.random(num_accesses) < large_disp_fraction
        disp = np.where(
            large, np.int32(1 << 13) + disp, disp
        ).astype(np.int32)
    store = rng.random(num_accesses) < store_fraction
    return DataTrace(base=base, disp=disp, store=store)


def markov_data_trace(
    num_accesses: int = 10_000,
    num_regions: int = 8,
    region_bytes: int = 1 << 12,
    p_jump: float = 0.05,
    stride: int = 4,
    max_disp: int = 64,
    store_fraction: float = 0.3,
    seed: int = 1234,
) -> DataTrace:
    """A two-state Markov walk: dwell in one region, sometimes jump.

    Each access continues a strided walk through the current region
    with probability ``1 - p_jump``, else jumps to a uniformly chosen
    region at a fresh offset — a soft model of data-structure
    traversal with occasional pointer hops.  Low ``p_jump`` gives
    long, MAB-friendly runs; high ``p_jump`` approaches uniform
    chaos.
    """
    rng = np.random.default_rng(seed)
    n = int(num_accesses)
    stride = max(int(stride), 1)
    region_bytes = max(int(region_bytes), stride)
    jump = rng.random(n) < p_jump
    region_draw = rng.integers(0, max(int(num_regions), 1), size=n)
    start_draw = rng.integers(0, max(region_bytes // stride, 1), size=n)
    disp = (
        rng.integers(0, max(int(max_disp) // 4, 1), size=n) * 4
    ).astype(np.int32)
    store = rng.random(n) < store_fraction
    if n:
        jump[0] = True
    index = np.arange(n)
    # Forward-fill the most recent jump's (region, start) choice: each
    # access's anchor is the index of the jump that began its dwell.
    anchor = np.maximum.accumulate(np.where(jump, index, 0))
    offset = ((start_draw[anchor] + (index - anchor)) * stride
              ) % region_bytes
    spacing = np.int64(2 * region_bytes)
    base = (
        0x0010_0000 + region_draw[anchor] * spacing + offset
    ).astype(np.uint32)
    return DataTrace(base=base, disp=disp, store=store)


def loop_nest_data_trace(
    num_accesses: int = 12_000,
    arrays: int = 3,
    inner: int = 64,
    stride: int = 4,
    array_bytes: int = 1 << 14,
    store_fraction: float = 0.25,
    seed: int = 1234,
) -> DataTrace:
    """Compiler-shaped loop nest: ``c[i] = f(a[i], b[i], ...)``.

    ``arrays`` operand arrays are swept in lockstep; the inner loop
    touches ``inner`` elements per row via a bounded displacement
    (``pos * stride``, always below the MAB's narrow-adder bypass
    threshold), the outer loop advances each array's base pointer —
    the regular base+displacement shape the paper's technique was
    designed for.  Stores land on the last operand (the destination).
    """
    rng = np.random.default_rng(seed)
    n = int(num_accesses)
    arrays = max(int(arrays), 1)
    inner = max(int(inner), 1)
    stride = max(int(stride), 1)
    array_bytes = max(int(array_bytes), inner * stride)
    index = np.arange(n)
    operand = index % arrays
    element = index // arrays
    pos = element % inner
    row = element // inner
    # The +448 skew keeps same-index rows of different arrays from
    # landing in the same cache sets (a power-of-two spacing would
    # alias every array onto one set and thrash any associativity).
    base = (
        0x0020_0000
        + operand * np.int64(2 * array_bytes + 448)
        + (row * np.int64(inner * stride)) % array_bytes
    ).astype(np.uint32)
    disp = (pos * stride).astype(np.int32)
    store = (operand == arrays - 1) & (rng.random(n) < store_fraction)
    return DataTrace(base=base, disp=disp, store=store)


def pointer_chase_data_trace(
    num_accesses: int = 8_000,
    num_nodes: int = 4096,
    node_bytes: int = 16,
    store_fraction: float = 0.0,
    seed: int = 1234,
) -> DataTrace:
    """Chase a random permutation cycle through a node pool.

    Every access loads the next pointer at displacement 0 of a fresh
    node, so the base register changes on *every* access — the
    worst case for base-register memoization and for spatial
    locality once the pool outgrows the cache.
    """
    rng = np.random.default_rng(seed)
    n = int(num_accesses)
    num_nodes = max(int(num_nodes), 1)
    succ = rng.permutation(num_nodes).tolist()
    order = np.empty(n, dtype=np.int64)
    node = 0
    for k in range(n):
        order[k] = node
        node = succ[node]
    base = (0x0040_0000 + order * int(node_bytes)).astype(np.uint32)
    disp = np.zeros(n, dtype=np.int32)
    store = rng.random(n) < store_fraction
    return DataTrace(base=base, disp=disp, store=store)


def phase_data_trace(
    num_accesses: int = 16_000,
    num_phases: int = 4,
    hot_bytes: int = 1 << 10,
    cold_bytes: int = 1 << 17,
    stride: int = 4,
    max_disp: int = 64,
    store_fraction: float = 0.3,
    seed: int = 1234,
) -> DataTrace:
    """Alternating program phases: tight hot loops, then cold streams.

    Even phases hammer a small hot region (cache- and MAB-friendly);
    odd phases stream through a large cold footprint (evicting
    everything the hot phase built up).  Phase seeds derive from
    ``seed`` deterministically.
    """
    n = int(num_accesses)
    phases = max(int(num_phases), 1)
    stride = max(int(stride), 1)
    hot_bytes = max(int(hot_bytes), stride)
    cold_bytes = max(int(cold_bytes), stride)
    per = -(-n // phases)  # ceil division
    bases, disps, stores = [], [], []
    produced = 0
    for phase in range(phases):
        m = min(per, n - produced)
        if m <= 0:
            break
        produced += m
        prng = np.random.default_rng([int(seed), phase])
        disp = (
            prng.integers(0, max(int(max_disp) // 4, 1), size=m) * 4
        ).astype(np.int32)
        store = prng.random(m) < store_fraction
        if phase % 2 == 0:
            offset = prng.integers(
                0, max(hot_bytes // stride, 1), size=m
            ) * stride
            base = (0x0050_0000 + offset).astype(np.uint32)
        else:
            start = (phase // 2) * np.int64(cold_bytes)
            base = (
                0x0100_0000
                + (start + np.arange(m) * stride) % (4 * cold_bytes)
            ).astype(np.uint32)
        bases.append(base)
        disps.append(disp)
        stores.append(store)
    return DataTrace(
        base=np.concatenate(bases),
        disp=np.concatenate(disps),
        store=np.concatenate(stores),
    )


def context_switch_data_trace(
    num_accesses: int = 16_000,
    processes: int = 3,
    quantum: int = 256,
    region_bytes: int = 1 << 14,
    max_disp: int = 64,
    store_fraction: float = 0.3,
    stride: int = 4,
    seed: int = 1234,
) -> DataTrace:
    """Round-robin interleave of per-process working sets.

    Each process runs a :func:`synthetic_data_trace`-style stream in
    its own address space; the scheduler switches every ``quantum``
    accesses, flushing warm cache/MAB state exactly the way real
    context switches do.
    """
    n = int(num_accesses)
    procs = max(int(processes), 1)
    quantum = max(int(quantum), 1)
    per = -(-n // procs)  # ceil division
    streams = [
        synthetic_data_trace(
            num_accesses=per, num_bases=2,
            base_region_bytes=int(region_bytes), max_disp=int(max_disp),
            store_fraction=store_fraction, stride=int(stride),
            seed=int(seed) + 7919 * pid,
        )
        for pid in range(procs)
    ]
    cursors = [0] * procs
    bases, disps, stores = [], [], []
    produced = 0
    turn = 0
    while produced < n:
        pid = turn % procs
        turn += 1
        cursor = cursors[pid]
        take = min(quantum, n - produced, per - cursor)
        if take <= 0:
            continue
        trace = streams[pid]
        shift = np.int64(pid) << 26  # disjoint per-process spaces
        bases.append((
            (trace.base[cursor:cursor + take].astype(np.int64) + shift)
            & 0xFFFFFFFF
        ).astype(np.uint32))
        disps.append(trace.disp[cursor:cursor + take])
        stores.append(trace.store[cursor:cursor + take])
        cursors[pid] = cursor + take
        produced += take
    return DataTrace(
        base=np.concatenate(bases),
        disp=np.concatenate(disps),
        store=np.concatenate(stores),
    )


def thrash_data_trace(
    num_accesses: int = 8_000,
    mab_tags: int = 2,
    mab_sets: int = 8,
    line_bytes: int = 32,
    spacing_bytes: int = 1 << 16,
    store_fraction: float = 0.2,
    seed: int = 1234,
) -> DataTrace:
    """Adversarial round-robin aimed at an ``mab_tags x mab_sets`` MAB.

    Cycles ``mab_tags + 1`` widely spaced base pointers against
    ``mab_sets + 1`` distinct line displacements — one more of each
    than the target MAB holds, so an LRU-managed Nt x Ns buffer of
    that geometry evicts every entry just before its reuse.  With the
    default 64 KiB spacing the bases also collide in the cache index,
    thrashing a 2-way set as well.
    """
    rng = np.random.default_rng(seed)
    n = int(num_accesses)
    num_bases = max(int(mab_tags), 0) + 1
    num_lines = max(int(mab_sets), 0) + 1
    index = np.arange(n)
    base = (
        0x0200_0000 + (index % num_bases) * np.int64(spacing_bytes)
    ).astype(np.uint32)
    disp = (((index // num_bases) % num_lines)
            * int(line_bytes)).astype(np.int32)
    store = rng.random(n) < store_fraction
    return DataTrace(base=base, disp=disp, store=store)


# ----------------------------------------------------------------------
# fetch-side generators
# ----------------------------------------------------------------------

def synthetic_fetch_stream(
    num_blocks: int = 2_000,
    block_packets: int = 6,
    num_targets: int = 8,
    text_base: int = 0x0,
    text_bytes: int = 1 << 14,
    packet_bytes: int = DEFAULT_FETCH_BYTES,
    branch_offsets: Optional[Sequence[int]] = None,
    seed: int = 99,
) -> FetchStream:
    """Generate a fetch stream of basic blocks linked by branches.

    ``num_targets`` hot branch targets emulate loop nests; each block
    runs ``block_packets`` sequential packets then branches.
    """
    rng = np.random.default_rng(seed)
    targets = (
        text_base
        + rng.integers(0, text_bytes // packet_bytes, size=num_targets)
        * packet_bytes
    ).astype(np.uint32)

    addr, kind, base, disp = [], [], [], []
    pc = int(targets[0])
    addr.append(pc)
    kind.append(int(FetchKind.START))
    base.append(pc)
    disp.append(0)
    for _ in range(num_blocks):
        length = int(rng.integers(1, block_packets + 1))
        for _ in range(length):
            prev = pc
            pc += packet_bytes
            addr.append(pc)
            kind.append(int(FetchKind.SEQ))
            base.append(prev)
            disp.append(packet_bytes)
        target = int(targets[int(rng.integers(0, num_targets))])
        offset = target - pc
        if branch_offsets is not None:
            offset = int(branch_offsets[int(rng.integers(
                0, len(branch_offsets)))])
            target = (pc + offset) & 0xFFFFFFFF
        addr.append(target & ~(packet_bytes - 1) & 0xFFFFFFFF)
        kind.append(int(FetchKind.BRANCH))
        base.append(pc)
        disp.append(offset)
        pc = target & ~(packet_bytes - 1)
    return FetchStream(
        addr=np.asarray(addr, dtype=np.uint32),
        kind=np.asarray(kind, dtype=np.uint8),
        base=np.asarray(base, dtype=np.uint32),
        disp=np.asarray(disp, dtype=np.int32),
        packet_bytes=packet_bytes,
    )


def loop_nest_fetch_stream(
    num_blocks: int = 2_000,
    inner_blocks: int = 4,
    inner_iters: int = 8,
    block_packets: int = 4,
    num_nests: int = 4,
    text_base: int = 0x0,
    nest_bytes: int = 1 << 10,
    packet_bytes: int = DEFAULT_FETCH_BYTES,
    seed: int = 99,
) -> FetchStream:
    """Structured loop nests: fall-through blocks, backedges, nest hops.

    ``num_nests`` loop bodies of ``inner_blocks`` basic blocks each;
    every body iterates ``inner_iters`` times (fall-through branches
    between blocks, one backedge per iteration) before control moves
    to the next nest.  Block lengths are drawn once per block from
    ``seed`` — the program's static shape — so the dynamic stream is
    loopy and branch-target-repetitive, the friendly case for
    MA-links/Panwar-style fetch optimisations.
    """
    rng = np.random.default_rng(seed)
    total = int(num_blocks)
    inner_blocks = max(int(inner_blocks), 1)
    inner_iters = max(int(inner_iters), 1)
    block_packets = max(int(block_packets), 1)
    num_nests = max(int(num_nests), 1)
    packet_bytes = int(packet_bytes)
    block_stride = (block_packets + 1) * packet_bytes
    nest_bytes = max(int(nest_bytes), inner_blocks * block_stride)
    lengths = [
        [int(rng.integers(1, block_packets + 1))
         for _ in range(inner_blocks)]
        for _ in range(num_nests)
    ]

    def block_addr(nest: int, block: int) -> int:
        return (int(text_base) + nest * nest_bytes
                + block * block_stride) & 0xFFFFFFFF

    addr, kind, base, disp = [], [], [], []
    pc = block_addr(0, 0)
    addr.append(pc)
    kind.append(int(FetchKind.START))
    base.append(pc)
    disp.append(0)
    nest, it, block = 0, 0, 0
    emitted = 0
    while emitted < total:
        for _ in range(lengths[nest][block]):
            prev = pc
            pc += packet_bytes
            addr.append(pc)
            kind.append(int(FetchKind.SEQ))
            base.append(prev)
            disp.append(packet_bytes)
        emitted += 1
        if emitted >= total:
            break
        if block + 1 < inner_blocks:
            nest, it, block = nest, it, block + 1
        elif it + 1 < inner_iters:
            nest, it, block = nest, it + 1, 0
        else:
            nest, it, block = (nest + 1) % num_nests, 0, 0
        target = block_addr(nest, block)
        addr.append(target)
        kind.append(int(FetchKind.BRANCH))
        base.append(pc)
        disp.append(target - pc)
        pc = target
    return FetchStream(
        addr=np.asarray(addr, dtype=np.uint32),
        kind=np.asarray(kind, dtype=np.uint8),
        base=np.asarray(base, dtype=np.uint32),
        disp=np.asarray(disp, dtype=np.int32),
        packet_bytes=packet_bytes,
    )


def phase_fetch_stream(
    num_blocks: int = 2_000,
    num_phases: int = 4,
    block_packets: int = 6,
    num_targets: int = 8,
    phase_text_bytes: int = 1 << 13,
    packet_bytes: int = DEFAULT_FETCH_BYTES,
    seed: int = 99,
) -> FetchStream:
    """Phase-changing fetch traffic: disjoint text regions in sequence.

    Each phase is a :func:`synthetic_fetch_stream` over its own text
    footprint; phase boundaries are stitched into ordinary branches
    (the first fetch of phase *p* branches from the last pc of phase
    *p - 1*), so downstream consumers see one continuous program that
    periodically abandons its entire working set.
    """
    phases = max(int(num_phases), 1)
    per = max(int(num_blocks) // phases, 1)
    parts = [
        synthetic_fetch_stream(
            num_blocks=per, block_packets=int(block_packets),
            num_targets=int(num_targets),
            text_base=phase * 2 * int(phase_text_bytes),
            text_bytes=int(phase_text_bytes),
            packet_bytes=int(packet_bytes),
            seed=int(seed) + 104_729 * phase,
        )
        for phase in range(phases)
    ]
    addr = np.concatenate([p.addr for p in parts])
    kind = np.concatenate([p.kind for p in parts])
    base = np.concatenate([p.base for p in parts])
    disp = np.concatenate([p.disp for p in parts])
    boundary = 0
    for phase in range(1, phases):
        boundary += len(parts[phase - 1])
        prev_pc = int(parts[phase - 1].addr[-1])
        kind[boundary] = int(FetchKind.BRANCH)
        base[boundary] = prev_pc
        disp[boundary] = np.int32(int(addr[boundary]) - prev_pc)
    return FetchStream(
        addr=addr, kind=kind, base=base, disp=disp,
        packet_bytes=int(packet_bytes),
    )


def thrash_fetch_stream(
    num_fetches: int = 8_000,
    mab_sets: int = 8,
    num_targets: int = 3,
    line_bytes: int = 32,
    spacing_bytes: int = 1 << 15,
    text_base: int = 0x0,
    packet_bytes: int = DEFAULT_FETCH_BYTES,
    seed: int = 99,
) -> FetchStream:
    """All-branch fetch traffic that defeats sequential-flow tricks.

    Every fetch is a taken branch to a fresh line, round-robin over
    ``num_targets`` widely spaced regions x ``mab_sets + 1`` line
    offsets: no sequential flow for Panwar/MA-links to elide, and one
    more distinct (region, line) pair than an Ns-entry MAB holds.
    ``seed`` is accepted for interface uniformity; the stream is
    structural.
    """
    del seed  # structural stream: the adversarial pattern is fixed
    n = int(num_fetches)
    num_lines = max(int(mab_sets), 0) + 1
    regions = max(int(num_targets), 2)
    packet_bytes = int(packet_bytes)
    index = np.arange(n)
    target = (
        int(text_base)
        + (index % regions) * np.int64(spacing_bytes)
        + ((index // regions) % num_lines) * int(line_bytes)
    )
    target = (target // packet_bytes) * packet_bytes
    prev = np.empty(n, dtype=np.int64)
    if n:
        prev[0] = target[0]
        prev[1:] = target[:-1]
    kind = np.full(n, int(FetchKind.BRANCH), dtype=np.uint8)
    disp = (target - prev).astype(np.int32)
    if n:
        kind[0] = int(FetchKind.START)
        disp[0] = 0
    return FetchStream(
        addr=target.astype(np.uint32),
        kind=kind,
        base=prev.astype(np.uint32),
        disp=disp,
        packet_bytes=packet_bytes,
    )


# ----------------------------------------------------------------------
# stream transformations
# ----------------------------------------------------------------------

def inject_stack_traffic(
    trace: DataTrace,
    fraction: float = 0.3,
    sp_value: int = 0x000F_FF00,
    frame_words: int = 8,
    seed: int = 77,
) -> DataTrace:
    """Interleave compiler-style stack traffic into a real trace.

    The paper's benchmarks were compiled code, whose loads/stores are
    dominated by sp-relative register saves/restores and spills; our
    hand-written kernels barely touch the stack.  This transformation
    models that difference: after every ``1/fraction``-th original
    access it inserts an sp-relative access with a small displacement
    (a save/restore within the current frame).  Used by the
    ``ablation_stack_traffic`` experiment to quantify how much of the
    paper's higher MAB hit rate compiled code would recover.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    if fraction == 0.0:
        return trace
    rng = np.random.default_rng(seed)
    out_base, out_disp, out_store = [], [], []
    for base, disp, store in zip(
        trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
    ):
        out_base.append(base)
        out_disp.append(disp)
        out_store.append(store)
        # Insert floor/ceil so the long-run insert rate equals
        # fraction / (1 - fraction) inserts per original access.
        inserts = rng.random() < fraction / (1.0 - fraction)
        if inserts:
            out_base.append(sp_value)
            out_disp.append(int(rng.integers(0, frame_words)) * 4)
            out_store.append(bool(rng.integers(0, 2)))
    return DataTrace.from_lists(out_base, out_disp, out_store)


# ----------------------------------------------------------------------
# the generator registry (``kind=`` dispatch)
# ----------------------------------------------------------------------

#: Data-side generators by kind name.
DATA_GENERATORS: Dict[str, Callable[..., DataTrace]] = {
    "pointers": synthetic_data_trace,
    "markov": markov_data_trace,
    "loop-nest": loop_nest_data_trace,
    "pointer-chase": pointer_chase_data_trace,
    "phase": phase_data_trace,
    "context-switch": context_switch_data_trace,
    "mab-thrash": thrash_data_trace,
}

#: Fetch-side generators by kind name.
FETCH_GENERATORS: Dict[str, Callable[..., FetchStream]] = {
    "blocks": synthetic_fetch_stream,
    "loop-nest": loop_nest_fetch_stream,
    "phase": phase_fetch_stream,
    "mab-thrash": thrash_fetch_stream,
}


def _generator_table(cache: str) -> Dict[str, Callable]:
    if cache == "dcache":
        return DATA_GENERATORS
    if cache == "icache":
        return FETCH_GENERATORS
    raise ValueError(
        f"cache must be 'dcache' or 'icache', not {cache!r}"
    )


def default_synthetic_kind(cache: str) -> str:
    """The kind an unqualified ``synthetic:`` spec selects."""
    return (
        DEFAULT_DATA_KIND if _generator_table(cache) is DATA_GENERATORS
        else DEFAULT_FETCH_KIND
    )


def synthetic_kinds(cache: str) -> Tuple[str, ...]:
    """Registered generator kinds for one cache side, sorted."""
    return tuple(sorted(_generator_table(cache)))


def synthetic_generator(cache: str, kind: str) -> Callable:
    """Look up one generator; KeyError lists the registered kinds."""
    table = _generator_table(cache)
    try:
        return table[kind]
    except KeyError:
        raise KeyError(
            f"unknown synthetic kind {kind!r} for {cache}; "
            f"available: {sorted(table)}"
        ) from None


def generate_synthetic(cache: str, params: Mapping[str, Any]):
    """Dispatch ``synthetic:kind=...`` parameters to their generator.

    ``params`` is the parsed parameter mapping (see
    :func:`repro.api.spec.parse_synthetic_params`); the reserved
    ``kind`` entry selects the generator, everything else is
    forwarded as keyword overrides.
    """
    params = dict(params)
    kind = params.pop(KIND_PARAM, default_synthetic_kind(cache))
    return synthetic_generator(cache, kind)(**params)
