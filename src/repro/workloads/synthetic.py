"""Parametric synthetic traces for unit tests and ablations.

These generators produce :class:`~repro.sim.trace.DataTrace` /
:class:`~repro.sim.fetch.FetchStream` objects directly, with
controllable locality and displacement distributions — handy for
stress-testing the MAB (e.g. the adder-width ablation sweeps the
fraction of large displacements precisely).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sim.fetch import DEFAULT_FETCH_BYTES, FetchKind, FetchStream
from repro.sim.trace import DataTrace


def synthetic_data_trace(
    num_accesses: int = 10_000,
    num_bases: int = 4,
    base_region_bytes: int = 1 << 16,
    max_disp: int = 256,
    store_fraction: float = 0.3,
    large_disp_fraction: float = 0.0,
    stride: int = 4,
    seed: int = 1234,
) -> DataTrace:
    """Generate a load/store stream with a few hot base registers.

    ``num_bases`` pointers walk disjoint regions with the given
    ``stride``; each access adds a small displacement below
    ``max_disp`` (word aligned).  ``large_disp_fraction`` of accesses
    instead use a displacement >= 2**13, forcing MAB bypasses.
    """
    rng = np.random.default_rng(seed)
    base_starts = (
        0x0004_0000
        + np.arange(num_bases, dtype=np.uint64) * base_region_bytes
    )
    which = rng.integers(0, num_bases, size=num_accesses)
    walk = rng.integers(0, base_region_bytes // (2 * stride),
                        size=num_accesses)
    base = (base_starts[which] + walk * stride).astype(np.uint32)
    disp = (
        rng.integers(0, max(max_disp // 4, 1), size=num_accesses) * 4
    ).astype(np.int32)
    if large_disp_fraction > 0:
        large = rng.random(num_accesses) < large_disp_fraction
        disp = np.where(
            large, np.int32(1 << 13) + disp, disp
        ).astype(np.int32)
    store = rng.random(num_accesses) < store_fraction
    return DataTrace(base=base, disp=disp, store=store)


def synthetic_fetch_stream(
    num_blocks: int = 2_000,
    block_packets: int = 6,
    num_targets: int = 8,
    text_base: int = 0x0,
    text_bytes: int = 1 << 14,
    packet_bytes: int = DEFAULT_FETCH_BYTES,
    branch_offsets: Optional[Sequence[int]] = None,
    seed: int = 99,
) -> FetchStream:
    """Generate a fetch stream of basic blocks linked by branches.

    ``num_targets`` hot branch targets emulate loop nests; each block
    runs ``block_packets`` sequential packets then branches.
    """
    rng = np.random.default_rng(seed)
    targets = (
        text_base
        + rng.integers(0, text_bytes // packet_bytes, size=num_targets)
        * packet_bytes
    ).astype(np.uint32)

    addr, kind, base, disp = [], [], [], []
    pc = int(targets[0])
    addr.append(pc)
    kind.append(int(FetchKind.START))
    base.append(pc)
    disp.append(0)
    for _ in range(num_blocks):
        length = int(rng.integers(1, block_packets + 1))
        for _ in range(length):
            prev = pc
            pc += packet_bytes
            addr.append(pc)
            kind.append(int(FetchKind.SEQ))
            base.append(prev)
            disp.append(packet_bytes)
        target = int(targets[int(rng.integers(0, num_targets))])
        offset = target - pc
        if branch_offsets is not None:
            offset = int(branch_offsets[int(rng.integers(
                0, len(branch_offsets)))])
            target = (pc + offset) & 0xFFFFFFFF
        addr.append(target & ~(packet_bytes - 1) & 0xFFFFFFFF)
        kind.append(int(FetchKind.BRANCH))
        base.append(pc)
        disp.append(offset)
        pc = target & ~(packet_bytes - 1)
    return FetchStream(
        addr=np.asarray(addr, dtype=np.uint32),
        kind=np.asarray(kind, dtype=np.uint8),
        base=np.asarray(base, dtype=np.uint32),
        disp=np.asarray(disp, dtype=np.int32),
        packet_bytes=packet_bytes,
    )


def inject_stack_traffic(
    trace: DataTrace,
    fraction: float = 0.3,
    sp_value: int = 0x000F_FF00,
    frame_words: int = 8,
    seed: int = 77,
) -> DataTrace:
    """Interleave compiler-style stack traffic into a real trace.

    The paper's benchmarks were compiled code, whose loads/stores are
    dominated by sp-relative register saves/restores and spills; our
    hand-written kernels barely touch the stack.  This transformation
    models that difference: after every ``1/fraction``-th original
    access it inserts an sp-relative access with a small displacement
    (a save/restore within the current frame).  Used by the
    ``ablation_stack_traffic`` experiment to quantify how much of the
    paper's higher MAB hit rate compiled code would recover.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("fraction must be in [0, 1)")
    if fraction == 0.0:
        return trace
    rng = np.random.default_rng(seed)
    out_base, out_disp, out_store = [], [], []
    for base, disp, store in zip(
        trace.base.tolist(), trace.disp.tolist(), trace.store.tolist()
    ):
        out_base.append(base)
        out_disp.append(disp)
        out_store.append(store)
        # Insert floor/ceil so the long-run insert rate equals
        # fraction / (1 - fraction) inserts per original access.
        inserts = rng.random() < fraction / (1.0 - fraction)
        if inserts:
            out_base.append(sp_value)
            out_disp.append(int(rng.integers(0, frame_words)) * 4)
            out_store.append(bool(rng.integers(0, 2)))
    return DataTrace.from_lists(out_base, out_disp, out_store)
