"""DCT benchmark: 8x8 two-dimensional discrete cosine transform.

Processes ``NUM_BLOCKS`` 8x8 blocks of pseudo-random pixel data with a
fixed-point (Q12) separable DCT-II — the kernel at the heart of JPEG
and MPEG encoders and the first benchmark of the paper's Section 4.

Memory traffic: the row pass streams each block with unit stride, the
column pass re-reads the temporary block with a 32-byte (one cache
line) stride — a classic mix of intra- and inter-line data locality.
"""

from __future__ import annotations

import math
from typing import List

from repro.isa import Program, assemble
from repro.workloads.data import LCG, read_words, to_signed, words_directive

NUM_BLOCKS = 16
BLOCK_WORDS = 64
Q_SHIFT = 12
SEED = 0xD0C7


def cosine_table() -> List[int]:
    """Q12 coefficients T[u][x] = 0.5 * C(u) * cos((2x+1) u pi / 16)."""
    table = []
    for u in range(8):
        cu = (1.0 / math.sqrt(2.0)) if u == 0 else 1.0
        for x in range(8):
            coeff = 0.5 * cu * math.cos((2 * x + 1) * u * math.pi / 16.0)
            table.append(int(round(coeff * (1 << Q_SHIFT))))
    return table


def input_blocks() -> List[int]:
    """Pseudo-random 8-bit pixels, NUM_BLOCKS x 64 words."""
    rng = LCG(SEED)
    return [rng.next_range(0, 256) for _ in range(NUM_BLOCKS * BLOCK_WORDS)]


# ----------------------------------------------------------------------
# golden model
# ----------------------------------------------------------------------

def dct_1d(samples: List[int], table: List[int]) -> List[int]:
    """Fixed-point 8-point DCT, bit-exact with the assembly kernel."""
    out = []
    for u in range(8):
        acc = 0
        for x in range(8):
            acc += samples[x] * table[u * 8 + x]
        out.append(acc >> Q_SHIFT)  # arithmetic shift, matches srai
    return out


def dct_2d(block: List[int], table: List[int]) -> List[int]:
    """Row pass then column pass over a row-major 8x8 block."""
    tmp = [0] * 64
    for r in range(8):
        row = dct_1d(block[r * 8 : r * 8 + 8], table)
        for u in range(8):
            tmp[r * 8 + u] = row[u]
    out = [0] * 64
    for c in range(8):
        col = dct_1d([tmp[r * 8 + c] for r in range(8)], table)
        for u in range(8):
            out[u * 8 + c] = col[u]
    return out


def golden_output() -> List[int]:
    table = cosine_table()
    pixels = input_blocks()
    out: List[int] = []
    for blk in range(NUM_BLOCKS):
        out.extend(
            dct_2d(pixels[blk * 64 : blk * 64 + 64], table)
        )
    return out


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------

def build() -> Program:
    """Assemble the DCT benchmark."""
    source = f"""
# 8x8 2-D DCT over {NUM_BLOCKS} blocks, Q12 fixed point.
.data
dct_input:
{words_directive(input_blocks())}
dct_costab:
{words_directive(cosine_table())}
dct_tmp:
    .space 256
dct_output:
    .space {NUM_BLOCKS * 256}

.text
main:
    la   s5, dct_input
    la   s6, dct_output
    la   s1, dct_tmp
    li   s3, 0               # block counter
blk_loop:
    li   s4, 0               # row index
row_loop:
    slli t0, s4, 5           # r * 32 bytes
    add  a0, s5, t0          # src = block row
    add  a1, s1, t0          # dst = tmp row
    li   a2, 4               # src stride: contiguous words
    li   a3, 4               # dst stride: contiguous words
    call dct1d
    addi s4, s4, 1
    li   t0, 8
    blt  s4, t0, row_loop
    li   s4, 0               # column index
col_loop:
    slli t0, s4, 2           # c * 4 bytes
    add  a0, s1, t0          # src = tmp column
    add  a1, s6, t0          # dst = output column
    li   a2, 32              # src stride: one row of words
    li   a3, 32
    call dct1d
    addi s4, s4, 1
    li   t0, 8
    blt  s4, t0, col_loop
    addi s5, s5, 256         # next input block
    addi s6, s6, 256         # next output block
    addi s3, s3, 1
    li   t0, {NUM_BLOCKS}
    blt  s3, t0, blk_loop
    halt

# dct1d(a0=src, a1=dst, a2=src stride, a3=dst stride)
# 8-point DCT; walks the full 64-entry coefficient table.
dct1d:
    la   t6, dct_costab
    li   t0, 0               # u
    li   a5, 8
dct1d_u:
    li   t1, 0               # x
    li   t2, 0               # accumulator
    mv   t3, a0              # sample pointer
dct1d_x:
    lw   t4, 0(t3)
    lw   t5, 0(t6)
    mul  t4, t4, t5
    add  t2, t2, t4
    add  t3, t3, a2
    addi t6, t6, 4
    addi t1, t1, 1
    blt  t1, a5, dct1d_x
    srai t2, t2, {Q_SHIFT}
    sw   t2, 0(a1)
    add  a1, a1, a3
    addi t0, t0, 1
    blt  t0, a5, dct1d_u
    ret
"""
    return assemble(source, name="dct")


def check(result) -> None:
    """Compare simulated memory against the golden model."""
    # Re-derive the symbol table via build() so the checker does not
    # depend on how the caller obtained its ExecutionResult.
    out_addr = build().symbol("dct_output")
    expected = golden_output()
    actual = [
        to_signed(w)
        for w in read_words(result.memory, out_addr, len(expected))
    ]
    if actual != expected:
        first_bad = next(
            i for i, (a, b) in enumerate(zip(actual, expected)) if a != b
        )
        raise AssertionError(
            f"DCT output mismatch at word {first_bad}: "
            f"{actual[first_bad]} != {expected[first_bad]}"
        )
