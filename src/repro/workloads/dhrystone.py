"""Dhrystone-like benchmark: the classic synthetic integer mix.

Reproduces the structure of Dhrystone 2.1's main loop — procedure
calls through a link register, string copy/compare over byte arrays,
record (struct) field traffic, one- and two-dimensional array updates,
multiply/divide arithmetic and data-dependent branches — scaled to a
fixed iteration count.  This is the workload with the richest *call /
return* behaviour of the suite, exercising the I-cache MAB's
link-register input (paper Figure 2).

Every architectural effect is mirrored bit-exactly by the golden model
in :func:`golden_output`.
"""

from __future__ import annotations

from typing import List

from repro.isa import Program, assemble
from repro.workloads.data import bytes_directive, read_words

LOOPS = 600
STR1 = b"DHRYSTONE PROGRAM, SOME STRING"  # 30 chars like the original
ARRAY1_LEN = 50
ARRAY2_DIM = 50
REC_WORDS = 12


def _trunc_div(a: int, b: int) -> int:
    """Division truncating toward zero (the FRL-32 ``div`` semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


# ----------------------------------------------------------------------
# golden model
# ----------------------------------------------------------------------

def golden_output() -> List[int]:
    int_glob = 0
    array1 = [0] * ARRAY1_LEN
    array2 = [0] * (ARRAY2_DIM * ARRAY2_DIM)
    rec_a = [0] * REC_WORDS
    rec_b = [0] * REC_WORDS
    str2 = bytearray(32)

    for i in range(LOOPS):
        ch1 = ord("A")
        bool_glob = 0
        bool_glob |= int(ch1 == ord("A"))
        int1, int2 = 2, 3
        str2[: len(STR1)] = STR1
        str2[len(STR1)] = 0
        if bytes(str2[: len(STR1)]) == STR1:  # strcmp == 0
            int_glob += 1
        int3 = int1 + 2 + int2            # Proc7
        idx = int1 + 5                    # Proc8
        array1[idx] = int3
        array1[idx + 1] = array1[idx]
        array1[idx + 30] = idx
        array2[idx * ARRAY2_DIM + idx] = array1[idx] + i
        for w in range(REC_WORDS):        # Proc1: record copy
            rec_b[w] = rec_a[w]
        rec_b[3] = i
        rec_a[3] = rec_b[3] + int_glob
        if ch1 == ord("A"):               # Proc2
            int1 = int1 + int3 - 6
        int2 = int2 * int1
        int1 = _trunc_div(int2, int3)
        int2 = 7 * (int2 - int3) - int1
        int_glob += i % 3                 # Proc6-style enum step
        del bool_glob

    str_sum = sum(STR1)
    return [
        int_glob & 0xFFFFFFFF,
        int1 & 0xFFFFFFFF,
        int2 & 0xFFFFFFFF,
        int3 & 0xFFFFFFFF,
        array1[7] & 0xFFFFFFFF,
        array1[37] & 0xFFFFFFFF,
        array2[7 * ARRAY2_DIM + 7] & 0xFFFFFFFF,
        str_sum & 0xFFFFFFFF,
    ]


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------

def build() -> Program:
    str1_bytes = bytes_directive(STR1 + b"\x00")
    source = f"""
# Dhrystone-like integer benchmark, {LOOPS} iterations.
.data
dhry_str1:
{str1_bytes}
.align 2
dhry_str2:
    .space 32
dhry_int_glob:
    .word 0
dhry_array1:
    .space {4 * ARRAY1_LEN}
dhry_array2:
    .space {4 * ARRAY2_DIM * ARRAY2_DIM}
dhry_rec_a:
    .space {4 * REC_WORDS}
dhry_rec_b:
    .space {4 * REC_WORDS}
dhry_result:
    .space 32

.text
main:
    li   s0, 0               # i (loop counter)
    la   s1, dhry_int_glob
    la   s2, dhry_array1
    la   s3, dhry_array2
    la   s4, dhry_rec_a
    la   s5, dhry_rec_b
main_loop:
    # Proc5 / Proc4: character globals and boolean
    li   s6, 65              # ch1 = 'A'
    li   s7, 0               # bool_glob
    li   t0, 65
    bne  s6, t0, skip_bool
    ori  s7, s7, 1
skip_bool:
    li   s8, 2               # int1
    li   s9, 3               # int2

    # strcpy(str2, str1)
    la   a0, dhry_str2
    la   a1, dhry_str1
    call strcpy

    # if (strcmp(str1, str2) == 0) int_glob++
    la   a0, dhry_str1
    la   a1, dhry_str2
    call strcmp
    bnez a0, skip_glob
    lw   t0, 0(s1)
    addi t0, t0, 1
    sw   t0, 0(s1)
skip_glob:

    # int3 = Proc7(int1, int2) = int1 + 2 + int2
    mv   a0, s8
    mv   a1, s9
    call proc7
    mv   s10, a0             # int3

    # Proc8(array1, array2, int1, int3, i)
    mv   a0, s8
    mv   a1, s10
    mv   a2, s0
    call proc8

    # Proc1: rec_b = rec_a; rec_b[3] = i; rec_a[3] = rec_b[3] + int_glob
    mv   a0, s4
    mv   a1, s5
    mv   a2, s0
    call proc1

    # Proc2: if (ch1 == 'A') int1 += int3 - 6
    li   t0, 65
    bne  s6, t0, skip_proc2
    add  s8, s8, s10
    addi s8, s8, -6
skip_proc2:

    mul  s9, s9, s8          # int2 = int2 * int1
    div  s8, s9, s10         # int1 = int2 / int3
    sub  t0, s9, s10
    li   t1, 7
    mul  t0, t0, t1
    sub  s9, t0, s8          # int2 = 7 * (int2 - int3) - int1

    # int_glob += i % 3
    li   t0, 3
    rem  t1, s0, t0
    lw   t2, 0(s1)
    add  t2, t2, t1
    sw   t2, 0(s1)

    addi s0, s0, 1
    li   t0, {LOOPS}
    blt  s0, t0, main_loop

    # ---- result block -------------------------------------------------
    la   t6, dhry_result
    lw   t0, 0(s1)
    sw   t0, 0(t6)           # int_glob
    sw   s8, 4(t6)           # int1
    sw   s9, 8(t6)           # int2
    sw   s10, 12(t6)         # int3
    lw   t0, 28(s2)          # array1[7]
    sw   t0, 16(t6)
    lw   t0, 148(s2)         # array1[37]
    sw   t0, 20(t6)
    li   t0, {4 * (7 * ARRAY2_DIM + 7)}
    add  t0, s3, t0
    lw   t0, 0(t0)           # array2[7][7]
    sw   t0, 24(t6)
    la   a0, dhry_str1
    call strsum
    sw   a0, 28(t6)          # checksum of str1 bytes
    halt

# strcpy(a0=dst, a1=src): byte copy including the terminator.
strcpy:
    lbu  t0, 0(a1)
    sb   t0, 0(a0)
    addi a0, a0, 1
    addi a1, a1, 1
    bnez t0, strcpy
    ret

# strcmp(a0, a1) -> a0: 0 when equal, byte difference otherwise.
strcmp:
    lbu  t0, 0(a0)
    lbu  t1, 0(a1)
    bne  t0, t1, strcmp_diff
    beqz t0, strcmp_equal
    addi a0, a0, 1
    addi a1, a1, 1
    j    strcmp
strcmp_equal:
    li   a0, 0
    ret
strcmp_diff:
    sub  a0, t0, t1
    ret

# strsum(a0) -> a0: sum of bytes up to the terminator.
strsum:
    li   t1, 0
strsum_loop:
    lbu  t0, 0(a0)
    beqz t0, strsum_done
    add  t1, t1, t0
    addi a0, a0, 1
    j    strsum_loop
strsum_done:
    mv   a0, t1
    ret

# proc7(a0=int1, a1=int2) -> a0 = int1 + 2 + int2
proc7:
    addi a0, a0, 2
    add  a0, a0, a1
    ret

# proc8(a0=int1, a1=int3, a2=i): array updates (uses globals via s2/s3)
proc8:
    addi t0, a0, 5           # idx = int1 + 5
    slli t1, t0, 2
    add  t1, s2, t1          # &array1[idx]
    sw   a1, 0(t1)           # array1[idx] = int3
    lw   t2, 0(t1)
    sw   t2, 4(t1)           # array1[idx+1] = array1[idx]
    sw   t0, 120(t1)         # array1[idx+30] = idx
    li   t3, {ARRAY2_DIM}
    mul  t3, t0, t3
    add  t3, t3, t0          # idx * DIM + idx
    slli t3, t3, 2
    add  t3, s3, t3
    lw   t4, 0(t1)
    add  t4, t4, a2          # array1[idx] + i
    sw   t4, 0(t3)
    ret

# proc1(a0=rec_a, a1=rec_b, a2=i): record copy + field updates
proc1:
    li   t0, 0
proc1_copy:
    slli t1, t0, 2
    add  t2, a0, t1
    lw   t3, 0(t2)
    add  t2, a1, t1
    sw   t3, 0(t2)
    addi t0, t0, 1
    li   t1, {REC_WORDS}
    blt  t0, t1, proc1_copy
    sw   a2, 12(a1)          # rec_b[3] = i
    lw   t0, 0(s1)           # int_glob
    add  t0, t0, a2
    sw   t0, 12(a0)          # rec_a[3] = rec_b[3] + int_glob
    ret
"""
    return assemble(source, name="dhrystone")


def check(result) -> None:
    prog = build()
    expected = golden_output()
    actual = read_words(
        result.memory, prog.symbol("dhry_result"), len(expected)
    )
    if actual != expected:
        raise AssertionError(
            f"dhrystone result mismatch: {actual} != {expected}"
        )
