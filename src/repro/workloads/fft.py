"""FFT benchmark: 256-point radix-2 fixed-point FFT.

Two frames of complex data go through an iterative in-place
Cooley-Tukey FFT with Q14 twiddle factors and per-stage scaling by 2
(the standard block-floating scheme that keeps every intermediate in
32 bits).  Bit reversal uses an embedded permutation table.

The butterfly loops produce strided access patterns whose stride
doubles per stage — from neighbouring words up to half-array jumps —
which exercises the MAB's set-index side across its full range.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.isa import Program, assemble
from repro.workloads.data import LCG, read_words, to_signed, words_directive

N = 256
STAGES = 8
Q_SHIFT = 14
NUM_FRAMES = 2
SEED = 0xFF7


def twiddle_tables() -> Tuple[List[int], List[int]]:
    """Q14 twiddle factors W_N^k = exp(-2 pi i k / N), k < N/2."""
    re, im = [], []
    for k in range(N // 2):
        angle = -2.0 * math.pi * k / N
        re.append(int(round(math.cos(angle) * (1 << Q_SHIFT))))
        im.append(int(round(math.sin(angle) * (1 << Q_SHIFT))))
    return re, im


def bit_reverse_table() -> List[int]:
    table = []
    bits = N.bit_length() - 1
    for i in range(N):
        rev = 0
        for b in range(bits):
            if i & (1 << b):
                rev |= 1 << (bits - 1 - b)
        table.append(rev)
    return table


def input_frames() -> Tuple[List[int], List[int]]:
    """NUM_FRAMES frames of complex samples in [-8192, 8191]."""
    rng = LCG(SEED)
    re = [rng.next_range(-8192, 8192) for _ in range(NUM_FRAMES * N)]
    im = [rng.next_range(-8192, 8192) for _ in range(NUM_FRAMES * N)]
    return re, im


# ----------------------------------------------------------------------
# golden model
# ----------------------------------------------------------------------

def fft_fixed(re: List[int], im: List[int]) -> Tuple[List[int], List[int]]:
    """Bit-exact model of the assembly FFT (scaling by 2 per stage)."""
    w_re, w_im = twiddle_tables()
    rev = bit_reverse_table()
    a_re = [re[rev[i]] for i in range(N)]
    a_im = [im[rev[i]] for i in range(N)]
    m = 2
    while m <= N:
        half = m // 2
        step = N // m
        for k in range(0, N, m):
            for j in range(half):
                wr = w_re[j * step]
                wi = w_im[j * step]
                idx = k + j + half
                t_re = (wr * a_re[idx] - wi * a_im[idx]) >> Q_SHIFT
                t_im = (wr * a_im[idx] + wi * a_re[idx]) >> Q_SHIFT
                u_re = a_re[k + j]
                u_im = a_im[k + j]
                a_re[k + j] = (u_re + t_re) >> 1
                a_im[k + j] = (u_im + t_im) >> 1
                a_re[idx] = (u_re - t_re) >> 1
                a_im[idx] = (u_im - t_im) >> 1
        m *= 2
    return a_re, a_im


def golden_output() -> Tuple[List[int], List[int]]:
    re_in, im_in = input_frames()
    out_re: List[int] = []
    out_im: List[int] = []
    for frame in range(NUM_FRAMES):
        fr, fi = fft_fixed(
            re_in[frame * N : frame * N + N],
            im_in[frame * N : frame * N + N],
        )
        out_re.extend(fr)
        out_im.extend(fi)
    return out_re, out_im


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------

def build() -> Program:
    re_in, im_in = input_frames()
    w_re, w_im = twiddle_tables()
    source = f"""
# {N}-point radix-2 fixed-point FFT over {NUM_FRAMES} frames.
.data
fft_in_re:
{words_directive(re_in)}
fft_in_im:
{words_directive(im_in)}
fft_wre:
{words_directive(w_re)}
fft_wim:
{words_directive(w_im)}
fft_rev:
{words_directive(bit_reverse_table())}
fft_re:
    .space {4 * N}
fft_im:
    .space {4 * N}
fft_out_re:
    .space {4 * NUM_FRAMES * N}
fft_out_im:
    .space {4 * NUM_FRAMES * N}

.text
main:
    li   s11, 0              # frame counter
frame_loop:
    # ---- bit-reversal copy into working arrays -----------------------
    la   t0, fft_rev
    la   t1, fft_re
    la   t2, fft_im
    slli t3, s11, {2 + N.bit_length() - 1}   # frame * N * 4 bytes
    la   t4, fft_in_re
    add  t4, t4, t3
    la   t5, fft_in_im
    add  t5, t5, t3
    li   s0, 0               # i
rev_loop:
    lw   t6, 0(t0)           # rev[i]
    slli t6, t6, 2
    add  a0, t4, t6
    lw   a1, 0(a0)           # in_re[rev[i]]
    sw   a1, 0(t1)
    add  a0, t5, t6
    lw   a1, 0(a0)           # in_im[rev[i]]
    sw   a1, 0(t2)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, 4
    addi s0, s0, 1
    li   a2, {N}
    blt  s0, a2, rev_loop

    # ---- butterfly stages --------------------------------------------
    li   s1, 2               # m = 2
stage_loop:
    srai s2, s1, 1           # half = m / 2
    li   t0, {N}
    div  s3, t0, s1          # step = N / m
    li   s4, 0               # k
k_loop:
    li   s5, 0               # j
j_loop:
    mul  t0, s5, s3          # j * step
    slli t0, t0, 2
    la   t1, fft_wre
    add  t1, t1, t0
    lw   a4, 0(t1)           # wr
    la   t1, fft_wim
    add  t1, t1, t0
    lw   a5, 0(t1)           # wi

    add  t2, s4, s5          # k + j
    add  t3, t2, s2          # idx = k + j + half
    slli t4, t2, 2
    slli t5, t3, 2
    la   t6, fft_re
    la   a6, fft_im
    add  a0, t6, t5          # &re[idx]
    add  a1, a6, t5          # &im[idx]
    lw   a2, 0(a0)           # re[idx]
    lw   a3, 0(a1)           # im[idx]

    mul  t0, a4, a2          # wr * re[idx]
    mul  t1, a5, a3          # wi * im[idx]
    sub  t0, t0, t1
    srai t0, t0, {Q_SHIFT}   # t_re
    mul  t1, a4, a3          # wr * im[idx]
    mul  a7, a5, a2          # wi * re[idx]
    add  t1, t1, a7
    srai t1, t1, {Q_SHIFT}   # t_im

    add  a0, t6, t4          # &re[k+j]
    add  a1, a6, t4          # &im[k+j]
    lw   a2, 0(a0)           # u_re
    lw   a3, 0(a1)           # u_im

    add  a7, a2, t0
    srai a7, a7, 1
    sw   a7, 0(a0)           # re[k+j] = (u_re + t_re) >> 1
    add  a7, a3, t1
    srai a7, a7, 1
    sw   a7, 0(a1)           # im[k+j] = (u_im + t_im) >> 1
    add  a0, t6, t5
    add  a1, a6, t5
    sub  a7, a2, t0
    srai a7, a7, 1
    sw   a7, 0(a0)           # re[idx] = (u_re - t_re) >> 1
    sub  a7, a3, t1
    srai a7, a7, 1
    sw   a7, 0(a1)           # im[idx] = (u_im - t_im) >> 1

    addi s5, s5, 1
    blt  s5, s2, j_loop
    add  s4, s4, s1          # k += m
    li   t0, {N}
    blt  s4, t0, k_loop
    slli s1, s1, 1           # m *= 2
    li   t0, {N}
    ble  s1, t0, stage_loop

    # ---- copy working arrays to the frame's output slot --------------
    la   t0, fft_re
    la   t1, fft_im
    slli t3, s11, {2 + N.bit_length() - 1}
    la   t4, fft_out_re
    add  t4, t4, t3
    la   t5, fft_out_im
    add  t5, t5, t3
    li   s0, 0
copy_loop:
    lw   a0, 0(t0)
    sw   a0, 0(t4)
    lw   a0, 0(t1)
    sw   a0, 0(t5)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t4, t4, 4
    addi t5, t5, 4
    addi s0, s0, 1
    li   a2, {N}
    blt  s0, a2, copy_loop

    addi s11, s11, 1
    li   t0, {NUM_FRAMES}
    blt  s11, t0, frame_loop
    halt
"""
    return assemble(source, name="fft")


def check(result) -> None:
    prog = build()
    expected_re, expected_im = golden_output()
    actual_re = [
        to_signed(w) for w in read_words(
            result.memory, prog.symbol("fft_out_re"), len(expected_re)
        )
    ]
    actual_im = [
        to_signed(w) for w in read_words(
            result.memory, prog.symbol("fft_out_im"), len(expected_im)
        )
    ]
    if actual_re != expected_re or actual_im != expected_im:
        raise AssertionError("FFT output mismatch against golden model")
