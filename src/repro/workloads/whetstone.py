"""Whetstone-like benchmark: fixed-point numeric module mix.

The original Whetstone measures floating-point module throughput.
FRL-32 (like many embedded ASIP cores, including FR-V integer
pipelines) has no FPU, so the modules run in Q12 fixed point with
polynomial approximations standing in for the transcendental calls —
the standard embedded-benchmark port.  The module structure (and the
register-heavy, low-memory-traffic profile that distinguishes
whetstone from the other six workloads) is preserved:

* module 1: simple identities over four scalars,
* module 2: the same identities over an array in memory,
* module 3: trigonometric approximation (cubic ``sin`` polynomial),
* module 6: integer arithmetic,
* module 7: ``atan``-flavoured rational polynomial,
* module 8: procedure calls passing three parameters.
"""

from __future__ import annotations

from typing import List

from repro.isa import Program, assemble
from repro.workloads.data import read_words, to_signed

Q = 12
ONE = 1 << Q
T_CONST = int(0.499975 * ONE)   # the Whetstone magic constant
T2_CONST = int(0.50025 * ONE)
N1 = 1200   # module repeat counts (scaled-down Whetstone weights)
N2 = 1400
N3 = 1200
N6 = 2100
N7 = 1200
N8 = 1000


def _mulq(a: int, b: int) -> int:
    """Q12 multiply with arithmetic shift, bit-exact with the asm."""
    return (a * b) >> Q


def _trunc_div(a: int, b: int) -> int:
    """Division truncating toward zero (FRL-32 ``div`` semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


# ----------------------------------------------------------------------
# golden model
# ----------------------------------------------------------------------

def _sin_poly(x: int) -> int:
    """Cubic sine approximation in Q12: x - x^3/6."""
    x3 = _mulq(_mulq(x, x), x)
    return x - _trunc_div(x3, 6)


def _atan_poly(x: int) -> int:
    """atan approximation in Q12: x - x^3/3 + x^5/5."""
    x2 = _mulq(x, x)
    x3 = _mulq(x2, x)
    x5 = _mulq(x3, x2)
    return x - _trunc_div(x3, 3) + _trunc_div(x5, 5)


def _p3(x: int, y: int) -> int:
    """Whetstone P3: z = (x + y) * T."""
    return _mulq(x + y, T_CONST)


def golden_output() -> List[int]:
    # Module 1: scalars.
    x1, x2, x3, x4 = ONE, -ONE, -ONE, -ONE
    for _ in range(N1):
        x1 = _mulq(x1 + x2 + x3 - x4, T_CONST)
        x2 = _mulq(x1 + x2 - x3 + x4, T_CONST)
        x3 = _mulq(x1 - x2 + x3 + x4, T_CONST)
        x4 = _mulq(-x1 + x2 + x3 + x4, T_CONST)

    # Module 2: array elements.
    e1 = [ONE, -ONE, -ONE, -ONE]
    for _ in range(N2):
        e1[0] = _mulq(e1[0] + e1[1] + e1[2] - e1[3], T_CONST)
        e1[1] = _mulq(e1[0] + e1[1] - e1[2] + e1[3], T_CONST)
        e1[2] = _mulq(e1[0] - e1[1] + e1[2] + e1[3], T_CONST)
        e1[3] = _mulq(-e1[0] + e1[1] + e1[2] + e1[3], T_CONST)

    # Module 3: trig polynomial chain.
    t3 = ONE // 2
    for _ in range(N3):
        t3 = _mulq(_sin_poly(t3) + _sin_poly(ONE - t3), T2_CONST)

    # Module 6: integer arithmetic.
    j, k, l = 1, 2, 3
    for _ in range(N6):
        j = j * (k - j) * (l - k)
        k = l * k - (l - j) * k
        l = (l - k) * (k + j)
        # Wrap to 32 bits like the hardware registers.
        j &= 0xFFFFFFFF
        k &= 0xFFFFFFFF
        l &= 0xFFFFFFFF
        j = to_signed(j)
        k = to_signed(k)
        l = to_signed(l)

    # Module 7: atan polynomial chain.
    t7 = ONE // 4
    for _ in range(N7):
        t7 = _mulq(_atan_poly(t7) + _atan_poly(ONE // 2 - t7), T_CONST)

    # Module 8: procedure calls.
    x, y, z = ONE, ONE, 0
    for _ in range(N8):
        z = _p3(x, y)
        x = _mulq(z, T_CONST)
        y = z - x

    return [
        v & 0xFFFFFFFF
        for v in (x1, x2, x3, x4, e1[0], e1[3], t3, j, k, l, t7, z)
    ]


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------

def build() -> Program:
    source = f"""
# Whetstone-like fixed-point module mix (Q12).
.data
whet_e1:
    .word {ONE}, {-ONE & 0xFFFFFFFF}, {-ONE & 0xFFFFFFFF}, {-ONE & 0xFFFFFFFF}
whet_result:
    .space 48

.text
main:
    li   s11, {T_CONST}      # T
    li   s10, {T2_CONST}     # T2

    # ---- module 1: scalars in registers -------------------------------
    li   s0, {ONE}           # x1
    li   s1, {-ONE}          # x2
    li   s2, {-ONE}          # x3
    li   s3, {-ONE}          # x4
    li   s4, 0
m1_loop:
    add  t0, s0, s1
    add  t0, t0, s2
    sub  t0, t0, s3
    mul  t0, t0, s11
    srai s0, t0, {Q}
    add  t0, s0, s1
    sub  t0, t0, s2
    add  t0, t0, s3
    mul  t0, t0, s11
    srai s1, t0, {Q}
    sub  t0, s0, s1
    add  t0, t0, s2
    add  t0, t0, s3
    mul  t0, t0, s11
    srai s2, t0, {Q}
    sub  t0, s1, s0
    add  t0, t0, s2
    add  t0, t0, s3
    mul  t0, t0, s11
    srai s3, t0, {Q}
    addi s4, s4, 1
    li   t1, {N1}
    blt  s4, t1, m1_loop
    la   t6, whet_result
    sw   s0, 0(t6)
    sw   s1, 4(t6)
    sw   s2, 8(t6)
    sw   s3, 12(t6)

    # ---- module 2: the same identities over memory ---------------------
    la   s5, whet_e1
    li   s4, 0
m2_loop:
    lw   t0, 0(s5)
    lw   t1, 4(s5)
    lw   t2, 8(s5)
    lw   t3, 12(s5)
    add  t4, t0, t1
    add  t4, t4, t2
    sub  t4, t4, t3
    mul  t4, t4, s11
    srai t0, t4, {Q}
    sw   t0, 0(s5)
    add  t4, t0, t1
    sub  t4, t4, t2
    add  t4, t4, t3
    mul  t4, t4, s11
    srai t1, t4, {Q}
    sw   t1, 4(s5)
    sub  t4, t0, t1
    add  t4, t4, t2
    add  t4, t4, t3
    mul  t4, t4, s11
    srai t2, t4, {Q}
    sw   t2, 8(s5)
    sub  t4, t1, t0
    add  t4, t4, t2
    add  t4, t4, t3
    mul  t4, t4, s11
    srai t3, t4, {Q}
    sw   t3, 12(s5)
    addi s4, s4, 1
    li   t5, {N2}
    blt  s4, t5, m2_loop
    la   t6, whet_result
    lw   t0, 0(s5)
    sw   t0, 16(t6)
    lw   t0, 12(s5)
    sw   t0, 20(t6)

    # ---- module 3: sine polynomial chain -------------------------------
    li   s0, {ONE // 2}      # t3
    li   s4, 0
m3_loop:
    mv   a0, s0
    call sinq
    mv   s1, a0              # sin(t3)
    li   t0, {ONE}
    sub  a0, t0, s0
    call sinq                # sin(1 - t3)
    add  t0, s1, a0
    mul  t0, t0, s10
    srai s0, t0, {Q}
    addi s4, s4, 1
    li   t1, {N3}
    blt  s4, t1, m3_loop
    la   t6, whet_result
    sw   s0, 24(t6)

    # ---- module 6: integer arithmetic ----------------------------------
    li   s0, 1               # j
    li   s1, 2               # k
    li   s2, 3               # l
    li   s4, 0
m6_loop:
    sub  t0, s1, s0          # k - j
    mul  t0, s0, t0
    sub  t1, s2, s1          # l - k
    mul  s0, t0, t1          # j = j*(k-j)*(l-k)
    mul  t0, s2, s1          # l*k
    sub  t1, s2, s0          # l - j
    mul  t1, t1, s1
    sub  s1, t0, t1          # k = l*k - (l-j)*k
    sub  t0, s2, s1          # l - k
    add  t1, s1, s0          # k + j
    mul  s2, t0, t1          # l = (l-k)*(k+j)
    addi s4, s4, 1
    li   t2, {N6}
    blt  s4, t2, m6_loop
    la   t6, whet_result
    sw   s0, 28(t6)
    sw   s1, 32(t6)
    sw   s2, 36(t6)

    # ---- module 7: atan polynomial chain --------------------------------
    li   s0, {ONE // 4}      # t7
    li   s4, 0
m7_loop:
    mv   a0, s0
    call atanq
    mv   s1, a0
    li   t0, {ONE // 2}
    sub  a0, t0, s0
    call atanq
    add  t0, s1, a0
    mul  t0, t0, s11
    srai s0, t0, {Q}
    addi s4, s4, 1
    li   t1, {N7}
    blt  s4, t1, m7_loop
    la   t6, whet_result
    sw   s0, 40(t6)

    # ---- module 8: procedure calls --------------------------------------
    li   s0, {ONE}           # x
    li   s1, {ONE}           # y
    li   s2, 0               # z
    li   s4, 0
m8_loop:
    mv   a0, s0
    mv   a1, s1
    call p3
    mv   s2, a0              # z
    mul  t0, s2, s11
    srai s0, t0, {Q}         # x = z * T
    sub  s1, s2, s0          # y = z - x
    addi s4, s4, 1
    li   t1, {N8}
    blt  s4, t1, m8_loop
    la   t6, whet_result
    sw   s2, 44(t6)
    halt

# sinq(a0=x) -> a0 = x - (x*x*x >> 2Q) / 6   (Q12 cubic approximation)
sinq:
    mul  t0, a0, a0
    srai t0, t0, {Q}
    mul  t0, t0, a0
    srai t0, t0, {Q}         # x^3 in Q12
    li   t1, 6
    div  t0, t0, t1
    sub  a0, a0, t0
    ret

# atanq(a0=x) -> a0 = x - x^3/3 + x^5/5   (Q12)
atanq:
    mul  t0, a0, a0
    srai t0, t0, {Q}         # x^2
    mul  t1, t0, a0
    srai t1, t1, {Q}         # x^3
    mul  t2, t1, t0
    srai t2, t2, {Q}         # x^5
    li   t3, 3
    div  t1, t1, t3
    li   t3, 5
    div  t2, t2, t3
    sub  a0, a0, t1
    add  a0, a0, t2
    ret

# p3(a0=x, a1=y) -> a0 = (x + y) * T >> Q
p3:
    add  a0, a0, a1
    mul  a0, a0, s11
    srai a0, a0, {Q}
    ret
"""
    return assemble(source, name="whetstone")


def check(result) -> None:
    prog = build()
    expected = golden_output()
    actual = read_words(
        result.memory, prog.symbol("whet_result"), len(expected)
    )
    if actual != expected:
        diffs = [
            (i, a, e) for i, (a, e) in enumerate(zip(actual, expected))
            if a != e
        ]
        raise AssertionError(f"whetstone result mismatch: {diffs[:4]}")
