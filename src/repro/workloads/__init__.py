"""The paper's seven benchmark programs, rebuilt for FRL-32.

Section 4 evaluates DCT, FFT, whetstone, dhrystone, compress, a JPEG
encoder and an MPEG-2 encoder.  Each module here generates the
corresponding kernel as FRL-32 assembly (with deterministic embedded
input data), plus a bit-exact Python *golden model* used by the tests
to verify the simulated architectural state — so the traces fed to the
cache studies come from genuinely executing programs, not synthetic
approximations.

:mod:`repro.workloads.suite` is the registry used by experiments;
:mod:`repro.workloads.synthetic` provides parametric synthetic
workload generators, addressable from specs as
``synthetic:kind=<name>,k=v,...``.
"""

from repro.workloads.suite import (
    BENCHMARK_NAMES,
    SCALABLE_BENCHMARKS,
    Benchmark,
    get_benchmark,
    load_workload,
    parse_workload,
    run_benchmark,
)
from repro.workloads.synthetic import (
    DATA_GENERATORS,
    FETCH_GENERATORS,
    KIND_PARAM,
    default_synthetic_kind,
    generate_synthetic,
    synthetic_data_trace,
    synthetic_fetch_stream,
    synthetic_generator,
    synthetic_kinds,
)

__all__ = [
    "BENCHMARK_NAMES",
    "DATA_GENERATORS",
    "FETCH_GENERATORS",
    "KIND_PARAM",
    "SCALABLE_BENCHMARKS",
    "Benchmark",
    "default_synthetic_kind",
    "generate_synthetic",
    "get_benchmark",
    "load_workload",
    "parse_workload",
    "run_benchmark",
    "synthetic_data_trace",
    "synthetic_fetch_stream",
    "synthetic_generator",
    "synthetic_kinds",
]
