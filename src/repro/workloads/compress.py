"""Compress benchmark: LZW compression (the Unix ``compress`` kernel).

Compresses 4 KiB of synthetic English-like text with the LZW algorithm
using an open-addressing hash table (multiplicative hashing, linear
probing) — the same dictionary structure as the classic ``compress``
utility.  The hash probes give this workload the most irregular data
address stream of the suite, which is the stress case for the D-cache
MAB's set-index side.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa import Program, assemble
from repro.workloads.data import LCG, bytes_directive, read_words

INPUT_LEN = 4096
HASH_SIZE = 8192          # power of two, open addressing
HASH_MASK = HASH_SIZE - 1
HASH_MULT = 2654435761    # Knuth's multiplicative constant
HASH_SHIFT = 19
MAX_CODES = 4096
EMPTY = 0xFFFFFFFF
SEED = 0xC0DE

_WORDS = (
    b"the", b"quick", b"brown", b"fox", b"jumps", b"over", b"lazy",
    b"dog", b"cache", b"memory", b"power", b"tag", b"way", b"buffer",
    b"address", b"access", b"energy", b"processor", b"line", b"set",
)


def input_text(scale: int = 1) -> bytes:
    """Deterministic English-like text with heavy word repetition.

    ``scale`` multiplies the input length; scale=1 is the paper-sized
    4 KiB input, bit-for-bit unchanged (larger scales extend the same
    generator stream, so every scaled input shares its prefix).
    """
    length = INPUT_LEN * scale
    rng = LCG(SEED)
    out = bytearray()
    while len(out) < length:
        out += rng.choice(_WORDS)
        out += b" "
        if rng.next_range(0, 12) == 0:
            out += b"\n"
    return bytes(out[:length])


def _hash(key: int) -> int:
    return ((key * HASH_MULT) & 0xFFFFFFFF) >> HASH_SHIFT & HASH_MASK


# ----------------------------------------------------------------------
# golden model
# ----------------------------------------------------------------------

def lzw_compress(data: bytes) -> List[int]:
    """LZW with open-addressing dictionary, bit-exact with the asm."""
    ht_key = [EMPTY] * HASH_SIZE
    ht_code = [0] * HASH_SIZE
    next_code = 256
    codes: List[int] = []
    w = data[0]
    for c in data[1:]:
        key = (w << 8) | c
        h = _hash(key)
        while ht_key[h] != key and ht_key[h] != EMPTY:
            h = (h + 1) & HASH_MASK
        if ht_key[h] == key:
            w = ht_code[h]
        else:
            codes.append(w)
            if next_code < MAX_CODES:
                ht_key[h] = key
                ht_code[h] = next_code
                next_code += 1
            w = c
    codes.append(w)
    return codes


def golden_output(scale: int = 1) -> Tuple[int, int]:
    """(number of output codes, 32-bit checksum of the code stream)."""
    codes = lzw_compress(input_text(scale))
    checksum = 0
    for code in codes:
        checksum = (checksum * 31 + code) & 0xFFFFFFFF
    return len(codes), checksum


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------

def build(scale: int = 1) -> Program:
    text = input_text(scale)
    input_len = INPUT_LEN * scale
    name = "compress" if scale == 1 else f"compress-x{scale}"
    source = f"""
# LZW compression of {input_len} bytes, {HASH_SIZE}-entry hash dictionary.
.data
lzw_input:
{bytes_directive(text)}
.align 2
lzw_htkey:
    .space {4 * HASH_SIZE}
lzw_htcode:
    .space {4 * HASH_SIZE}
lzw_output:
    .space {4 * input_len}
lzw_result:
    .space 8

.text
main:
    # ---- clear the hash table to EMPTY --------------------------------
    la   t0, lzw_htkey
    li   t1, {HASH_SIZE}
    li   t2, -1              # EMPTY marker
init_loop:
    sw   t2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, init_loop

    la   s0, lzw_input       # input cursor
    la   s1, lzw_htkey
    la   s2, lzw_htcode
    la   s3, lzw_output      # output cursor
    li   s4, 256             # next_code
    li   s5, 0               # emitted count
    lbu  s6, 0(s0)           # w = first byte
    addi s0, s0, 1
    li   s7, {input_len - 1} # remaining bytes
byte_loop:
    lbu  t0, 0(s0)           # c
    addi s0, s0, 1
    slli t1, s6, 8
    or   t1, t1, t0          # key = (w << 8) | c

    # h = ((key * MULT) >> SHIFT) & MASK
    li   t2, {HASH_MULT}
    mul  t2, t1, t2
    srli t2, t2, {HASH_SHIFT}
    andi t2, t2, {HASH_MASK}
probe_loop:
    slli t3, t2, 2
    add  t4, s1, t3
    lw   t5, 0(t4)           # ht_key[h]
    beq  t5, t1, probe_hit
    li   t6, -1
    beq  t5, t6, probe_empty
    addi t2, t2, 1
    andi t2, t2, {HASH_MASK}
    j    probe_loop
probe_hit:
    add  t4, s2, t3
    lw   s6, 0(t4)           # w = ht_code[h]
    j    next_byte
probe_empty:
    # emit(w)
    sw   s6, 0(s3)
    addi s3, s3, 4
    addi s5, s5, 1
    # insert if the dictionary is not full
    li   t6, {MAX_CODES}
    bge  s4, t6, no_insert
    add  t4, s1, t3
    sw   t1, 0(t4)           # ht_key[h] = key
    add  t4, s2, t3
    sw   s4, 0(t4)           # ht_code[h] = next_code
    addi s4, s4, 1
no_insert:
    mv   s6, t0              # w = c
next_byte:
    addi s7, s7, -1
    bnez s7, byte_loop

    # emit(final w)
    sw   s6, 0(s3)
    addi s5, s5, 1

    # ---- checksum the code stream --------------------------------------
    la   t0, lzw_output
    li   t1, 0               # checksum
    mv   t2, s5              # count
    li   t4, 31
cksum_loop:
    lw   t3, 0(t0)
    mul  t1, t1, t4
    add  t1, t1, t3
    addi t0, t0, 4
    addi t2, t2, -1
    bnez t2, cksum_loop

    la   t6, lzw_result
    sw   s5, 0(t6)           # code count
    sw   t1, 4(t6)           # checksum
    halt
"""
    return assemble(source, name=name)


def check(result, scale: int = 1) -> None:
    prog = build(scale)
    count, checksum = golden_output(scale)
    actual = read_words(result.memory, prog.symbol("lzw_result"), 2)
    if actual != [count, checksum]:
        raise AssertionError(
            f"compress mismatch: count/checksum {actual} != "
            f"{[count, checksum]}"
        )
