"""Benchmark registry and cached workload execution.

Experiments and tests obtain workloads through :func:`load_workload`,
which assembles the benchmark, runs it on the ISS and caches the
resulting traces (execution is deterministic, so caching is sound and
keeps the full-suite experiments fast).  Two cache levels stack:

* an in-process ``lru_cache`` (one ISS run per process at most), and
* a versioned **on-disk trace cache**: the traces are persisted as a
  ``.npz`` archive keyed by workload name, the program's content
  digest, the fetch packet size and the trace format version, so a
  *second process* (another experiment suite, a CI shard, a sweep
  worker) skips the ISS entirely and just loads the arrays.

The disk cache lives in ``$REPRO_TRACE_CACHE`` when set (set it to
``0``/``off`` to disable caching), otherwise in
``$XDG_CACHE_HOME/repro-traces`` (default ``~/.cache/repro-traces``).
Archives are written atomically (temp file + rename) and any
unreadable/garbage archive is ignored and regenerated, so the cache
can never produce wrong traces — the key includes the program digest,
so a changed benchmark generator automatically misses.
"""

from __future__ import annotations

import importlib
import os
import tempfile
import zipfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Optional, Tuple

from repro.isa import Program
from repro.sim import ExecutionResult, FetchStream, fetch_stream, run_program
from repro.sim.fetch import DEFAULT_FETCH_BYTES
from repro.sim.trace import ExecutionTrace
from repro.sim.traceio import (
    FORMAT_VERSION,
    TraceFormatError,
    load_traces,
    save_traces,
)

#: The seven benchmarks of the paper's Section 4, in paper order.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "dct",
    "fft",
    "dhrystone",
    "whetstone",
    "compress",
    "jpeg_enc",
    "mpeg2enc",
)

_MODULES = {
    "dct": "repro.workloads.dct",
    "fft": "repro.workloads.fft",
    "dhrystone": "repro.workloads.dhrystone",
    "whetstone": "repro.workloads.whetstone",
    "compress": "repro.workloads.compress",
    "jpeg_enc": "repro.workloads.jpeg_enc",
    "mpeg2enc": "repro.workloads.mpeg2enc",
}

#: Environment variable holding the trace cache directory (or 0/off).
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Benchmarks whose generators take a ``scale`` multiplier (bigger
#: inputs, same golden math at scale=1), addressable as workload
#: strings like ``compress:scale=4``.
SCALABLE_BENCHMARKS: Tuple[str, ...] = ("compress", "jpeg_enc", "mpeg2enc")


def parse_workload(name: str) -> Tuple[str, int]:
    """``'compress:scale=4'`` -> ``('compress', 4)``; plain names -> 1.

    Raises ``KeyError`` for unknown base benchmarks (with the listing)
    and ``ValueError`` for malformed suffixes, non-positive scales, or
    scaling a benchmark whose generator is not scale-aware.
    """
    base, sep, tail = name.partition(":")
    if base not in _MODULES:
        raise KeyError(
            f"unknown benchmark {base!r}; available: {BENCHMARK_NAMES}"
        )
    if not sep:
        return base, 1
    key, eq, value = tail.partition("=")
    if key.strip() != "scale" or not eq:
        raise ValueError(
            f"malformed workload suffix {tail!r} in {name!r} "
            "(expected scale=N)"
        )
    try:
        scale = int(value)
    except ValueError:
        raise ValueError(
            f"workload scale must be an integer, got {value!r}"
        ) from None
    if scale < 1:
        raise ValueError(f"workload scale must be >= 1, got {scale}")
    if scale != 1 and base not in SCALABLE_BENCHMARKS:
        raise ValueError(
            f"benchmark {base!r} has no scale parameter; "
            f"scalable: {SCALABLE_BENCHMARKS}"
        )
    return base, scale


@dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: builder + golden-model checker."""

    name: str
    build: Callable[[], Program]
    check: Callable[[ExecutionResult], None]


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by its paper name or scaled variant.

    ``'compress'`` binds the generator at its paper-sized default;
    ``'compress:scale=4'`` binds the same generator with a 4x input.
    """
    base, scale = parse_workload(name)
    module = importlib.import_module(_MODULES[base])
    if scale == 1:
        return Benchmark(
            name=base, build=module.build, check=module.check
        )
    return Benchmark(
        name=name,
        build=lambda: module.build(scale=scale),
        check=lambda result: module.check(result, scale=scale),
    )


@dataclass(frozen=True)
class Workload:
    """Cached result of running one benchmark on the ISS.

    ``cycles`` uses the VLIW fetch model: the FR-V issues one 8-byte
    fetch packet per cycle, so program cycles equal the number of
    fetch-packet accesses.  All architectures share this time base
    (the paper's technique adds no cycles); penalty baselines add
    their ``extra_cycles`` on top.
    """

    name: str
    trace: ExecutionTrace
    fetch: FetchStream
    cycles: int
    #: Stem of this workload's on-disk trace archive (name + program
    #: digest + packet size + format version) — the content-addressed
    #: key that derived caches (e.g. the columnar replay pre-split)
    #: reuse to name their own archives.  Empty when the disk cache is
    #: disabled.
    trace_key: str = ""


def run_benchmark(name: str) -> ExecutionResult:
    """Assemble and execute ``name``, without caching (used by tests)."""
    return run_program(get_benchmark(name).build())


# ----------------------------------------------------------------------
# on-disk trace cache
# ----------------------------------------------------------------------

def trace_cache_dir() -> Optional[Path]:
    """Directory of the on-disk trace cache, or None when disabled."""
    env = os.environ.get(TRACE_CACHE_ENV)
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none", "disable"):
            return None
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-traces"


def _trace_cache_path(
    name: str, program: Program, packet_bytes: int
) -> Optional[Path]:
    directory = trace_cache_dir()
    if directory is None:
        return None
    # Scaled names carry ':'/'=' — keep archive names filesystem-plain
    # (the program digest already disambiguates the content).
    safe = name.replace(":", "+").replace("=", "-")
    return directory / (
        f"{safe}-{program.digest()[:16]}-p{packet_bytes}"
        f"-v{FORMAT_VERSION}.npz"
    )


def _load_cached_traces(
    path: Path, packet_bytes: int
) -> Optional[Tuple[ExecutionTrace, FetchStream]]:
    """Read a cached workload archive; None when absent or unusable."""
    if not path.is_file():
        return None
    try:
        trace, fetch = load_traces(str(path))
    except (TraceFormatError, OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile):
        return None
    if fetch is None or fetch.packet_bytes != packet_bytes:
        return None
    return trace, fetch


def _store_cached_traces(
    path: Path, trace: ExecutionTrace, fetch: FetchStream
) -> None:
    """Atomically persist traces; caching is best-effort only."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # numpy appends ".npz" unless the name already ends with it.
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp.npz"
        )
        os.close(fd)
        try:
            save_traces(tmp, trace, fetch)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        pass


def _execute_workload(
    name: str, program: Program, packet_bytes: int
) -> Tuple[ExecutionTrace, FetchStream]:
    """Run the already-assembled ``program`` (no second build)."""
    result = run_program(program)
    if not result.halted:
        raise RuntimeError(f"benchmark {name} did not halt")
    return result.trace, fetch_stream(result.trace.flow, packet_bytes)


@lru_cache(maxsize=None)
def _load_workload_cached(name: str, packet_bytes: int) -> Workload:
    bench = get_benchmark(name)
    program = bench.build()
    path = _trace_cache_path(name, program, packet_bytes)

    cached = _load_cached_traces(path, packet_bytes) if path else None
    if cached is not None:
        trace, fetch = cached
    else:
        trace, fetch = _execute_workload(name, program, packet_bytes)
        if path is not None:
            _store_cached_traces(path, trace, fetch)
    return Workload(
        name=name,
        trace=trace,
        fetch=fetch,
        cycles=len(fetch),
        trace_key=path.stem if path is not None else "",
    )


def load_workload(
    name: str, packet_bytes: int = DEFAULT_FETCH_BYTES
) -> Workload:
    """Return ``name``'s traces, via the in-process + on-disk caches.

    Accepts scaled names (``compress:scale=4``); the redundant
    ``:scale=1`` spelling is canonicalised to the plain name first, so
    every spelling of one workload shares one cache entry and one
    trace archive.
    """
    base, scale = parse_workload(name)
    canonical = base if scale == 1 else name
    return _load_workload_cached(canonical, packet_bytes)


#: The in-process cache lives on the inner function; expose its
#: controls under the public name (tests simulate fresh processes
#: with ``load_workload.cache_clear()``).
load_workload.cache_clear = _load_workload_cached.cache_clear
load_workload.cache_info = _load_workload_cached.cache_info
