"""Benchmark registry and cached workload execution.

Experiments and tests obtain workloads through :func:`load_workload`,
which assembles the benchmark, runs it on the ISS once per process and
caches the resulting traces (execution is deterministic, so caching is
sound and keeps the full-suite experiments fast).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Tuple

from repro.isa import Program
from repro.sim import ExecutionResult, FetchStream, fetch_stream, run_program
from repro.sim.fetch import DEFAULT_FETCH_BYTES
from repro.sim.trace import ExecutionTrace

#: The seven benchmarks of the paper's Section 4, in paper order.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "dct",
    "fft",
    "dhrystone",
    "whetstone",
    "compress",
    "jpeg_enc",
    "mpeg2enc",
)

_MODULES = {
    "dct": "repro.workloads.dct",
    "fft": "repro.workloads.fft",
    "dhrystone": "repro.workloads.dhrystone",
    "whetstone": "repro.workloads.whetstone",
    "compress": "repro.workloads.compress",
    "jpeg_enc": "repro.workloads.jpeg_enc",
    "mpeg2enc": "repro.workloads.mpeg2enc",
}


@dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: builder + golden-model checker."""

    name: str
    build: Callable[[], Program]
    check: Callable[[ExecutionResult], None]


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by its paper name."""
    if name not in _MODULES:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {BENCHMARK_NAMES}"
        )
    module = importlib.import_module(_MODULES[name])
    return Benchmark(name=name, build=module.build, check=module.check)


@dataclass(frozen=True)
class Workload:
    """Cached result of running one benchmark on the ISS.

    ``cycles`` uses the VLIW fetch model: the FR-V issues one 8-byte
    fetch packet per cycle, so program cycles equal the number of
    fetch-packet accesses.  All architectures share this time base
    (the paper's technique adds no cycles); penalty baselines add
    their ``extra_cycles`` on top.
    """

    name: str
    trace: ExecutionTrace
    fetch: FetchStream
    cycles: int


def run_benchmark(name: str) -> ExecutionResult:
    """Assemble and execute ``name``, without caching (used by tests)."""
    return run_program(get_benchmark(name).build())


@lru_cache(maxsize=None)
def load_workload(
    name: str, packet_bytes: int = DEFAULT_FETCH_BYTES
) -> Workload:
    """Run ``name`` once and return its cached traces."""
    result = run_benchmark(name)
    if not result.halted:
        raise RuntimeError(f"benchmark {name} did not halt")
    fetch = fetch_stream(result.trace.flow, packet_bytes)
    return Workload(
        name=name,
        trace=result.trace,
        fetch=fetch,
        cycles=len(fetch),
    )
