"""Benchmark registry and cached workload execution.

Experiments and tests obtain workloads through :func:`load_workload`,
which assembles the benchmark, runs it on the ISS and caches the
resulting traces (execution is deterministic, so caching is sound and
keeps the full-suite experiments fast).  Two cache levels stack:

* an in-process ``lru_cache`` (one ISS run per process at most), and
* a versioned **on-disk trace cache**: the traces are persisted as a
  ``.npz`` archive keyed by workload name, the program's content
  digest, the fetch packet size and the trace format version, so a
  *second process* (another experiment suite, a CI shard, a sweep
  worker) skips the ISS entirely and just loads the arrays.

The disk cache lives in ``$REPRO_TRACE_CACHE`` when set (set it to
``0``/``off`` to disable caching), otherwise in
``$XDG_CACHE_HOME/repro-traces`` (default ``~/.cache/repro-traces``).
Archives are written atomically (temp file + rename) and any
unreadable/garbage archive is ignored and regenerated, so the cache
can never produce wrong traces — the key includes the program digest,
so a changed benchmark generator automatically misses.
"""

from __future__ import annotations

import importlib
import os
import tempfile
import zipfile
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Optional, Tuple

from repro.isa import Program
from repro.sim import ExecutionResult, FetchStream, fetch_stream, run_program
from repro.sim.fetch import DEFAULT_FETCH_BYTES
from repro.sim.trace import ExecutionTrace
from repro.sim.traceio import (
    FORMAT_VERSION,
    TraceFormatError,
    load_traces,
    save_traces,
)

#: The seven benchmarks of the paper's Section 4, in paper order.
BENCHMARK_NAMES: Tuple[str, ...] = (
    "dct",
    "fft",
    "dhrystone",
    "whetstone",
    "compress",
    "jpeg_enc",
    "mpeg2enc",
)

_MODULES = {
    "dct": "repro.workloads.dct",
    "fft": "repro.workloads.fft",
    "dhrystone": "repro.workloads.dhrystone",
    "whetstone": "repro.workloads.whetstone",
    "compress": "repro.workloads.compress",
    "jpeg_enc": "repro.workloads.jpeg_enc",
    "mpeg2enc": "repro.workloads.mpeg2enc",
}

#: Environment variable holding the trace cache directory (or 0/off).
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"


@dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: builder + golden-model checker."""

    name: str
    build: Callable[[], Program]
    check: Callable[[ExecutionResult], None]


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by its paper name."""
    if name not in _MODULES:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {BENCHMARK_NAMES}"
        )
    module = importlib.import_module(_MODULES[name])
    return Benchmark(name=name, build=module.build, check=module.check)


@dataclass(frozen=True)
class Workload:
    """Cached result of running one benchmark on the ISS.

    ``cycles`` uses the VLIW fetch model: the FR-V issues one 8-byte
    fetch packet per cycle, so program cycles equal the number of
    fetch-packet accesses.  All architectures share this time base
    (the paper's technique adds no cycles); penalty baselines add
    their ``extra_cycles`` on top.
    """

    name: str
    trace: ExecutionTrace
    fetch: FetchStream
    cycles: int


def run_benchmark(name: str) -> ExecutionResult:
    """Assemble and execute ``name``, without caching (used by tests)."""
    return run_program(get_benchmark(name).build())


# ----------------------------------------------------------------------
# on-disk trace cache
# ----------------------------------------------------------------------

def trace_cache_dir() -> Optional[Path]:
    """Directory of the on-disk trace cache, or None when disabled."""
    env = os.environ.get(TRACE_CACHE_ENV)
    if env is not None:
        if env.strip().lower() in ("", "0", "off", "none", "disable"):
            return None
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-traces"


def _trace_cache_path(
    name: str, program: Program, packet_bytes: int
) -> Optional[Path]:
    directory = trace_cache_dir()
    if directory is None:
        return None
    return directory / (
        f"{name}-{program.digest()[:16]}-p{packet_bytes}"
        f"-v{FORMAT_VERSION}.npz"
    )


def _load_cached_traces(
    path: Path, packet_bytes: int
) -> Optional[Tuple[ExecutionTrace, FetchStream]]:
    """Read a cached workload archive; None when absent or unusable."""
    if not path.is_file():
        return None
    try:
        trace, fetch = load_traces(str(path))
    except (TraceFormatError, OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile):
        return None
    if fetch is None or fetch.packet_bytes != packet_bytes:
        return None
    return trace, fetch


def _store_cached_traces(
    path: Path, trace: ExecutionTrace, fetch: FetchStream
) -> None:
    """Atomically persist traces; caching is best-effort only."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # numpy appends ".npz" unless the name already ends with it.
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp.npz"
        )
        os.close(fd)
        try:
            save_traces(tmp, trace, fetch)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        pass


def _execute_workload(
    name: str, program: Program, packet_bytes: int
) -> Tuple[ExecutionTrace, FetchStream]:
    """Run the already-assembled ``program`` (no second build)."""
    result = run_program(program)
    if not result.halted:
        raise RuntimeError(f"benchmark {name} did not halt")
    return result.trace, fetch_stream(result.trace.flow, packet_bytes)


@lru_cache(maxsize=None)
def load_workload(
    name: str, packet_bytes: int = DEFAULT_FETCH_BYTES
) -> Workload:
    """Return ``name``'s traces, via the in-process + on-disk caches."""
    bench = get_benchmark(name)
    program = bench.build()
    path = _trace_cache_path(name, program, packet_bytes)

    cached = _load_cached_traces(path, packet_bytes) if path else None
    if cached is not None:
        trace, fetch = cached
    else:
        trace, fetch = _execute_workload(name, program, packet_bytes)
        if path is not None:
            _store_cached_traces(path, trace, fetch)
    return Workload(
        name=name,
        trace=trace,
        fetch=fetch,
        cycles=len(fetch),
    )
