"""Deterministic input-data generation shared by the workloads.

All benchmark inputs are produced by a small linear congruential
generator so every run of the suite is bit-for-bit reproducible without
any external files.
"""

from __future__ import annotations

from typing import List


class LCG:
    """Numerical-Recipes-style 32-bit linear congruential generator."""

    MULT = 1664525
    INC = 1013904223
    MASK = 0xFFFFFFFF

    def __init__(self, seed: int):
        self.state = seed & self.MASK

    def next_u32(self) -> int:
        self.state = (self.state * self.MULT + self.INC) & self.MASK
        return self.state

    def next_range(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi)."""
        if hi <= lo:
            raise ValueError("empty range")
        return lo + self.next_u32() % (hi - lo)

    def choice(self, seq):
        return seq[self.next_range(0, len(seq))]


def words_directive(values: List[int], per_line: int = 8) -> str:
    """Render a list of ints as ``.word`` directives."""
    lines = []
    for pos in range(0, len(values), per_line):
        chunk = values[pos : pos + per_line]
        rendered = ", ".join(str(v & 0xFFFFFFFF) for v in chunk)
        lines.append(f"    .word {rendered}")
    return "\n".join(lines)


def bytes_directive(values: bytes, per_line: int = 16) -> str:
    """Render bytes as ``.byte`` directives."""
    lines = []
    for pos in range(0, len(values), per_line):
        chunk = values[pos : pos + per_line]
        rendered = ", ".join(str(b) for b in chunk)
        lines.append(f"    .byte {rendered}")
    return "\n".join(lines)


def read_words(memory, addr: int, count: int) -> List[int]:
    """Read ``count`` little-endian words from simulated memory."""
    return [memory.read_u32(addr + 4 * i) for i in range(count)]


def to_signed(value: int) -> int:
    """Interpret a uint32 as two's-complement int32."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value
