"""MPEG-2 encoder benchmark: motion estimation + residual coding.

The dominant compute of an MPEG-2 encoder is block-matching motion
estimation: for each 16x16 macroblock of the current frame, a full
search over a +/-``SEARCH`` pixel window of the reference frame finds
the motion vector minimising the sum of absolute differences (SAD).
The benchmark then computes a residual checksum for the best match.

The current frame is a genuinely displaced copy of the reference
(plus noise), so the search recovers real motion; the SAD loops
produce long runs of byte loads from two frames with slowly sliding
bases — the inter-cache-line data locality the paper's D-cache MAB
targets.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa import Program, assemble
from repro.workloads.data import (
    LCG,
    bytes_directive,
    read_words,
    words_directive,
)

FRAME_DIM = 48           # frames are FRAME_DIM x FRAME_DIM bytes
MB_SIZE = 16             # macroblock edge
SEARCH = 2               # +/- search range
TRUE_DY, TRUE_DX = 1, 2  # motion embedded in the current frame
#: Macroblock origins (y, x) in the current frame.
MB_ORIGINS = ((8, 8), (8, 24), (24, 8), (24, 24))
SEED = 0x3BE6


def mb_origins(scale: int = 1) -> List[Tuple[int, int]]:
    """Macroblock origins searched at ``scale``.

    scale=1 is exactly the paper-sized :data:`MB_ORIGINS`; larger
    scales append ``(scale - 1) * 4`` deterministic extra origins
    drawn from the valid window (the search stays inside the frame:
    origin + motion + block edge never leaves ``FRAME_DIM``), so the
    motion-estimation work grows linearly while the frames stay put.
    """
    origins = list(MB_ORIGINS)
    rng = LCG(SEED ^ 0x5CA1E)
    lo, hi = SEARCH, FRAME_DIM - MB_SIZE - SEARCH
    for _ in range((scale - 1) * len(MB_ORIGINS)):
        origins.append(
            (rng.next_range(lo, hi + 1), rng.next_range(lo, hi + 1))
        )
    return origins


def frames() -> Tuple[bytes, bytes]:
    """(reference, current): current is reference shifted by the true
    motion vector with +-2 greylevel noise."""
    rng = LCG(SEED)
    ref = bytes(
        rng.next_range(0, 256) for _ in range(FRAME_DIM * FRAME_DIM)
    )
    cur = bytearray(FRAME_DIM * FRAME_DIM)
    noise_rng = LCG(SEED ^ 0xFFFF)
    for y in range(FRAME_DIM):
        for x in range(FRAME_DIM):
            sy = min(max(y + TRUE_DY, 0), FRAME_DIM - 1)
            sx = min(max(x + TRUE_DX, 0), FRAME_DIM - 1)
            value = ref[sy * FRAME_DIM + sx] + noise_rng.next_range(-2, 3)
            cur[y * FRAME_DIM + x] = value % 256
    return ref, bytes(cur)


# ----------------------------------------------------------------------
# golden model
# ----------------------------------------------------------------------

def _sad(cur: bytes, ref: bytes, cy: int, cx: int,
         ry: int, rx: int) -> int:
    total = 0
    for y in range(MB_SIZE):
        for x in range(MB_SIZE):
            a = cur[(cy + y) * FRAME_DIM + (cx + x)]
            b = ref[(ry + y) * FRAME_DIM + (rx + x)]
            total += abs(a - b)
    return total


def motion_search(cur: bytes, ref: bytes, my: int, mx: int
                  ) -> Tuple[int, int, int]:
    """Best (sad, dy, dx) over the search window, first-found ties."""
    best = (1 << 31) - 1
    best_dy = best_dx = 0
    for dy in range(-SEARCH, SEARCH + 1):
        for dx in range(-SEARCH, SEARCH + 1):
            sad = _sad(cur, ref, my, mx, my + dy, mx + dx)
            if sad < best:
                best, best_dy, best_dx = sad, dy, dx
    return best, best_dy, best_dx


def golden_output(scale: int = 1) -> List[int]:
    ref, cur = frames()
    out: List[int] = []
    for my, mx in mb_origins(scale):
        best, dy, dx = motion_search(cur, ref, my, mx)
        residual = 0
        for y in range(MB_SIZE):
            for x in range(MB_SIZE):
                a = cur[(my + y) * FRAME_DIM + (mx + x)]
                b = ref[(my + dy + y) * FRAME_DIM + (mx + dx + x)]
                residual = (residual * 31 + ((a - b) & 0xFF)) & 0xFFFFFFFF
        out.extend([best, (dy + SEARCH), (dx + SEARCH), residual])
    return out


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------

def build(scale: int = 1) -> Program:
    ref, cur = frames()
    macroblocks = mb_origins(scale)
    name = "mpeg2enc" if scale == 1 else f"mpeg2enc-x{scale}"
    origins = []
    for my, mx in macroblocks:
        origins.extend([my, mx])
    source = f"""
# MPEG-2 motion estimation over {len(macroblocks)} macroblocks,
# +/-{SEARCH} full search, {MB_SIZE}x{MB_SIZE} SAD.
.data
mpg_ref:
{bytes_directive(ref)}
mpg_cur:
{bytes_directive(cur)}
.align 2
mpg_origins:
{words_directive(origins)}
mpg_result:
    .space {16 * len(macroblocks)}

.text
main:
    la   s0, mpg_origins
    la   s1, mpg_result
    li   s2, 0               # macroblock counter
mb_loop:
    lw   s3, 0(s0)           # my
    lw   s4, 4(s0)           # mx
    addi s0, s0, 8

    li   s5, 0x7FFFFFFF      # best sad
    li   s6, 0               # best dy (biased 0..2*SEARCH)
    li   s7, 0               # best dx
    li   s8, {-SEARCH}       # dy
dy_loop:
    li   s9, {-SEARCH}       # dx
dx_loop:
    # a2/a3 = top-left offsets of cur / ref candidate block
    mv   a0, s3
    mv   a1, s4
    add  a2, s3, s8          # ry = my + dy
    add  a3, s4, s9          # rx = mx + dx
    call sad16
    bge  a0, s5, not_better
    mv   s5, a0
    addi s6, s8, {SEARCH}
    addi s7, s9, {SEARCH}
not_better:
    addi s9, s9, 1
    li   t0, {SEARCH}
    ble  s9, t0, dx_loop
    addi s8, s8, 1
    li   t0, {SEARCH}
    ble  s8, t0, dy_loop

    # ---- residual checksum at the best vector --------------------------
    addi t0, s6, {-SEARCH}   # dy
    addi t1, s7, {-SEARCH}   # dx
    add  a2, s3, t0
    add  a3, s4, t1
    mv   a0, s3
    mv   a1, s4
    call residual16
    mv   s10, a0

    sw   s5, 0(s1)
    sw   s6, 4(s1)
    sw   s7, 8(s1)
    sw   s10, 12(s1)
    addi s1, s1, 16
    addi s2, s2, 1
    li   t0, {len(macroblocks)}
    blt  s2, t0, mb_loop
    halt

# sad16(a0=cy, a1=cx, a2=ry, a3=rx) -> a0: 16x16 SAD between frames.
sad16:
    li   t0, {FRAME_DIM}
    mul  t1, a0, t0          # cy * DIM
    add  t1, t1, a1
    la   t2, mpg_cur
    add  t1, t2, t1          # cur row pointer
    mul  t3, a2, t0
    add  t3, t3, a3
    la   t2, mpg_ref
    add  t3, t2, t3          # ref row pointer
    li   t4, 0               # sad accumulator
    li   t5, {MB_SIZE}       # rows remaining
sad_row:
    li   t6, {MB_SIZE}       # cols remaining
    mv   a4, t1
    mv   a5, t3
sad_col:
    lbu  a6, 0(a4)
    lbu  a7, 0(a5)
    sub  a6, a6, a7
    srai a7, a6, 31          # abs() via sign mask
    xor  a6, a6, a7
    sub  a6, a6, a7
    add  t4, t4, a6
    addi a4, a4, 1
    addi a5, a5, 1
    addi t6, t6, -1
    bnez t6, sad_col
    addi t1, t1, {FRAME_DIM}
    addi t3, t3, {FRAME_DIM}
    addi t5, t5, -1
    bnez t5, sad_row
    mv   a0, t4
    ret

# residual16(a0=cy, a1=cx, a2=ry, a3=rx) -> a0: checksum of the
# byte differences of the matched block.
residual16:
    li   t0, {FRAME_DIM}
    mul  t1, a0, t0
    add  t1, t1, a1
    la   t2, mpg_cur
    add  t1, t2, t1
    mul  t3, a2, t0
    add  t3, t3, a3
    la   t2, mpg_ref
    add  t3, t2, t3
    li   t4, 0               # checksum
    li   t5, {MB_SIZE}
    li   a6, 31
res_row:
    li   t6, {MB_SIZE}
    mv   a4, t1
    mv   a5, t3
res_col:
    lbu  a7, 0(a4)
    lbu  t2, 0(a5)
    sub  a7, a7, t2
    andi a7, a7, 255
    mul  t4, t4, a6
    add  t4, t4, a7
    addi a4, a4, 1
    addi a5, a5, 1
    addi t6, t6, -1
    bnez t6, res_col
    addi t1, t1, {FRAME_DIM}
    addi t3, t3, {FRAME_DIM}
    addi t5, t5, -1
    bnez t5, res_row
    mv   a0, t4
    ret
"""
    return assemble(source, name=name)


def check(result, scale: int = 1) -> None:
    prog = build(scale)
    expected = golden_output(scale)
    actual = read_words(
        result.memory, prog.symbol("mpg_result"), len(expected)
    )
    if actual != expected:
        raise AssertionError(
            f"mpeg2enc mismatch: {actual[:8]} != {expected[:8]}"
        )
