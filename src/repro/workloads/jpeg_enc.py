"""JPEG encoder benchmark: DCT + quantisation + zigzag + run-length.

The compute core of a baseline JPEG encoder over ``NUM_BLOCKS`` 8x8
blocks: level shift, separable Q12 DCT, quantisation by the standard
luminance table (integer division), zigzag reordering and zero-run
RLE into an output stream.  Compared to the plain DCT benchmark this
adds table-driven indirection (zigzag), data-dependent control flow
(runs) and division.
"""

from __future__ import annotations

from typing import List

from repro.isa import Program, assemble
from repro.workloads.data import LCG, read_words, words_directive
from repro.workloads.dct import cosine_table, dct_2d
from repro.workloads.kernels import dct1d_asm, dct2d_driver_asm

NUM_BLOCKS = 12
SEED = 0x1BE6
EOB_MARKER = 255

#: The standard JPEG luminance quantisation table (Annex K).
QUANT_TABLE = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

#: Zigzag scan order: position i of the stream reads block[ZIGZAG[i]].
ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def input_blocks(scale: int = 1) -> List[int]:
    """Smooth-ish pseudo image data (mixes a gradient with noise).

    ``scale`` multiplies the number of 8x8 blocks; scale=1 is the
    paper-sized input, bit-for-bit unchanged (the generator stream
    simply continues for the extra blocks).
    """
    rng = LCG(SEED)
    pixels = []
    for blk in range(NUM_BLOCKS * scale):
        for y in range(8):
            for x in range(8):
                base = (blk * 11 + y * 9 + x * 5) % 160 + 40
                pixels.append((base + rng.next_range(-16, 17)) % 256)
    return pixels


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


# ----------------------------------------------------------------------
# golden model
# ----------------------------------------------------------------------

def encode_block(block: List[int], table: List[int]) -> List[int]:
    """Level shift, DCT, quantise, zigzag, RLE one 8x8 block."""
    shifted = [p - 128 for p in block]
    coeffs = dct_2d(shifted, table)
    quantised = [
        _trunc_div(coeffs[i], QUANT_TABLE[i]) for i in range(64)
    ]
    stream: List[int] = []
    run = 0
    for pos in range(64):
        value = quantised[ZIGZAG[pos]]
        if value == 0:
            run += 1
        else:
            stream.append(run)
            stream.append(value & 0xFFFFFFFF)
            run = 0
    stream.append(EOB_MARKER)
    stream.append(0)
    return stream


def golden_output(scale: int = 1) -> List[int]:
    """(stream length, checksum) like the assembly result block."""
    table = cosine_table()
    pixels = input_blocks(scale)
    stream: List[int] = []
    for blk in range(NUM_BLOCKS * scale):
        stream.extend(
            encode_block(pixels[blk * 64 : blk * 64 + 64], table)
        )
    checksum = 0
    for word in stream:
        checksum = (checksum * 31 + word) & 0xFFFFFFFF
    return [len(stream), checksum]


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------

def build(scale: int = 1) -> Program:
    num_blocks = NUM_BLOCKS * scale
    name = "jpeg_enc" if scale == 1 else f"jpeg_enc-x{scale}"
    source = f"""
# JPEG encoder core: {num_blocks} blocks -> DCT -> quant -> zigzag -> RLE.
.data
jpg_input:
{words_directive(input_blocks(scale))}
jpg_costab:
{words_directive(cosine_table())}
jpg_quant:
{words_directive(QUANT_TABLE)}
jpg_zigzag:
{words_directive(ZIGZAG)}
jpg_shifted:
    .space 256
jpg_coeffs:
    .space 256
jpg_stream:
    .space {4 * num_blocks * 140}
jpg_result:
    .space 8

.text
main:
    la   s2, jpg_input
    la   s3, jpg_stream      # output cursor
    li   s0, 0               # block counter
jblk_loop:
    # ---- level shift into jpg_shifted ---------------------------------
    la   t0, jpg_shifted
    mv   t1, s2
    li   t2, 64
shift_loop:
    lw   t3, 0(t1)
    addi t3, t3, -128
    sw   t3, 0(t0)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, shift_loop

    # ---- 2-D DCT -------------------------------------------------------
    la   s5, jpg_shifted
    la   s6, jpg_coeffs
    call jdct2d

    # ---- quantise in place ----------------------------------------------
    la   t0, jpg_coeffs
    la   t1, jpg_quant
    li   t2, 64
quant_loop:
    lw   t3, 0(t0)
    lw   t4, 0(t1)
    div  t3, t3, t4
    sw   t3, 0(t0)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, quant_loop

    # ---- zigzag + RLE ----------------------------------------------------
    la   t0, jpg_zigzag
    la   t1, jpg_coeffs
    li   t2, 0               # position
    li   t5, 0               # zero run length
rle_loop:
    lw   t3, 0(t0)           # zigzag index
    slli t3, t3, 2
    add  t3, t1, t3
    lw   t4, 0(t3)           # quantised value
    beqz t4, rle_zero
    sw   t5, 0(s3)           # emit run length
    sw   t4, 4(s3)           # emit value
    addi s3, s3, 8
    li   t5, 0
    j    rle_next
rle_zero:
    addi t5, t5, 1
rle_next:
    addi t0, t0, 4
    addi t2, t2, 1
    li   t6, 64
    blt  t2, t6, rle_loop
    li   t6, {EOB_MARKER}    # end-of-block marker
    sw   t6, 0(s3)
    sw   zero, 4(s3)
    addi s3, s3, 8

    addi s2, s2, 256         # next input block
    addi s0, s0, 1
    li   t0, {num_blocks}
    blt  s0, t0, jblk_loop

    # ---- stream length + checksum ----------------------------------------
    la   t0, jpg_stream
    sub  t2, s3, t0          # bytes emitted
    srli t2, t2, 2           # words emitted
    li   t1, 0               # checksum
    mv   t3, t2              # counter
    li   t5, 31
jck_loop:
    lw   t4, 0(t0)
    mul  t1, t1, t5
    add  t1, t1, t4
    addi t0, t0, 4
    addi t3, t3, -1
    bnez t3, jck_loop
    la   t6, jpg_result
    sw   t2, 0(t6)
    sw   t1, 4(t6)
    halt

{dct1d_asm("jdct1d", "jpg_costab")}
{dct2d_driver_asm("jdct2d", "jdct1d", "jpg_tmp")}

.data
jpg_tmp:
    .space 256
"""
    return assemble(source, name=name)


def check(result, scale: int = 1) -> None:
    prog = build(scale)
    expected = golden_output(scale)
    actual = read_words(result.memory, prog.symbol("jpg_result"), 2)
    if actual != expected:
        raise AssertionError(
            f"jpeg_enc mismatch: {actual} != {expected}"
        )
