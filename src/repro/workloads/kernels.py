"""Shared assembly kernel generators used by multiple workloads."""

from __future__ import annotations


def dct1d_asm(name: str, table_label: str, q_shift: int = 12) -> str:
    """Emit an 8-point fixed-point DCT subroutine.

    Signature: ``name(a0=src, a1=dst, a2=src stride, a3=dst stride)``;
    walks the 64-entry Q``q_shift`` coefficient table at
    ``table_label`` row-major.  Clobbers t0-t6, a5.
    """
    return f"""
# {name}(a0=src, a1=dst, a2=src stride, a3=dst stride): 8-point DCT.
{name}:
    la   t6, {table_label}
    li   t0, 0               # u
    li   a5, 8
{name}_u:
    li   t1, 0               # x
    li   t2, 0               # accumulator
    mv   t3, a0              # sample pointer
{name}_x:
    lw   t4, 0(t3)
    lw   t5, 0(t6)
    mul  t4, t4, t5
    add  t2, t2, t4
    add  t3, t3, a2
    addi t6, t6, 4
    addi t1, t1, 1
    blt  t1, a5, {name}_x
    srai t2, t2, {q_shift}
    sw   t2, 0(a1)
    add  a1, a1, a3
    addi t0, t0, 1
    blt  t0, a5, {name}_u
    ret
"""


def dct2d_driver_asm(
    name: str,
    dct1d_name: str,
    tmp_label: str,
) -> str:
    """Emit a 2-D 8x8 DCT subroutine built on ``dct1d_name``.

    Signature: ``name(s5=src block, s6=dst block)`` — row pass into the
    ``tmp_label`` scratch block, column pass into the destination.
    Clobbers s4, t0 and everything ``dct1d_name`` clobbers; preserves
    ra via the stack.
    """
    return f"""
# {name}(s5=src block, s6=dst block): separable 8x8 DCT.
{name}:
    addi sp, sp, -4
    sw   ra, 0(sp)
    la   s1, {tmp_label}
    li   s4, 0               # row index
{name}_rows:
    slli t0, s4, 5           # r * 32 bytes
    add  a0, s5, t0
    add  a1, s1, t0
    li   a2, 4
    li   a3, 4
    call {dct1d_name}
    addi s4, s4, 1
    li   t0, 8
    blt  s4, t0, {name}_rows
    li   s4, 0               # column index
{name}_cols:
    slli t0, s4, 2           # c * 4 bytes
    add  a0, s1, t0
    add  a1, s6, t0
    li   a2, 32
    li   a3, 32
    call {dct1d_name}
    addi s4, s4, 1
    li   t0, 8
    blt  s4, t0, {name}_cols
    lw   ra, 0(sp)
    addi sp, sp, 4
    ret
"""
