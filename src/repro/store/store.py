"""Durable, content-addressed result store (SQLite, WAL mode).

Every evaluated design point can be persisted as one row keyed by

* the **canonical spec serialization** (``RunSpec.key()`` — sorted
  keys, compact separators, versioned layout),
* the **result schema version** (:data:`~repro.api.result.RESULT_SCHEMA_VERSION`), and
* the **code-version fingerprint**
  (:func:`~repro.store.fingerprint.code_fingerprint`),

so a stored result is returned only when the identical question would
be answered by the identical code — content addressing, never staleness.
The stored value is the result's canonical JSON document, which
round-trips byte-identically (``RunResult.from_json(x).to_json() == x``),
so warm reads are indistinguishable from fresh simulations.

Concurrency and durability:

* the database runs in WAL mode with a generous busy timeout, so many
  processes (CI shards, sweep workers, service threads) read and write
  the same file safely;
* writes are ``INSERT OR IGNORE`` — two processes racing on the same
  key both succeed, and since equal keys imply equal bytes the winner
  is irrelevant;
* a truncated or corrupt store file is detected (``sqlite3`` raises
  ``DatabaseError``), quarantined to ``<name>.corrupt`` and rebuilt
  empty — corruption costs re-simulation, never a crash or a wrong
  result.

The location is ``$REPRO_RESULT_STORE`` when set (a file path, or
``0``/``off``/``none`` to disable persistence entirely), otherwise
``$XDG_CACHE_HOME/repro-results/results.sqlite`` (default
``~/.cache/repro-results/results.sqlite``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, TextIO, Union

from repro.api.result import RESULT_SCHEMA_VERSION, RunResult
from repro.api.spec import RunSpec
from repro.store.fingerprint import code_fingerprint
from repro.telemetry import metrics as telemetry

#: Environment variable overriding the store location (or 0/off/none).
STORE_ENV = "REPRO_RESULT_STORE"

#: Values of :data:`STORE_ENV` that disable persistence.
_DISABLED_TOKENS = ("", "0", "off", "none", "disable")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    spec_key      TEXT    NOT NULL,
    result_schema INTEGER NOT NULL,
    fingerprint   TEXT    NOT NULL,
    result_json   TEXT    NOT NULL,
    created_at    REAL    NOT NULL,
    last_used_at  REAL,
    PRIMARY KEY (spec_key, result_schema, fingerprint)
)
"""

# Lifetime traffic counters, persisted beside the results so hit/miss
# history survives the process (the in-memory ``hits``/``misses``
# attributes reset with every run).  Created by the same in-place
# migration path as ``last_used_at``: older store files gain the table
# on first write contact with new code.
_STATS_SCHEMA = """
CREATE TABLE IF NOT EXISTS stats (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
)
"""

#: Counter keys the ``stats`` table may hold.
LIFETIME_KEYS = ("hits", "misses", "puts", "evictions", "quarantines")


@dataclass(frozen=True)
class ImportReport:
    """Outcome of merging an export archive into a store."""

    merged: int            #: rows inserted
    skipped_version: int   #: fingerprint / schema-version mismatch
    skipped_invalid: int   #: malformed lines or inconsistent documents
    skipped_existing: int  #: already present (INSERT OR IGNORE)


def store_path() -> Optional[Path]:
    """Resolved store file path, or ``None`` when persistence is off."""
    env = os.environ.get(STORE_ENV)
    if env is not None:
        if env.strip().lower() in _DISABLED_TOKENS:
            return None
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-results" / "results.sqlite"


class ResultStore:
    """One SQLite-backed result store file.

    Operations open a short-lived connection each, so a single instance
    is safe to share between threads (the service) and the file between
    processes (CI shards, sweep workers).  The instance keeps
    process-local ``hits`` / ``misses`` / ``puts`` counters — the
    assertable evidence that a warm run performed zero simulations.
    """

    def __init__(self, path: Union[str, Path], read_only: bool = False):
        self.path = Path(path)
        self.read_only = read_only
        self.fingerprint = code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._lru_migrated = read_only
        self._pending_quarantines = 0
        self._lock = threading.Lock()
        if not read_only:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._execute(lambda conn: None)   # create schema / verify file

    # -- connection plumbing -------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self.read_only:
            # mode=ro enforces read-only at the SQLite layer even for
            # a privileged process (file permission bits do not bind
            # root) — every write raises OperationalError, which the
            # callers degrade from; hits keep being served.
            conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, timeout=30.0
            )
            return conn
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(_SCHEMA)
        conn.execute(_STATS_SCHEMA)
        if not self._lru_migrated:
            self._migrate_lru_column(conn)
        if self._pending_quarantines:
            # A quarantine happened while no healthy file existed to
            # record it in; charge it to the rebuilt store now.
            pending, self._pending_quarantines = (
                self._pending_quarantines, 0
            )
            self._bump(conn, "quarantines", pending)
        return conn

    def _migrate_lru_column(self, conn: sqlite3.Connection) -> None:
        """Teach pre-LRU store files the ``last_used_at`` column.

        Runs until it succeeds once per instance (the column can only
        be missing on first contact with an old file).  NULL means
        "never read since the upgrade"; gc falls back to
        ``created_at``.  A store that cannot be written (read-only
        share) keeps working without the column — reads never
        reference it and every write on such a store fails anyway.
        """
        columns = {
            row[1] for row in conn.execute("PRAGMA table_info(results)")
        }
        if "last_used_at" not in columns:
            try:
                conn.execute(
                    "ALTER TABLE results ADD COLUMN last_used_at REAL"
                )
            except sqlite3.OperationalError as exc:
                # Two connections can race the upgrade; the loser's
                # "duplicate column name" means the winner already
                # migrated.  "readonly database" degrades to
                # no-recency-tracking.  Anything else is real.
                message = str(exc).lower()
                if ("duplicate column" not in message
                        and "readonly" not in message
                        and "read-only" not in message):
                    raise
        self._lru_migrated = True

    @staticmethod
    def _is_corruption(exc: sqlite3.DatabaseError) -> bool:
        """Corrupt/truncated file vs a transient operational failure.

        Only genuine corruption justifies quarantining the file; lock
        timeouts, full disks and programming errors (all raised as
        ``DatabaseError`` subclasses too) must surface unchanged —
        quarantining a merely *busy* shared store would destroy every
        other process's accumulated results.
        """
        if isinstance(exc, (sqlite3.OperationalError,
                            sqlite3.ProgrammingError,
                            sqlite3.IntegrityError,
                            sqlite3.InterfaceError,
                            sqlite3.DataError)):
            message = str(exc).lower()
            return "malformed" in message or "not a database" in message
        return True      # bare DatabaseError: NOTADB / CORRUPT family

    @staticmethod
    def _bump(
        conn: sqlite3.Connection, key: str, amount: int
    ) -> None:
        """Add to a lifetime counter, best-effort.

        Rides whatever connection/transaction the caller already holds
        (no extra WAL round-trip); like :meth:`_touch`, a store that
        cannot be written — read-only share, pre-migration file opened
        ``mode=ro`` — keeps serving without lifetime accounting.
        """
        if not amount:
            return
        try:
            conn.execute(
                "INSERT INTO stats (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET "
                "value = value + excluded.value",
                (key, int(amount)),
            )
        except sqlite3.Error:
            pass

    def _quarantine(self) -> None:
        """Move a corrupt store aside and start from an empty file.

        Concurrent writers can detect the same corruption and race
        into this path from several processes; whoever quarantines
        first wins and the losers' missing-file errors are ignored —
        everyone proceeds onto the rebuilt store.
        """
        self._pending_quarantines += 1
        for suffix in ("-wal", "-shm"):
            side = Path(str(self.path) + suffix)
            try:
                side.unlink()
            except FileNotFoundError:
                pass
        try:
            os.replace(self.path, str(self.path) + ".corrupt")
        except FileNotFoundError:
            pass

    def _execute(self, fn, _retried: bool = False):
        """Run ``fn(conn)``; quarantine + retry once on corruption."""
        try:
            conn = self._connect()
            try:
                with conn:
                    return fn(conn)
            finally:
                conn.close()
        except sqlite3.DatabaseError as exc:
            if (_retried or self.read_only
                    or not self._is_corruption(exc)):
                raise
            with self._lock:
                self._quarantine()
            telemetry.counter(
                "repro_store_quarantines_total",
                "Corrupt store files quarantined and rebuilt.",
            ).inc()
            return self._execute(fn, _retried=True)

    # -- read side ------------------------------------------------------

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for ``spec`` under the current code, or None."""
        found = self.get_many([spec])
        return found.get(spec.key())

    def get_many(
        self, specs: Sequence[RunSpec]
    ) -> Dict[str, RunResult]:
        """Bulk lookup: ``{spec.key(): RunResult}`` for every stored hit."""
        from repro.testing import faults

        if faults.should_fire("store_read_error"):
            raise sqlite3.OperationalError(
                "injected fault: store_read_error"
            )
        keys = [spec.key() for spec in specs]
        unique = list(dict.fromkeys(keys))
        rows: Dict[str, str] = {}
        if unique:
            def query(conn: sqlite3.Connection):
                placeholders = ",".join("?" for _ in unique)
                found = conn.execute(
                    f"SELECT spec_key, result_json FROM results "
                    f"WHERE result_schema = ? AND fingerprint = ? "
                    f"AND spec_key IN ({placeholders})",
                    [RESULT_SCHEMA_VERSION, self.fingerprint, *unique],
                ).fetchall()
                self._touch(conn, [key for key, _ in found])
                self._bump(conn, "hits", len(found))
                self._bump(conn, "misses", len(unique) - len(found))
                return found

            rows = dict(self._execute(query))
        found = {
            key: RunResult.from_json(document)
            for key, document in rows.items()
        }
        with self._lock:
            self.hits += len(found)
            self.misses += len(unique) - len(found)
        telemetry.counter(
            "repro_store_hits_total", "Result-store read hits."
        ).inc(len(found))
        telemetry.counter(
            "repro_store_misses_total", "Result-store read misses."
        ).inc(len(unique) - len(found))
        return found

    def peek_many(
        self, specs: Sequence[RunSpec]
    ) -> Dict[str, RunResult]:
        """Bulk lookup that observes without perturbing.

        Unlike :meth:`get_many` this neither stamps ``last_used_at``
        nor moves any counter (process-local, lifetime or telemetry) —
        the read path the dashboard uses, so rendering a report page
        can never distort the hit-rate it displays or refresh rows
        that gc would otherwise reclaim.
        """
        keys = [spec.key() for spec in specs]
        unique = list(dict.fromkeys(keys))
        if not unique:
            return {}

        def query(conn: sqlite3.Connection):
            placeholders = ",".join("?" for _ in unique)
            return conn.execute(
                f"SELECT spec_key, result_json FROM results "
                f"WHERE result_schema = ? AND fingerprint = ? "
                f"AND spec_key IN ({placeholders})",
                [RESULT_SCHEMA_VERSION, self.fingerprint, *unique],
            ).fetchall()

        return {
            key: RunResult.from_json(document)
            for key, document in self._execute(query)
        }

    def _touch(
        self, conn: sqlite3.Connection, hit_keys: Sequence[str]
    ) -> None:
        """Stamp ``last_used_at`` on read hits, best-effort.

        Runs on the read's own connection/transaction (no second WAL
        writer round-trip per lookup batch), but recency is an
        optimisation, never a requirement: a store that cannot be
        written (read-only share, another machine's exported file
        mounted read-only) must still serve its hits, so a failing
        stamp is swallowed rather than turning every hit into a miss.
        """
        if not hit_keys:
            return
        try:
            marks = ",".join("?" for _ in hit_keys)
            conn.execute(
                f"UPDATE results SET last_used_at = ? "
                f"WHERE result_schema = ? AND fingerprint = ? "
                f"AND spec_key IN ({marks})",
                [time.time(), RESULT_SCHEMA_VERSION,
                 self.fingerprint, *hit_keys],
            )
        except sqlite3.Error:
            pass

    # -- write side -----------------------------------------------------

    def put(self, result: RunResult) -> None:
        self.put_many([result])

    def put_many(self, results: Iterable[RunResult]) -> int:
        """Persist a batch in one transaction; racing writers are safe
        (equal keys imply equal bytes, so OR IGNORE loses nothing).
        Returns — and counts into ``puts`` — only the rows actually
        inserted, so the counter means one thing everywhere."""
        from repro.testing import faults

        if faults.should_fire("store_write_error"):
            raise sqlite3.OperationalError(
                "injected fault: store_write_error"
            )
        rows = [self._row(result) for result in results]
        if not rows:
            return 0
        inserted = self._insert_rows(rows)
        with self._lock:
            self.puts += inserted
        telemetry.counter(
            "repro_store_puts_total",
            "Result rows actually inserted into the store.",
        ).inc(inserted)
        return inserted

    def _row(self, result: RunResult) -> tuple:
        """One canonical table row (the single row-shape definition)."""
        now = time.time()
        return (
            result.spec.key(), RESULT_SCHEMA_VERSION,
            self.fingerprint, result.to_json(), now, now,
        )

    def _insert_rows(self, rows: Sequence[tuple]) -> int:
        """``INSERT OR IGNORE`` a batch; returns how many were new."""
        def insert(conn: sqlite3.Connection):
            before = conn.total_changes
            conn.executemany(
                "INSERT OR IGNORE INTO results "
                "(spec_key, result_schema, fingerprint, result_json, "
                "created_at, last_used_at) VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
            inserted = conn.total_changes - before
            self._bump(conn, "puts", inserted)
            return inserted

        return self._execute(insert)

    # -- maintenance ----------------------------------------------------

    def reset_counters(self) -> None:
        """Zero the process-local hit/miss/put counters (tests)."""
        with self._lock:
            self.hits = self.misses = self.puts = 0

    def lifetime_stats(self) -> Dict[str, int]:
        """Cumulative cross-process counters from the ``stats`` table.

        Every key in :data:`LIFETIME_KEYS` is present (0 when never
        bumped); a pre-migration or unreadable stats table reads as
        all zeros rather than failing the caller.
        """
        def query(conn: sqlite3.Connection):
            try:
                return dict(
                    conn.execute("SELECT key, value FROM stats")
                )
            except sqlite3.OperationalError:
                return {}

        stored = self._execute(query)
        return {
            key: int(stored.get(key, 0)) for key in LIFETIME_KEYS
        }

    def stats(self) -> Dict[str, object]:
        """Store shape + this process's traffic, as one JSON-able dict.

        ``lifetime_*`` keys come from the persistent ``stats`` table —
        traffic accumulated by every process that ever used this file
        — while ``process_*`` keys are this instance's counters.
        """
        def query(conn: sqlite3.Connection):
            total = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            current = conn.execute(
                "SELECT COUNT(*) FROM results "
                "WHERE result_schema = ? AND fingerprint = ?",
                (RESULT_SCHEMA_VERSION, self.fingerprint),
            ).fetchone()[0]
            return total, current

        total, current = self._execute(query)
        size = self.path.stat().st_size if self.path.exists() else 0
        document: Dict[str, object] = {
            "path": str(self.path),
            "fingerprint": self.fingerprint,
            "result_schema": RESULT_SCHEMA_VERSION,
            "entries": total,
            "entries_current_code": current,
            "file_bytes": size,
            "process_hits": self.hits,
            "process_misses": self.misses,
            "process_puts": self.puts,
        }
        for key, value in self.lifetime_stats().items():
            document[f"lifetime_{key}"] = value
        return document

    def gc(
        self,
        max_rows: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> int:
        """Drop rows from other code versions / result schemas, plus
        (optionally) least-recently-used rows.

        Content addressing means cross-version rows can never be
        served again by this build; reclaiming them keeps the file
        proportional to the live design space.  ``max_rows`` keeps
        only the N most recently used rows; ``max_age_days`` drops
        rows not used for that many days.  Recency is
        ``last_used_at`` (stamped on every read hit), falling back to
        ``created_at`` for rows from pre-LRU stores.  Returns the
        total number of rows removed.
        """
        if max_rows is not None and max_rows < 0:
            raise ValueError(f"max_rows must be >= 0, got {max_rows}")
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(
                f"max_age_days must be >= 0, got {max_age_days}"
            )
        recency = "COALESCE(last_used_at, created_at)"

        def delete(conn: sqlite3.Connection):
            removed = conn.execute(
                "DELETE FROM results "
                "WHERE result_schema != ? OR fingerprint != ?",
                (RESULT_SCHEMA_VERSION, self.fingerprint),
            ).rowcount
            if max_age_days is not None:
                cutoff = time.time() - max_age_days * 86400.0
                removed += conn.execute(
                    f"DELETE FROM results WHERE {recency} < ?",
                    (cutoff,),
                ).rowcount
            if max_rows is not None:
                removed += conn.execute(
                    f"DELETE FROM results WHERE rowid IN ("
                    f"  SELECT rowid FROM results "
                    f"  ORDER BY {recency} DESC, spec_key "
                    f"  LIMIT -1 OFFSET ?)",
                    (max_rows,),
                ).rowcount
            self._bump(conn, "evictions", removed)
            return removed

        removed = self._execute(delete)
        telemetry.counter(
            "repro_store_evictions_total",
            "Result rows removed by store gc.",
        ).inc(removed)
        # VACUUM cannot run inside the _execute transaction.
        conn = self._connect()
        try:
            conn.execute("VACUUM")
        finally:
            conn.close()
        return removed

    def export(self, handle: TextIO) -> int:
        """Write every current-code row as JSON lines; returns the count.

        Each line is ``{"spec_key": ..., "result": {...},
        "fingerprint": ..., "result_schema": ...}`` in ``spec_key``
        order, so exports diff cleanly across stores — and carry the
        content address :meth:`import_archive` checks before merging.
        """
        def query(conn: sqlite3.Connection):
            return conn.execute(
                "SELECT spec_key, result_json FROM results "
                "WHERE result_schema = ? AND fingerprint = ? "
                "ORDER BY spec_key",
                (RESULT_SCHEMA_VERSION, self.fingerprint),
            ).fetchall()

        rows = self._execute(query)
        for key, document in rows:
            handle.write(json.dumps(
                {
                    "spec_key": key,
                    "result": json.loads(document),
                    "fingerprint": self.fingerprint,
                    "result_schema": RESULT_SCHEMA_VERSION,
                },
                sort_keys=True, separators=(",", ":"),
            ) + "\n")
        return len(rows)

    def import_archive(self, handle: TextIO) -> ImportReport:
        """Merge a :meth:`export` archive (JSON lines) into this store.

        The multi-machine pooling primitive: CI shards or co-workers
        export their stores and everyone imports everyone else's.
        Rows are re-keyed through ``RunResult.from_dict`` (so the
        stored bytes are canonical regardless of the archive's
        formatting) and inserted with ``INSERT OR IGNORE`` — racing
        importers and already-present keys are safe.  Rows whose code
        fingerprint or result schema version differ from this build's
        are skipped: content addressing would never serve them here.
        Duplicate keys *within* the archive (concatenated overlapping
        shards) are collapsed to one row — equal keys imply equal
        result bytes — so ``skipped_existing`` counts only rows this
        store already had.
        """
        from repro.api.result import RunResult

        rows: Dict[str, tuple] = {}
        skipped_version = skipped_invalid = 0
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                if not isinstance(entry, dict):
                    raise ValueError("archive line is not an object")
            except (json.JSONDecodeError, ValueError):
                skipped_invalid += 1
                continue
            if (entry.get("fingerprint") != self.fingerprint
                    or entry.get("result_schema")
                    != RESULT_SCHEMA_VERSION):
                skipped_version += 1
                continue
            try:
                result = RunResult.from_dict(entry["result"])
                if result.spec.key() != entry.get("spec_key"):
                    raise ValueError("spec_key/result mismatch")
            except (KeyError, TypeError, ValueError):
                skipped_invalid += 1
                continue
            rows.setdefault(result.spec.key(), self._row(result))

        merged = 0
        if rows:
            merged = self._insert_rows(list(rows.values()))
            with self._lock:
                self.puts += merged
        return ImportReport(
            merged=merged,
            skipped_version=skipped_version,
            skipped_invalid=skipped_invalid,
            skipped_existing=len(rows) - merged,
        )


# ----------------------------------------------------------------------
# process-wide default store
# ----------------------------------------------------------------------

#: Memoized stores keyed by resolved path, so counters accumulate per
#: process while $REPRO_RESULT_STORE changes (tests) take effect
#: immediately.
_STORES: Dict[Path, ResultStore] = {}
_STORES_LOCK = threading.Lock()


def default_store() -> Optional[ResultStore]:
    """The store at the environment-resolved path, or None when off.

    A store that cannot be opened at all (unwritable directory, broken
    filesystem) disables persistence for the process rather than
    failing the evaluation that asked for it.
    """
    path = store_path()
    if path is None:
        return None
    with _STORES_LOCK:
        store = _STORES.get(path)
        if store is None:
            try:
                store = ResultStore(path)
            except (OSError, sqlite3.Error):
                return None
            _STORES[path] = store
        return store


def reset_default_stores() -> None:
    """Forget memoized stores (tests switching $REPRO_RESULT_STORE)."""
    with _STORES_LOCK:
        _STORES.clear()
