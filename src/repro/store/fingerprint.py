"""Code-version fingerprint for content-addressed results.

A stored result is only valid for the code that produced it.  Rather
than trusting a hand-bumped version number, the store keys every row
by a digest of the ``repro`` package's own source tree: any edit to
any module — a kernel tweak, a power-model constant, a workload
generator — changes the fingerprint, and every previously stored
result silently becomes a miss (``repro store gc`` reclaims them).

The digest covers file *contents and relative paths* of every ``.py``
file under the package root, in sorted order, so it is identical
across processes, machines and installation paths.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

import repro

#: Number of hex digits kept from the sha256 digest (collision odds at
#: 16 digits are negligible for a cache key scoped to one repository).
FINGERPRINT_LENGTH = 16


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources (stable per code state)."""
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:FINGERPRINT_LENGTH]
