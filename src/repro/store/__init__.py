"""``repro.store`` — the persistent, content-addressed result store.

Process-level result caching (``repro.api.evaluate``'s ``_RESULTS``)
dies with the process; this package makes every evaluated design point
durable.  Results live in one SQLite file (WAL mode, safe for
concurrent CI shards / sweep workers / service threads), keyed by the
canonical spec JSON + the result schema version + a fingerprint of the
``repro`` sources — so a warm store answers only the *identical*
question asked of the *identical* code, and a warm ``repro report`` /
``repro sweep`` / service batch performs zero simulations.

Location: ``$REPRO_RESULT_STORE`` (a file path, or ``0``/``off`` to
disable), default ``~/.cache/repro-results/results.sqlite``.  CLI:
``repro store {stats,gc,export,import}`` (``gc --max-rows/--max-age``
evicts least-recently-used rows; ``import`` merges another store's
export archive for multi-machine pooling).
"""

from repro.store.fingerprint import code_fingerprint
from repro.store.store import (
    STORE_ENV,
    ImportReport,
    ResultStore,
    default_store,
    reset_default_stores,
    store_path,
)

__all__ = [
    "STORE_ENV",
    "ImportReport",
    "ResultStore",
    "code_fingerprint",
    "default_store",
    "reset_default_stores",
    "store_path",
]
