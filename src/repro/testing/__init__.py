"""``repro.testing`` — fault injection and chaos-test support.

Production code imports :mod:`repro.testing.faults` only to call its
zero-cost ``should_fire`` checks; everything heavier lives in the test
suite.  See ``faults.py`` for the ``$REPRO_FAULTS`` syntax.
"""

from repro.testing.faults import (
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    FAULTS_STATE_ENV,
    FaultPlan,
    activate,
    active_plan,
    reload_plan,
    should_fire,
)

__all__ = [
    "FAULTS_ENV",
    "FAULTS_SEED_ENV",
    "FAULTS_STATE_ENV",
    "FaultPlan",
    "activate",
    "active_plan",
    "reload_plan",
    "should_fire",
]
