"""Deterministic fault injection (``$REPRO_FAULTS``).

The chaos suite and the fault leg of ``determinism_check`` need the
store, the worker pool and the HTTP layer to fail *on demand and
reproducibly* — a fault that fires at a random wall-clock moment can
never anchor a byte-identity assertion.  This module gives every
injection point in the codebase one cheap, seeded gate:

    REPRO_FAULTS="store_read_error:0.1,worker_crash:2,slow_sim:3"

is a comma-separated list of ``point:value`` pairs where

* a value **containing a dot** (``0.1``) is a per-call probability
  drawn from a per-point ``random.Random`` seeded with
  ``$REPRO_FAULTS_SEED`` (default 0) — the decision *sequence* for a
  point is a pure function of the seed, and
* an **integer** value (``2``) is a budget: the first N calls fire,
  every later one passes.  With ``$REPRO_FAULTS_STATE`` pointing at a
  directory, the budget is consumed atomically *across processes*
  (worker subprocesses included) via ``O_CREAT|O_EXCL`` token files —
  "crash the first two worker attempts, then let the retries
  succeed" means exactly that even though every attempt runs in a
  fresh subprocess.  Without a state directory the budget is
  per-process.

Known injection points (the call sites define the failure mode):

===================  ==================================================
``store_read_error``  :meth:`ResultStore.get_many` raises
                      ``sqlite3.OperationalError``
``store_write_error`` :meth:`ResultStore.put_many` raises
                      ``sqlite3.OperationalError``
``worker_crash``      the evaluation subprocess ``os._exit(3)``\\ s
                      before simulating
``worker_hang``       the evaluation subprocess sleeps past its
                      wall-clock timeout
``slow_sim``          ``evaluate`` sleeps ``$REPRO_FAULTS_SLOW_SIM``
                      seconds (default 0.2) before simulating
``http_error``        the server answers POSTs with a 500 before
                      dispatching
===================  ==================================================

With ``$REPRO_FAULTS`` unset every ``should_fire`` call is a single
``is None`` check — production pays nothing.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
FAULTS_STATE_ENV = "REPRO_FAULTS_STATE"
SLOW_SIM_ENV = "REPRO_FAULTS_SLOW_SIM"

#: Fault points production code may gate on (documented above);
#: parsing rejects unknown names so a typo cannot silently disable a
#: chaos scenario.
KNOWN_POINTS = (
    "store_read_error",
    "store_write_error",
    "worker_crash",
    "worker_hang",
    "slow_sim",
    "http_error",
)


def _parse_value(point: str, text: str) -> Union[float, int]:
    try:
        if "." in text or "e" in text.lower():
            probability = float(text)
            if not 0.0 <= probability <= 1.0:
                raise ValueError
            return probability
        count = int(text)
        if count < 0:
            raise ValueError
        return count
    except ValueError:
        raise ValueError(
            f"fault {point!r}: value {text!r} must be a probability "
            "in [0,1] (with a dot) or a non-negative trigger count"
        ) from None


class FaultPlan:
    """One parsed ``$REPRO_FAULTS`` specification.

    Thread-safe; a single instance serves every injection point of a
    process (and, through the state directory, coordinates budgets
    with sibling processes).
    """

    def __init__(
        self,
        spec: str,
        seed: int = 0,
        state_dir: Optional[Union[str, Path]] = None,
    ):
        self.spec = spec
        self.seed = seed
        self.state_dir = Path(state_dir) if state_dir else None
        self._rules: Dict[str, Union[float, int]] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._local_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            point, _, value = part.partition(":")
            point = point.strip()
            if point not in KNOWN_POINTS:
                raise ValueError(
                    f"unknown fault point {point!r}; known: "
                    f"{', '.join(KNOWN_POINTS)}"
                )
            if not value:
                raise ValueError(
                    f"fault {point!r} needs a ':value' "
                    "(probability or count)"
                )
            self._rules[point] = _parse_value(point, value.strip())
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)

    def points(self) -> Tuple[str, ...]:
        return tuple(self._rules)

    def should_fire(self, point: str) -> bool:
        """Decide (and, for budgets, consume) one trigger for ``point``."""
        rule = self._rules.get(point)
        if rule is None:
            return False
        if isinstance(rule, float):
            with self._lock:
                rng = self._rngs.get(point)
                if rng is None:
                    rng = random.Random(f"{self.seed}:{point}")
                    self._rngs[point] = rng
                return rng.random() < rule
        return self._consume_budget(point, rule)

    def _consume_budget(self, point: str, limit: int) -> bool:
        if self.state_dir is None:
            with self._lock:
                used = self._local_counts.get(point, 0)
                if used >= limit:
                    return False
                self._local_counts[point] = used + 1
                return True
        # One O_CREAT|O_EXCL token per allowed trigger: atomic across
        # processes, and the leftover files double as an audit trail
        # ("how many crashes actually fired?") for the chaos tests.
        for slot in range(limit):
            token = self.state_dir / f"{point}.{slot}"
            try:
                fd = os.open(
                    token, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fired(self, point: str) -> int:
        """How many budget triggers for ``point`` have been consumed."""
        if self.state_dir is not None:
            return sum(
                1 for path in self.state_dir.glob(f"{point}.*")
            )
        with self._lock:
            return self._local_counts.get(point, 0)


# ----------------------------------------------------------------------
# process-wide active plan (parsed from the environment once)
# ----------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_PLAN_LOADED = False
_PLAN_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The plan ``$REPRO_FAULTS`` describes, or None when unset."""
    global _PLAN, _PLAN_LOADED
    if _PLAN_LOADED:
        return _PLAN
    with _PLAN_LOCK:
        if not _PLAN_LOADED:
            spec = os.environ.get(FAULTS_ENV, "").strip()
            if spec:
                _PLAN = FaultPlan(
                    spec,
                    seed=int(os.environ.get(FAULTS_SEED_ENV, "0")),
                    state_dir=os.environ.get(FAULTS_STATE_ENV) or None,
                )
            else:
                _PLAN = None
            _PLAN_LOADED = True
    return _PLAN


def reload_plan() -> Optional[FaultPlan]:
    """Re-read the environment (tests toggling faults at runtime)."""
    global _PLAN_LOADED
    with _PLAN_LOCK:
        _PLAN_LOADED = False
    return active_plan()


def should_fire(point: str) -> bool:
    """The one-line gate every injection point calls.

    Free when no faults are configured (one None check); otherwise
    delegates to the active :class:`FaultPlan`.
    """
    plan = active_plan()
    return plan is not None and plan.should_fire(point)


def slow_sim_seconds() -> float:
    """How long a fired ``slow_sim`` fault sleeps."""
    return float(os.environ.get(SLOW_SIM_ENV, "0.2"))


def sleep_if_slow() -> None:
    """The ``slow_sim`` action (used by ``evaluate``)."""
    if should_fire("slow_sim"):
        time.sleep(slow_sim_seconds())


@contextmanager
def activate(
    spec: str,
    seed: int = 0,
    state_dir: Optional[Union[str, Path]] = None,
) -> Iterator[FaultPlan]:
    """Enable a fault plan for this process *and* its children.

    Sets the ``$REPRO_FAULTS*`` variables (so worker subprocesses
    inherit the plan) and installs the parsed plan in-process;
    restores the previous environment and plan on exit.
    """
    saved = {
        name: os.environ.get(name)
        for name in (FAULTS_ENV, FAULTS_SEED_ENV, FAULTS_STATE_ENV)
    }
    os.environ[FAULTS_ENV] = spec
    os.environ[FAULTS_SEED_ENV] = str(seed)
    if state_dir is not None:
        os.environ[FAULTS_STATE_ENV] = str(state_dir)
    else:
        os.environ.pop(FAULTS_STATE_ENV, None)
    try:
        plan = reload_plan()
        assert plan is not None
        yield plan
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        reload_plan()
