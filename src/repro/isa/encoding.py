"""Binary encoding and decoding of FRL-32 instruction words.

The encoding exists so that programs occupy real bytes in simulated
memory (instruction fetch addresses are what the I-cache sees) and so
the assembler/disassembler pair can be round-trip tested.  Layouts are
documented in :mod:`repro.isa.instructions`.
"""

from __future__ import annotations

from repro.isa.instructions import (
    Format,
    Instruction,
    OPCODE_BY_NUMBER,
    OPCODES,
)

_MASK16 = 0xFFFF
_MASK21 = 0x1FFFFF
_MASK32 = 0xFFFFFFFF


class EncodeError(ValueError):
    """Raised when an instruction cannot be encoded."""


class DecodeError(ValueError):
    """Raised when a 32-bit word is not a valid instruction."""


def _sext(value: int, bits: int) -> int:
    """Sign-extend the low ``bits`` bits of ``value``."""
    sign = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return (value ^ sign) - sign


def encode(insn: Instruction) -> int:
    """Encode ``insn`` into a 32-bit instruction word.

    >>> hex(encode(Instruction("addi", rd=5, rs1=0, imm=1)))
    '0x50a00001'
    """
    try:
        insn.validate()
    except ValueError as exc:
        raise EncodeError(str(exc)) from exc
    op = OPCODES[insn.mnemonic].opcode
    fmt = insn.format
    word = op << 26
    if fmt is Format.R:
        word |= (insn.rd << 21) | (insn.rs1 << 16) | (insn.rs2 << 11)
    elif fmt in (Format.I, Format.LOAD, Format.JR):
        word |= (insn.rd << 21) | (insn.rs1 << 16) | (insn.imm & _MASK16)
    elif fmt is Format.STORE:
        word |= (insn.rs2 << 21) | (insn.rs1 << 16) | (insn.imm & _MASK16)
    elif fmt is Format.BRANCH:
        word |= (insn.rs1 << 21) | (insn.rs2 << 16) | (insn.imm & _MASK16)
    elif fmt is Format.U:
        word |= (insn.rd << 21) | ((insn.imm & _MASK16) << 5)
    elif fmt is Format.J:
        word |= (insn.rd << 21) | (insn.imm & _MASK21)
    elif fmt is Format.SYS:
        pass
    else:  # pragma: no cover - formats are exhaustive
        raise EncodeError(f"unhandled format {fmt}")
    return word & _MASK32


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word into an :class:`Instruction`.

    Raises :class:`DecodeError` for unknown opcodes or malformed fields.
    """
    if not 0 <= word <= _MASK32:
        raise DecodeError(f"word out of 32-bit range: {word:#x}")
    op = (word >> 26) & 0x3F
    info = OPCODE_BY_NUMBER.get(op)
    if info is None:
        raise DecodeError(f"unknown opcode {op:#x} in word {word:#010x}")
    fmt = info.format
    f21 = (word >> 21) & 0x1F
    f16 = (word >> 16) & 0x1F
    f11 = (word >> 11) & 0x1F
    if fmt is Format.R:
        if word & 0x7FF:
            raise DecodeError(f"R-format pad bits set in {word:#010x}")
        insn = Instruction(info.mnemonic, rd=f21, rs1=f16, rs2=f11)
    elif fmt in (Format.I, Format.LOAD, Format.JR):
        insn = Instruction(
            info.mnemonic, rd=f21, rs1=f16, imm=_sext(word, 16)
        )
    elif fmt is Format.STORE:
        insn = Instruction(
            info.mnemonic, rs2=f21, rs1=f16, imm=_sext(word, 16)
        )
    elif fmt is Format.BRANCH:
        insn = Instruction(
            info.mnemonic, rs1=f21, rs2=f16, imm=_sext(word, 16)
        )
    elif fmt is Format.U:
        if word & 0x1F:
            raise DecodeError(f"U-format pad bits set in {word:#010x}")
        insn = Instruction(info.mnemonic, rd=f21, imm=_sext(word >> 5, 16))
    elif fmt is Format.J:
        insn = Instruction(info.mnemonic, rd=f21, imm=_sext(word, 21))
    else:  # SYS
        if word & 0x3FFFFFF:
            raise DecodeError(f"SYS pad bits set in {word:#010x}")
        insn = Instruction(info.mnemonic)
    try:
        insn.validate()
    except ValueError as exc:
        raise DecodeError(str(exc)) from exc
    return insn
