"""Assembled program container.

A :class:`Program` is the unit handed from the assembler to the CPU
simulator: a text segment of encoded instruction words, a data segment
of initialised bytes, and the symbol table produced during assembly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

from repro.isa.encoding import decode
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction

#: Default segment base addresses (1 MiB of simulated memory).
TEXT_BASE = 0x0000_0000
DATA_BASE = 0x0004_0000
STACK_TOP = 0x000F_FFF0
MEMORY_BYTES = 0x0010_0000


@dataclass(frozen=True)
class Segment:
    """A contiguous range of initialised memory."""

    base: int
    data: bytes

    @property
    def end(self) -> int:
        """First address past the segment."""
        return self.base + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


@dataclass
class Program:
    """An assembled FRL-32 program.

    Attributes
    ----------
    name:
        Human-readable program name (used in reports).
    text:
        Text segment; ``text.data`` holds little-endian instruction words.
    data:
        Data segment with initialised globals.
    symbols:
        Label name -> absolute address.
    entry:
        Address of the first instruction to execute.
    """

    name: str
    text: Segment
    data: Segment
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE

    @property
    def num_instructions(self) -> int:
        return len(self.text.data) // INSTRUCTION_BYTES

    def instruction_words(self) -> List[int]:
        """Return text-segment words as integers (little-endian)."""
        raw = self.text.data
        return [
            int.from_bytes(raw[i : i + 4], "little")
            for i in range(0, len(raw), 4)
        ]

    def instructions(self) -> List[Instruction]:
        """Decode the whole text segment."""
        return [decode(word) for word in self.instruction_words()]

    def symbol(self, name: str) -> int:
        """Address of label ``name`` (KeyError when undefined)."""
        return self.symbols[name]

    def digest(self) -> str:
        """Stable hex digest of everything that determines execution.

        Covers the segment bases and bytes plus the entry point (not
        the name or symbol table, which have no architectural effect).
        Used to key the on-disk workload trace cache.
        """
        h = hashlib.sha256()
        for segment in (self.text, self.data):
            h.update(segment.base.to_bytes(4, "little"))
            h.update(len(segment.data).to_bytes(4, "little"))
            h.update(segment.data)
        h.update(self.entry.to_bytes(4, "little"))
        return h.hexdigest()

    def disassemble(self) -> str:
        """Return a human-readable listing of the text segment."""
        addr_to_label = {addr: lbl for lbl, addr in self.symbols.items()}
        lines = []
        pc = self.text.base
        for insn in self.instructions():
            if pc in addr_to_label:
                lines.append(f"{addr_to_label[pc]}:")
            lines.append(f"  {pc:#010x}: {insn}")
            pc += INSTRUCTION_BYTES
        return "\n".join(lines)
