"""Instruction-set architecture for the FRL-32 soft core.

This package defines the 32-bit RISC instruction set used by the
reproduction as a stand-in for the Fujitsu FR-V VLIW processor of the
paper.  The way-memoization technique only observes *address streams*
(base + displacement pairs for data accesses, program-counter flow for
instruction fetches), so any RISC ISA with real control flow and
base+displacement addressing reproduces the phenomena the paper
exploits.  FRL-32 is a MIPS/RISC-V-flavoured load/store architecture:

* 32 general-purpose registers with RISC-V ABI names (``zero``, ``ra``,
  ``sp``, ``a0`` .. ``a7``, ``s0`` .. ``s11``, ``t0`` .. ``t6``),
* 16-bit signed immediates and displacements,
* PC-relative conditional branches, ``jal``/``jalr`` call/return,
* a fixed 4-byte instruction word with a documented binary encoding.

Public API
----------
:class:`~repro.isa.instructions.Instruction`
    A decoded instruction (mnemonic + operand fields).
:func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`
    Binary <-> object conversion for instruction words.
:class:`~repro.isa.assembler.Assembler` / :func:`~repro.isa.assembler.assemble`
    Two-pass assembler with labels, ``.data`` directives and the usual
    pseudo-instructions (``li``, ``la``, ``mv``, ``j``, ``call``,
    ``ret`` ...).
:class:`~repro.isa.program.Program`
    An assembled program: text segment, data segment and symbol table.
"""

from repro.isa.assembler import Assembler, AssemblyError, assemble
from repro.isa.encoding import DecodeError, EncodeError, decode, encode
from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_REG_OPS,
    BRANCH_OPS,
    LOAD_OPS,
    STORE_OPS,
    Format,
    Instruction,
    OPCODES,
)
from repro.isa.program import Program, Segment
from repro.isa.registers import (
    NUM_REGS,
    REG_ABI_NAMES,
    REG_RA,
    REG_SP,
    REG_ZERO,
    reg_name,
    reg_number,
)

__all__ = [
    "ALU_IMM_OPS",
    "ALU_REG_OPS",
    "Assembler",
    "AssemblyError",
    "BRANCH_OPS",
    "DecodeError",
    "EncodeError",
    "Format",
    "Instruction",
    "LOAD_OPS",
    "NUM_REGS",
    "OPCODES",
    "Program",
    "REG_ABI_NAMES",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "STORE_OPS",
    "Segment",
    "assemble",
    "decode",
    "encode",
    "reg_name",
    "reg_number",
]
