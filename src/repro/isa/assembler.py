"""Two-pass assembler for FRL-32.

Supports the full architectural instruction set plus the usual
convenience layer:

* labels (``loop:``), ``#`` / ``;`` comments,
* segment directives ``.text`` / ``.data``,
* data directives ``.word``, ``.half``, ``.byte``, ``.space``,
  ``.ascii``, ``.asciiz``, ``.align``,
* pseudo-instructions: ``nop``, ``li``, ``la``, ``mv``, ``not``,
  ``neg``, ``seqz``, ``snez``, ``j``, ``jr``, ``call``, ``ret``,
  ``beqz``, ``bnez``, ``bltz``, ``bgez``, ``blez``, ``bgtz``,
  ``bgt``, ``ble``, ``bgtu``, ``bleu``,
* ``%hi(sym)`` / ``%lo(sym)`` relocations for building 32-bit addresses.

Pass 1 assigns addresses to every label (pseudo-instruction expansion
sizes are value-independent so sizing is exact); pass 2 emits encoded
words and resolves symbols.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.encoding import encode
from repro.isa.instructions import (
    Format,
    IMM16_MAX,
    IMM16_MIN,
    INSTRUCTION_BYTES,
    Instruction,
    OPCODES,
)
from repro.isa.program import DATA_BASE, Program, Segment, TEXT_BASE
from repro.isa.registers import REG_RA, REG_ZERO, reg_number


class AssemblyError(ValueError):
    """Raised on any assembly problem, with a line number in the message."""


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_HI_LO_RE = re.compile(r"^%(hi|lo)\(([A-Za-z_.$][\w.$]*)\)$")


def _hi_lo_parts(address: int) -> Tuple[int, int]:
    """Split a 32-bit value for a ``lui`` + ``addi`` pair.

    ``addi`` sign-extends its 16-bit immediate, so when the low half
    has bit 15 set the high half is incremented to compensate:
    ``(hi << 16) + sext(lo) == address (mod 2**32)``.
    """
    address &= 0xFFFFFFFF
    lo = address & 0xFFFF
    if lo >= 0x8000:
        lo -= 0x10000
    hi = ((address - lo) >> 16) & 0xFFFF
    if hi >= 0x8000:
        hi -= 0x10000
    return hi, lo


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",")] if text else []


class Assembler:
    """Assemble FRL-32 source text into a :class:`Program`.

    Parameters
    ----------
    text_base, data_base:
        Segment load addresses; defaults match
        :mod:`repro.isa.program`'s memory map.
    """

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def assemble(self, source: str, name: str = "program") -> Program:
        """Assemble ``source`` and return the resulting :class:`Program`."""
        statements = self._parse(source)
        symbols = self._layout(statements)
        text_words, data_bytes = self._emit(statements, symbols)
        text = b"".join(
            word.to_bytes(4, "little") for word in text_words
        )
        entry = symbols.get("main", self.text_base)
        return Program(
            name=name,
            text=Segment(self.text_base, text),
            data=Segment(self.data_base, bytes(data_bytes)),
            symbols=symbols,
            entry=entry,
        )

    # ------------------------------------------------------------------
    # pass 0: parsing
    # ------------------------------------------------------------------

    def _parse(self, source: str) -> List[Tuple[int, str, Optional[str], List[str]]]:
        """Split source into (lineno, kind, head, operands) statements.

        kind is ``"label"``, ``"directive"`` or ``"insn"``.
        """
        statements = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    statements.append((lineno, "label", match.group(1), []))
                    line = line[match.end():].strip()
                    continue
                parts = line.split(None, 1)
                head = parts[0].lower()
                rest = parts[1] if len(parts) > 1 else ""
                if head.startswith("."):
                    if head in (".ascii", ".asciiz"):
                        operands = [rest.strip()]
                    else:
                        operands = _split_operands(rest)
                    statements.append((lineno, "directive", head, operands))
                else:
                    statements.append(
                        (lineno, "insn", head, _split_operands(rest))
                    )
                line = ""
        return statements

    # ------------------------------------------------------------------
    # pass 1: label layout
    # ------------------------------------------------------------------

    def _layout(self, statements) -> Dict[str, int]:
        symbols: Dict[str, int] = {}
        text_pc = self.text_base
        data_pc = self.data_base
        segment = "text"
        for lineno, kind, head, operands in statements:
            if kind == "label":
                if head in symbols:
                    raise AssemblyError(
                        f"line {lineno}: duplicate label {head!r}"
                    )
                symbols[head] = text_pc if segment == "text" else data_pc
            elif kind == "directive":
                if head == ".text":
                    segment = "text"
                elif head == ".data":
                    segment = "data"
                else:
                    if segment != "data":
                        raise AssemblyError(
                            f"line {lineno}: {head} outside .data segment"
                        )
                    data_pc += self._directive_size(
                        lineno, head, operands, data_pc
                    )
            else:
                if segment != "text":
                    raise AssemblyError(
                        f"line {lineno}: instruction in .data segment"
                    )
                text_pc += INSTRUCTION_BYTES * self._insn_words(
                    lineno, head, operands
                )
        return symbols

    def _directive_size(
        self, lineno: int, head: str, operands: List[str], pc: int
    ) -> int:
        if head == ".word":
            return 4 * len(operands)
        if head == ".half":
            return 2 * len(operands)
        if head == ".byte":
            return len(operands)
        if head == ".space":
            return self._parse_int(lineno, operands[0])
        if head in (".ascii", ".asciiz"):
            value = self._parse_string(lineno, operands[0])
            return len(value) + (1 if head == ".asciiz" else 0)
        if head == ".align":
            align = 1 << self._parse_int(lineno, operands[0])
            return (-pc) % align
        raise AssemblyError(f"line {lineno}: unknown directive {head}")

    def _insn_words(self, lineno: int, head: str, operands: List[str]) -> int:
        """Number of architectural words ``head`` expands to."""
        if head in OPCODES:
            return 1
        expansion_sizes = {
            "nop": 1, "mv": 1, "not": 1, "neg": 1, "seqz": 1, "snez": 1,
            "j": 1, "jr": 1, "call": 1, "ret": 1,
            "beqz": 1, "bnez": 1, "bltz": 1, "bgez": 1, "blez": 1,
            "bgtz": 1, "bgt": 1, "ble": 1, "bgtu": 1, "bleu": 1,
            "la": 2,
        }
        if head in expansion_sizes:
            return expansion_sizes[head]
        if head == "li":
            # li takes a literal (never a label), so its exact expansion
            # size is known in pass 1.
            if len(operands) != 2:
                raise AssemblyError(
                    f"line {lineno}: li expects 2 operands"
                )
            value = self._parse_int(lineno, operands[1])
            return len(self._expand_li(0, value))
        raise AssemblyError(f"line {lineno}: unknown instruction {head!r}")

    # ------------------------------------------------------------------
    # pass 2: emission
    # ------------------------------------------------------------------

    def _emit(self, statements, symbols) -> Tuple[List[int], bytearray]:
        words: List[int] = []
        data = bytearray()
        segment = "text"
        for lineno, kind, head, operands in statements:
            if kind == "label":
                continue
            if kind == "directive":
                if head == ".text":
                    segment = "text"
                elif head == ".data":
                    segment = "data"
                else:
                    self._emit_data(lineno, head, operands, data, symbols)
                continue
            pc = self.text_base + INSTRUCTION_BYTES * len(words)
            for insn in self._expand(lineno, head, operands, pc, symbols):
                try:
                    words.append(encode(insn))
                except ValueError as exc:
                    raise AssemblyError(f"line {lineno}: {exc}") from exc
        return words, data

    def _emit_data(self, lineno, head, operands, data, symbols) -> None:
        if head == ".word":
            for op in operands:
                value = self._parse_value(lineno, op, symbols)
                data.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
        elif head == ".half":
            for op in operands:
                value = self._parse_value(lineno, op, symbols)
                data.extend((value & 0xFFFF).to_bytes(2, "little"))
        elif head == ".byte":
            for op in operands:
                value = self._parse_value(lineno, op, symbols)
                data.append(value & 0xFF)
        elif head == ".space":
            data.extend(b"\x00" * self._parse_int(lineno, operands[0]))
        elif head in (".ascii", ".asciiz"):
            data.extend(self._parse_string(lineno, operands[0]).encode())
            if head == ".asciiz":
                data.append(0)
        elif head == ".align":
            align = 1 << self._parse_int(lineno, operands[0])
            pad = (-(self.data_base + len(data))) % align
            data.extend(b"\x00" * pad)
        else:  # pragma: no cover - caught in pass 1
            raise AssemblyError(f"line {lineno}: unknown directive {head}")

    # ------------------------------------------------------------------
    # instruction expansion
    # ------------------------------------------------------------------

    def _expand(
        self, lineno, head, operands, pc, symbols
    ) -> List[Instruction]:
        reg = lambda i: self._parse_reg(lineno, operands[i])  # noqa: E731
        imm = lambda i: self._parse_value(lineno, operands[i], symbols)  # noqa: E731

        def branch_offset(index: int) -> int:
            target = self._parse_value(lineno, operands[index], symbols)
            return target - pc

        def expect(count: int) -> None:
            if len(operands) != count:
                raise AssemblyError(
                    f"line {lineno}: {head} expects {count} operands, "
                    f"got {len(operands)}"
                )

        if head in OPCODES:
            fmt = OPCODES[head].format
            if fmt is Format.R:
                expect(3)
                return [Instruction(head, rd=reg(0), rs1=reg(1), rs2=reg(2))]
            if fmt is Format.I:
                expect(3)
                return [Instruction(head, rd=reg(0), rs1=reg(1), imm=imm(2))]
            if fmt in (Format.LOAD, Format.STORE):
                expect(2)
                disp, base = self._parse_mem_operand(lineno, operands[1])
                if fmt is Format.LOAD:
                    return [Instruction(head, rd=reg(0), rs1=base, imm=disp)]
                return [Instruction(head, rs2=reg(0), rs1=base, imm=disp)]
            if fmt is Format.BRANCH:
                expect(3)
                return [
                    Instruction(
                        head, rs1=reg(0), rs2=reg(1), imm=branch_offset(2)
                    )
                ]
            if fmt is Format.U:
                expect(2)
                return [Instruction(head, rd=reg(0), imm=imm(1))]
            if fmt is Format.J:
                expect(2)
                return [Instruction(head, rd=reg(0), imm=branch_offset(1))]
            if fmt is Format.JR:
                expect(3)
                return [Instruction(head, rd=reg(0), rs1=reg(1), imm=imm(2))]
            expect(0)
            return [Instruction(head)]

        # -- pseudo-instructions ------------------------------------------
        if head == "nop":
            return [Instruction("addi", rd=REG_ZERO, rs1=REG_ZERO, imm=0)]
        if head == "mv":
            expect(2)
            return [Instruction("addi", rd=reg(0), rs1=reg(1), imm=0)]
        if head == "not":
            expect(2)
            return [Instruction("xori", rd=reg(0), rs1=reg(1), imm=-1)]
        if head == "neg":
            expect(2)
            return [Instruction("sub", rd=reg(0), rs1=REG_ZERO, rs2=reg(1))]
        if head == "seqz":
            expect(2)
            return [Instruction("sltiu", rd=reg(0), rs1=reg(1), imm=1)]
        if head == "snez":
            expect(2)
            return [Instruction("sltu", rd=reg(0), rs1=REG_ZERO, rs2=reg(1))]
        if head == "li":
            expect(2)
            return self._expand_li(reg(0), imm(1))
        if head == "la":
            expect(2)
            address = self._parse_value(lineno, operands[1], symbols)
            return self._expand_la(reg(0), address)
        if head == "j":
            expect(1)
            return [Instruction("jal", rd=REG_ZERO, imm=branch_offset(0))]
        if head == "jr":
            expect(1)
            return [Instruction("jalr", rd=REG_ZERO, rs1=reg(0), imm=0)]
        if head == "call":
            expect(1)
            return [Instruction("jal", rd=REG_RA, imm=branch_offset(0))]
        if head == "ret":
            expect(0)
            return [Instruction("jalr", rd=REG_ZERO, rs1=REG_RA, imm=0)]
        if head in ("beqz", "bnez", "bltz", "bgez", "blez", "bgtz"):
            expect(2)
            offset = branch_offset(1)
            r = reg(0)
            table = {
                "beqz": ("beq", r, REG_ZERO),
                "bnez": ("bne", r, REG_ZERO),
                "bltz": ("blt", r, REG_ZERO),
                "bgez": ("bge", r, REG_ZERO),
                "blez": ("bge", REG_ZERO, r),
                "bgtz": ("blt", REG_ZERO, r),
            }
            real, rs1, rs2 = table[head]
            return [Instruction(real, rs1=rs1, rs2=rs2, imm=offset)]
        if head in ("bgt", "ble", "bgtu", "bleu"):
            expect(3)
            offset = branch_offset(2)
            real = {
                "bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"
            }[head]
            return [Instruction(real, rs1=reg(1), rs2=reg(0), imm=offset)]
        raise AssemblyError(  # pragma: no cover - caught in pass 1
            f"line {lineno}: unknown instruction {head!r}"
        )

    def _expand_li(self, rd: int, value: int) -> List[Instruction]:
        """Expand ``li rd, value`` to one or two architectural words."""
        value &= 0xFFFFFFFF
        signed = value - 0x1_0000_0000 if value >= 0x8000_0000 else value
        if IMM16_MIN <= signed <= IMM16_MAX:
            return [Instruction("addi", rd=rd, rs1=REG_ZERO, imm=signed)]
        return self._expand_la(rd, value)

    def _expand_la(self, rd: int, address: int) -> List[Instruction]:
        # lui + addi with the usual %hi/%lo sign adjustment: addi
        # sign-extends its immediate, so the high part compensates.
        hi, lo = _hi_lo_parts(address)
        return [
            Instruction("lui", rd=rd, imm=hi),
            Instruction("addi", rd=rd, rs1=rd, imm=lo),
        ]

    # ------------------------------------------------------------------
    # operand parsing helpers
    # ------------------------------------------------------------------

    def _parse_reg(self, lineno: int, text: str) -> int:
        try:
            return reg_number(text)
        except ValueError as exc:
            raise AssemblyError(f"line {lineno}: {exc}") from exc

    def _parse_int(self, lineno: int, text: str) -> int:
        text = text.strip()
        try:
            if len(text) == 3 and text[0] == text[2] == "'":
                return ord(text[1])
            return int(text, 0)
        except ValueError as exc:
            raise AssemblyError(
                f"line {lineno}: bad integer literal {text!r}"
            ) from exc

    def _parse_value(self, lineno: int, text: str, symbols) -> int:
        """Integer literal, %hi/%lo relocation, or label address."""
        text = text.strip()
        match = _HI_LO_RE.match(text)
        if match:
            which, sym = match.groups()
            if sym not in symbols:
                raise AssemblyError(f"line {lineno}: undefined label {sym!r}")
            hi, lo = _hi_lo_parts(symbols[sym])
            return hi if which == "hi" else lo
        if text in symbols:
            return symbols[text]
        try:
            return self._parse_int(lineno, text)
        except AssemblyError:
            raise AssemblyError(
                f"line {lineno}: undefined label or bad literal {text!r}"
            ) from None

    def _parse_mem_operand(self, lineno: int, text: str) -> Tuple[int, int]:
        """Parse ``disp(reg)`` into (displacement, base register)."""
        match = re.match(r"^(-?\w*)\((\w+)\)$", text.strip())
        if not match:
            raise AssemblyError(
                f"line {lineno}: bad memory operand {text!r}, "
                "expected disp(reg)"
            )
        disp_text, reg_text = match.groups()
        disp = self._parse_int(lineno, disp_text) if disp_text else 0
        return disp, self._parse_reg(lineno, reg_text)

    def _parse_string(self, lineno: int, text: str) -> str:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblyError(
                f"line {lineno}: bad string literal {text!r}"
            )
        body = text[1:-1]
        return (
            body.replace("\\n", "\n")
            .replace("\\t", "\t")
            .replace("\\0", "\0")
            .replace('\\"', '"')
        )


def assemble(source: str, name: str = "program") -> Program:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler().assemble(source, name=name)
