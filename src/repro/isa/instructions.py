"""Instruction definitions for the FRL-32 ISA.

Every architectural instruction is described by an :class:`OpcodeInfo`
record in :data:`OPCODES` (mnemonic, binary opcode, instruction format)
and carried around at simulation time as a decoded :class:`Instruction`.

Instruction formats
-------------------
All instructions are 4 bytes.  Bits ``[31:26]`` hold the 6-bit opcode.

======= ==================================================== =============
format  field layout (high to low)                           assembly
======= ==================================================== =============
R       opcode | rd(5) | rs1(5) | rs2(5) | zero(11)          ``add rd, rs1, rs2``
I       opcode | rd(5) | rs1(5) | imm16                      ``addi rd, rs1, imm``
LOAD    opcode | rd(5) | rs1(5) | imm16                      ``lw rd, imm(rs1)``
STORE   opcode | rs2(5) | rs1(5) | imm16                     ``sw rs2, imm(rs1)``
BRANCH  opcode | rs1(5) | rs2(5) | imm16 (byte offset)       ``beq rs1, rs2, label``
U       opcode | rd(5) | imm16 | zero(5)                     ``lui rd, imm``
J       opcode | rd(5) | imm21 (byte offset)                 ``jal rd, label``
JR      opcode | rd(5) | rs1(5) | imm16                      ``jalr rd, rs1, imm``
SYS     opcode | zero(26)                                    ``halt``
======= ==================================================== =============

Branch and jump offsets are relative to the address of the branch
instruction itself (not PC+4), in bytes; they must be multiples of 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.isa.registers import reg_name

INSTRUCTION_BYTES = 4

IMM16_MIN = -(1 << 15)
IMM16_MAX = (1 << 15) - 1
IMM21_MIN = -(1 << 20)
IMM21_MAX = (1 << 20) - 1


class Format(enum.Enum):
    """Binary layout family of an instruction."""

    R = "R"
    I = "I"  # noqa: E741 - conventional ISA format name
    LOAD = "LOAD"
    STORE = "STORE"
    BRANCH = "BRANCH"
    U = "U"
    J = "J"
    JR = "JR"
    SYS = "SYS"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one architectural instruction."""

    mnemonic: str
    opcode: int
    format: Format


def _ops(format: Format, names_from: int, *mnemonics: str) -> dict:
    return {
        name: OpcodeInfo(name, names_from + i, format)
        for i, name in enumerate(mnemonics)
    }


#: mnemonic -> OpcodeInfo for every architectural instruction.
OPCODES: dict = {}
OPCODES.update(
    _ops(
        Format.R, 0x00,
        "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
        "slt", "sltu", "mul", "mulh", "mulhu", "div", "divu", "rem", "remu",
    )
)
OPCODES.update(
    _ops(
        Format.I, 0x14,
        "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "sltiu",
    )
)
OPCODES.update(_ops(Format.LOAD, 0x20, "lw", "lh", "lhu", "lb", "lbu"))
OPCODES.update(_ops(Format.STORE, 0x26, "sw", "sh", "sb"))
OPCODES.update(
    _ops(Format.BRANCH, 0x2A, "beq", "bne", "blt", "bge", "bltu", "bgeu")
)
OPCODES.update(_ops(Format.U, 0x30, "lui"))
OPCODES.update(_ops(Format.J, 0x31, "jal"))
OPCODES.update(_ops(Format.JR, 0x32, "jalr"))
OPCODES.update(_ops(Format.SYS, 0x3F, "halt"))

#: opcode number -> OpcodeInfo (inverse of OPCODES).
OPCODE_BY_NUMBER = {info.opcode: info for info in OPCODES.values()}

ALU_REG_OPS = frozenset(
    m for m, info in OPCODES.items() if info.format is Format.R
)
ALU_IMM_OPS = frozenset(
    m for m, info in OPCODES.items() if info.format is Format.I
)
LOAD_OPS = frozenset(
    m for m, info in OPCODES.items() if info.format is Format.LOAD
)
STORE_OPS = frozenset(
    m for m, info in OPCODES.items() if info.format is Format.STORE
)
BRANCH_OPS = frozenset(
    m for m, info in OPCODES.items() if info.format is Format.BRANCH
)

#: Byte width of each memory operation.
MEM_OP_BYTES = {
    "lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1,
    "sw": 4, "sh": 2, "sb": 1,
}


@dataclass(frozen=True)
class Instruction:
    """A decoded FRL-32 instruction.

    Unused operand fields are 0 (registers) or 0 (immediate); which fields
    are meaningful depends on the instruction's :class:`Format`.

    Attributes
    ----------
    mnemonic:
        Lower-case instruction name, e.g. ``"addi"``.
    rd, rs1, rs2:
        Register numbers (0..31).
    imm:
        Sign-extended immediate / displacement / branch offset.
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def info(self) -> OpcodeInfo:
        """Static opcode metadata for this instruction."""
        return OPCODES[self.mnemonic]

    @property
    def format(self) -> Format:
        return self.info.format

    def is_load(self) -> bool:
        return self.mnemonic in LOAD_OPS

    def is_store(self) -> bool:
        return self.mnemonic in STORE_OPS

    def is_branch(self) -> bool:
        return self.mnemonic in BRANCH_OPS

    def is_control_flow(self) -> bool:
        """True for instructions that may redirect the program counter."""
        return self.is_branch() or self.mnemonic in ("jal", "jalr")

    def validate(self) -> None:
        """Raise :class:`ValueError` on malformed operand fields."""
        if self.mnemonic not in OPCODES:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        for field in ("rd", "rs1", "rs2"):
            value = getattr(self, field)
            if not 0 <= value < 32:
                raise ValueError(
                    f"{self.mnemonic}: register field {field}={value} "
                    "out of range"
                )
        fmt = self.format
        if fmt is Format.J:
            lo, hi = IMM21_MIN, IMM21_MAX
        elif fmt in (Format.R, Format.SYS):
            lo, hi = 0, 0
        else:
            lo, hi = IMM16_MIN, IMM16_MAX
        if not lo <= self.imm <= hi:
            raise ValueError(
                f"{self.mnemonic}: immediate {self.imm} outside "
                f"[{lo}, {hi}]"
            )
        if fmt in (Format.BRANCH, Format.J) and self.imm % 4 != 0:
            raise ValueError(
                f"{self.mnemonic}: branch offset {self.imm} not 4-aligned"
            )

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(insn: Instruction, pc: Optional[int] = None) -> str:
    """Render ``insn`` as assembly text.

    When ``pc`` is given, branch/jump targets are shown as absolute
    addresses instead of relative offsets.
    """
    m = insn.mnemonic
    fmt = insn.format
    rd, rs1, rs2 = reg_name(insn.rd), reg_name(insn.rs1), reg_name(insn.rs2)
    if fmt is Format.R:
        return f"{m} {rd}, {rs1}, {rs2}"
    if fmt is Format.I:
        return f"{m} {rd}, {rs1}, {insn.imm}"
    if fmt is Format.LOAD:
        return f"{m} {rd}, {insn.imm}({rs1})"
    if fmt is Format.STORE:
        return f"{m} {rs2}, {insn.imm}({rs1})"
    if fmt is Format.BRANCH:
        target = insn.imm if pc is None else pc + insn.imm
        prefix = "" if pc is None else "0x"
        return f"{m} {rs1}, {rs2}, {prefix}{target:x}" if pc is not None \
            else f"{m} {rs1}, {rs2}, {target}"
    if fmt is Format.U:
        return f"{m} {rd}, {insn.imm}"
    if fmt is Format.J:
        if pc is None:
            return f"{m} {rd}, {insn.imm}"
        return f"{m} {rd}, 0x{pc + insn.imm:x}"
    if fmt is Format.JR:
        return f"{m} {rd}, {rs1}, {insn.imm}"
    return m
