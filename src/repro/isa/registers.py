"""Register file naming for the FRL-32 ISA.

FRL-32 has 32 general purpose 32-bit registers.  Register 0 is hard-wired
to zero (writes are ignored), as on MIPS and RISC-V.  The ABI names follow
the RISC-V convention because it is widely understood:

====== ========= =============================================
number ABI name  role
====== ========= =============================================
x0     zero      constant 0
x1     ra        return address (the *link register* of the
                 paper's Figure 2)
x2     sp        stack pointer
x3     gp        global pointer (static data base)
x4     tp        thread pointer (unused by our benchmarks)
x5-7   t0-t2     caller-saved temporaries
x8-9   s0-s1     callee-saved
x10-17 a0-a7     arguments / return values
x18-27 s2-s11    callee-saved
x28-31 t3-t6     caller-saved temporaries
====== ========= =============================================
"""

from __future__ import annotations

NUM_REGS = 32

REG_ZERO = 0
REG_RA = 1
REG_SP = 2
REG_GP = 3
REG_TP = 4

#: ABI name for each register number, index == register number.
REG_ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

_NAME_TO_NUM = {name: num for num, name in enumerate(REG_ABI_NAMES)}
_NAME_TO_NUM.update({f"x{num}": num for num in range(NUM_REGS)})
# 'fp' is the conventional alias for s0/x8.
_NAME_TO_NUM["fp"] = 8


def reg_number(name: str) -> int:
    """Return the register number for an ABI name, ``xN`` name or number.

    >>> reg_number("sp")
    2
    >>> reg_number("x31")
    31
    >>> reg_number("fp")
    8
    """
    key = name.strip().lower()
    if key in _NAME_TO_NUM:
        return _NAME_TO_NUM[key]
    raise ValueError(f"unknown register name: {name!r}")


def reg_name(number: int) -> str:
    """Return the canonical ABI name of register ``number``.

    >>> reg_name(2)
    'sp'
    """
    if not 0 <= number < NUM_REGS:
        raise ValueError(f"register number out of range: {number}")
    return REG_ABI_NAMES[number]


def is_valid_reg(number: int) -> bool:
    """True when ``number`` names an architectural register."""
    return 0 <= number < NUM_REGS
