"""Structural area/delay/power model of the MAB (paper Tables 1-3).

The paper synthesised the MAB in Verilog with Design-Compiler and
characterised it with NanoSim.  We replace that flow with a structural
model: each quantity is a linear combination of the MAB's structural
element counts —

* a constant part (the 14-bit adder, control),
* per tag entry (20 flip-flops + an 18-bit and a 2-bit comparator),
* per set-index entry (9 flip-flops + a 9-bit comparator),
* per cross-point (vflag + way bits, the valid/way mux),
* for area, an ``Ns^2``-ish routing/mux-tree term that captures the
  superlinear growth visible between the 16- and 32-entry columns —

with coefficients calibrated by non-negative least squares against the
paper's own tables (embedded below as ``PAPER_TABLE*``).  The fit
residuals are small (delay <= 3 %, power <= 9 %, area <= 32 % at the
smallest corner) and :func:`fit_coefficients` reproduces the stored
coefficients from the embedded data, so the calibration is auditable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

#: (tag_entries, index_entries) grid reported by the paper.
PAPER_GRID: Tuple[Tuple[int, int], ...] = tuple(
    (nt, ns) for nt in (1, 2) for ns in (4, 8, 16, 32)
)

#: Table 1 — MAB area (mm^2) in 0.13 um.
PAPER_TABLE1_AREA_MM2: Dict[Tuple[int, int], float] = {
    (1, 4): 0.016, (1, 8): 0.027, (1, 16): 0.065, (1, 32): 0.307,
    (2, 4): 0.019, (2, 8): 0.033, (2, 16): 0.085, (2, 32): 0.311,
}

#: Table 2 — MAB critical-path delay (ns).
PAPER_TABLE2_DELAY_NS: Dict[Tuple[int, int], float] = {
    (1, 4): 1.00, (1, 8): 1.00, (1, 16): 1.08, (1, 32): 1.14,
    (2, 4): 1.02, (2, 8): 1.02, (2, 16): 1.08, (2, 32): 1.16,
}

#: Table 3 — MAB power, clock running and MAB in use (mW).
PAPER_TABLE3_POWER_ACTIVE_MW: Dict[Tuple[int, int], float] = {
    (1, 4): 1.95, (1, 8): 2.37, (1, 16): 3.39, (1, 32): 6.25,
    (2, 4): 2.34, (2, 8): 3.07, (2, 16): 4.56, (2, 32): 7.93,
}

#: Table 3 — MAB power when clock-gated (mW).
PAPER_TABLE3_POWER_SLEEP_MW: Dict[Tuple[int, int], float] = {
    (1, 4): 0.24, (1, 8): 0.40, (1, 16): 0.76, (1, 32): 1.37,
    (2, 4): 0.40, (2, 8): 0.68, (2, 16): 1.28, (2, 32): 2.26,
}

#: Reference area of one 32 kB 2-way cache macro in 0.13 um (mm^2); the
#: paper quotes the 2x8 MAB at "around 3 %" of the D-cache, and 2x16 /
#: 2x32 at 7.5 % / 27.5 % of the I-cache, which pins the macro at
#: roughly 1.1 mm^2.
CACHE_MACRO_AREA_MM2 = 1.13

# Calibrated coefficients (non-negative least squares over PAPER_GRID;
# see fit_coefficients).  Term order is documented per quantity.
_AREA_TERMS = ("const", "nt", "ns", "nt*ns", "ns^2")
_AREA_COEFFS = (0.0, 0.00626631, 0.0, 0.0, 0.000290606)
_DELAY_TERMS = ("const", "log2(ns)", "nt")
_DELAY_COEFFS = (0.8685, 0.049, 0.015)
_POWER_TERMS = ("const", "nt", "ns", "nt*ns")
_ACTIVE_COEFFS = (0.84, 0.315217, 0.111, 0.0446522)
_SLEEP_COEFFS = (0.0121739, 0.0734783, 0.0145217, 0.0259348)


def _area_features(nt: int, ns: int) -> Tuple[float, ...]:
    return (1.0, float(nt), float(ns), float(nt * ns), float(ns * ns))


def _delay_features(nt: int, ns: int) -> Tuple[float, ...]:
    return (1.0, math.log2(ns), float(nt))


def _power_features(nt: int, ns: int) -> Tuple[float, ...]:
    return (1.0, float(nt), float(ns), float(nt * ns))


def _dot(coeffs, feats) -> float:
    return sum(c * f for c, f in zip(coeffs, feats))


@dataclass(frozen=True)
class MABHardwareModel:
    """Area/delay/power estimates for an ``nt`` x ``ns`` MAB.

    ``ways`` and the cache geometry enter only through the storage-bit
    count (used for reporting); the calibrated coefficients absorb the
    paper's fixed 2-way, 18-bit-tag configuration.
    """

    tag_entries: int
    index_entries: int
    tag_bits: int = 18
    index_bits: int = 9
    ways: int = 2

    def __post_init__(self):
        if self.tag_entries < 1 or self.index_entries < 1:
            raise ValueError("MAB needs at least one entry per side")

    # -- structure -------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """Flip-flop bits: tags + cflags, indices, vflag + way matrix."""
        way_bits = max((self.ways - 1).bit_length(), 1)
        return (
            self.tag_entries * (self.tag_bits + 2)
            + self.index_entries * self.index_bits
            + self.tag_entries * self.index_entries * (1 + way_bits)
        )

    # -- calibrated quantities -------------------------------------------

    def area_mm2(self) -> float:
        """Silicon area (Table 1)."""
        return _dot(
            _AREA_COEFFS,
            _area_features(self.tag_entries, self.index_entries),
        )

    def area_overhead(
        self, cache_area_mm2: float = CACHE_MACRO_AREA_MM2
    ) -> float:
        """Area as a fraction of the cache macro (paper: ~3 % for 2x8)."""
        return self.area_mm2() / cache_area_mm2

    def delay_ns(self) -> float:
        """Critical path: 14-bit adder + 9-bit comparator (Table 2)."""
        return _dot(
            _DELAY_COEFFS,
            _delay_features(self.tag_entries, self.index_entries),
        )

    def power_active_mw(self) -> float:
        """Power while the MAB is being used (Table 3 'active')."""
        return _dot(
            _ACTIVE_COEFFS,
            _power_features(self.tag_entries, self.index_entries),
        )

    def power_sleep_mw(self) -> float:
        """Clock-gated power (Table 3 'sleep')."""
        return _dot(
            _SLEEP_COEFFS,
            _power_features(self.tag_entries, self.index_entries),
        )

    def effective_power_mw(self, duty: float) -> float:
        """Average power at a given activity duty cycle.

        The paper's circuits are clock gated: cycles that do not use
        the MAB cost only the sleep power.
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")
        return duty * self.power_active_mw() \
            + (1.0 - duty) * self.power_sleep_mw()

    def fits_cycle(self, cycle_time_ns: float) -> bool:
        """Whether the MAB meets timing at the given cycle time.

        The paper's processor runs at 360-400 MHz (2.5 ns), far above
        the ~1.1 ns MAB critical path.
        """
        return self.delay_ns() <= cycle_time_ns


def fit_coefficients():
    """Re-derive the calibrated coefficients from the embedded tables.

    Returns a dict of quantity -> coefficient tuple; a regression test
    asserts these match the stored module constants, keeping the
    calibration reproducible.  Uses non-negative least squares so every
    coefficient remains physically interpretable.
    """
    import numpy as np
    from scipy.optimize import nnls

    def solve(table, feature_fn):
        a = np.array([feature_fn(nt, ns) for nt, ns in PAPER_GRID])
        b = np.array([table[key] for key in PAPER_GRID])
        coeffs, _ = nnls(a, b)
        return tuple(coeffs)

    return {
        "area": solve(PAPER_TABLE1_AREA_MM2, _area_features),
        "delay": solve(PAPER_TABLE2_DELAY_NS, _delay_features),
        "active": solve(PAPER_TABLE3_POWER_ACTIVE_MW, _power_features),
        "sleep": solve(PAPER_TABLE3_POWER_SLEEP_MW, _power_features),
    }
