"""CACTI-style analytical SRAM access energy.

The model charges, per array access:

* the row decoder (scaling with the number of row-address bits),
* the selected wordline (capacitance proportional to the row width),
* every bitline pair's partial swing (read) or full swing (write),
  with bitline capacitance proportional to the number of rows,
* sense amplifiers / column circuitry per sensed bit,

which is the standard first-order decomposition used by CACTI-class
tools.  It replaces the paper's SPICE characterisation of E_way and
E_tag (Equation 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.energy.technology import FRV_TECH, TechnologyParameters


@dataclass(frozen=True)
class SRAMArray:
    """An SRAM macro of ``rows`` x ``cols`` bits."""

    rows: int
    cols: int
    tech: TechnologyParameters = FRV_TECH

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("SRAM array dimensions must be positive")

    @property
    def bits(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------

    def read_energy_j(self) -> float:
        """Energy of one read access (J)."""
        t = self.tech
        c_bitline = self.rows * t.c_bitcell_f
        e_bitlines = (
            self.cols * c_bitline * t.vdd * t.vdd * t.bitline_swing
        )
        e_wordline = self.cols * t.c_wordline_per_cell_f * t.vdd * t.vdd
        e_sense = self.cols * t.e_sense_per_bit_j
        e_decode = max(math.ceil(math.log2(self.rows)), 1) \
            * t.e_decode_per_bit_j
        return e_bitlines + e_wordline + e_sense + e_decode

    def write_energy_j(self) -> float:
        """Energy of one write access (J).

        Writes drive full-swing bitlines but skip the sense amps; to
        first order this lands close to the read energy, and the model
        keeps them equal apart from the sense/swing exchange.
        """
        t = self.tech
        c_bitline = self.rows * t.c_bitcell_f
        e_bitlines = self.cols * c_bitline * t.vdd * t.vdd
        e_wordline = self.cols * t.c_wordline_per_cell_f * t.vdd * t.vdd
        e_decode = max(math.ceil(math.log2(self.rows)), 1) \
            * t.e_decode_per_bit_j
        # Full-swing bitlines are mitigated by half-select column gating.
        return 0.30 * e_bitlines + e_wordline + e_decode

    def leakage_w(self) -> float:
        """Static power of the array (W)."""
        return self.bits * self.tech.p_leak_per_bit_w


@dataclass(frozen=True)
class CacheEnergy:
    """Per-access energies of one cache (Equation 1's E_way and E_tag)."""

    e_way_read_j: float
    e_way_write_j: float
    e_tag_read_j: float
    leakage_w: float

    @property
    def tag_to_way_ratio(self) -> float:
        return self.e_tag_read_j / self.e_way_read_j


def cache_energy_per_access(
    config: CacheConfig, tech: TechnologyParameters = FRV_TECH
) -> CacheEnergy:
    """Derive E_way / E_tag for a cache geometry.

    One *way access* reads a full line from one way's data array; one
    *tag access* reads one way's tag + valid bit.  (The counters in
    :class:`repro.cache.stats.AccessCounters` already count per way, so
    a 2-way parallel lookup shows up as 2 tag accesses x E_tag.)
    """
    data_array = SRAMArray(
        rows=config.sets, cols=config.line_bits, tech=tech
    )
    tag_array = SRAMArray(
        rows=config.sets, cols=config.tag_bits + 1, tech=tech
    )
    total_leak = config.ways * (
        data_array.leakage_w() + tag_array.leakage_w()
    )
    return CacheEnergy(
        e_way_read_j=data_array.read_energy_j(),
        e_way_write_j=data_array.write_energy_j(),
        e_tag_read_j=tag_array.read_energy_j(),
        leakage_w=total_leak,
    )
