"""Cache power from access counts — the paper's Equation (1).

::

    P_cache = E_way * N_way + E_tag * N_tag + P_MAB           (1)

where ``N_way``/``N_tag`` are way/tag accesses *per second* and
``P_MAB`` is the (clock-gated) power of the auxiliary structure.  The
same formula prices every architecture: for the set-buffer, filter
cache and way-prediction baselines the auxiliary term charges their
buffer/table instead of a MAB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.config import CacheConfig
from repro.cache.stats import AccessCounters
from repro.energy.mab_model import MABHardwareModel
from repro.energy.sram import SRAMArray, cache_energy_per_access
from repro.energy.technology import FRV_TECH, TechnologyParameters


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component cache power (mW) — the stacks of Figures 5/7/8."""

    label: str
    data_mw: float
    tag_mw: float
    aux_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.data_mw + self.tag_mw + self.aux_mw + self.leakage_mw

    def scaled(self, factor: float) -> "PowerBreakdown":
        return PowerBreakdown(
            label=self.label,
            data_mw=self.data_mw * factor,
            tag_mw=self.tag_mw * factor,
            aux_mw=self.aux_mw * factor,
            leakage_mw=self.leakage_mw * factor,
        )

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            label=f"{self.label}+{other.label}",
            data_mw=self.data_mw + other.data_mw,
            tag_mw=self.tag_mw + other.tag_mw,
            aux_mw=self.aux_mw + other.aux_mw,
            leakage_mw=self.leakage_mw + other.leakage_mw,
        )


class CachePowerModel:
    """Evaluates Equation (1) for one cache geometry."""

    def __init__(
        self,
        cache_config: CacheConfig,
        tech: TechnologyParameters = FRV_TECH,
    ):
        self.cache_config = cache_config
        self.tech = tech
        self.energy = cache_energy_per_access(cache_config, tech)

    # ------------------------------------------------------------------

    def power(
        self,
        counters: AccessCounters,
        cycles: int,
        label: str = "",
        mab_model: Optional[MABHardwareModel] = None,
        aux_bits: Optional[int] = None,
    ) -> PowerBreakdown:
        """Price an architecture's access counts over a program run.

        Parameters
        ----------
        counters:
            Tag/way/auxiliary access counts from a controller.
        cycles:
            Program execution cycles (sets the time base; the paper's
            technique never adds cycles, penalty baselines add
            ``counters.extra_cycles``).
        mab_model:
            When given, charges the MAB at its clock-gated duty cycle
            (active on lookup cycles, sleeping otherwise).
        aux_bits:
            For non-MAB auxiliary structures (set buffer, L0 filter,
            prediction table): the structure's storage bit count; each
            ``counters.aux_accesses`` is charged as a read of a small
            SRAM of that many bits, plus its leakage.
        """
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        total_cycles = cycles + counters.extra_cycles
        seconds = total_cycles * self.tech.cycle_time_s

        data_w = counters.way_accesses * self.energy.e_way_read_j / seconds
        tag_w = counters.tag_accesses * self.energy.e_tag_read_j / seconds

        aux_w = 0.0
        if mab_model is not None:
            duty = min(counters.mab_lookups / total_cycles, 1.0)
            aux_w = mab_model.effective_power_mw(duty) * 1e-3
        elif aux_bits:
            aux_array = SRAMArray(
                rows=max(aux_bits // 32, 1), cols=32, tech=self.tech
            )
            aux_w = (
                counters.aux_accesses * aux_array.read_energy_j() / seconds
                + aux_array.leakage_w()
            )

        return PowerBreakdown(
            label=label,
            data_mw=data_w * 1e3,
            tag_mw=tag_w * 1e3,
            aux_mw=aux_w * 1e3,
            leakage_mw=self.energy.leakage_w * 1e3,
        )
