"""Energy, power, area and delay models.

Substitutes for the paper's proprietary estimation flow:

* :mod:`repro.energy.technology` — 0.13 µm / 1.3 V process constants
  (the FR-V's process, paper Section 4).
* :mod:`repro.energy.sram` — CACTI-style analytical per-access energy
  of SRAM arrays, from which the cache's E_way and E_tag derive
  (NanoSim/SPICE substitute).
* :mod:`repro.energy.mab_model` — structural area/delay/power model of
  the MAB with coefficients calibrated against the paper's synthesis
  results (Tables 1-3; Design-Compiler substitute).
* :mod:`repro.energy.power` — the paper's Equation (1)
  ``P = E_way*N_way + E_tag*N_tag + P_MAB`` evaluated from access
  counters, with per-component breakdowns for Figures 5, 7 and 8.
"""

from repro.energy.mab_model import (
    MABHardwareModel,
    PAPER_TABLE1_AREA_MM2,
    PAPER_TABLE2_DELAY_NS,
    PAPER_TABLE3_POWER_ACTIVE_MW,
    PAPER_TABLE3_POWER_SLEEP_MW,
)
from repro.energy.power import CachePowerModel, PowerBreakdown
from repro.energy.sram import SRAMArray, cache_energy_per_access
from repro.energy.technology import FRV_TECH, TechnologyParameters

__all__ = [
    "CachePowerModel",
    "FRV_TECH",
    "MABHardwareModel",
    "PAPER_TABLE1_AREA_MM2",
    "PAPER_TABLE2_DELAY_NS",
    "PAPER_TABLE3_POWER_ACTIVE_MW",
    "PAPER_TABLE3_POWER_SLEEP_MW",
    "PowerBreakdown",
    "SRAMArray",
    "TechnologyParameters",
    "cache_energy_per_access",
]
