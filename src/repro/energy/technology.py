"""Process technology constants.

The paper's FR-V is a 0.13 µm CMOS design at 1.3 V and 360 MHz
(maximum 400 MHz).  The capacitance figures below are typical textbook
values for a 0.13 µm SRAM macro; they set the *scale* of all energy
numbers.  The paper's headline results are relative savings, which
depend only on access counts and on the E_tag/E_way ratio — both of
which survive any reasonable choice of constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyParameters:
    """Electrical constants of the target process."""

    name: str
    #: Supply voltage (V).
    vdd: float
    #: Core clock frequency used in the evaluation (Hz).
    frequency_hz: float
    #: Bitline capacitance contributed by one cell (F).
    c_bitcell_f: float
    #: Wordline capacitance per cell gate (F).
    c_wordline_per_cell_f: float
    #: Sense-amp + column mux energy per bit sensed (J).
    e_sense_per_bit_j: float
    #: Decoder energy per row-address bit (J).
    e_decode_per_bit_j: float
    #: Read bitline voltage swing as a fraction of VDD.
    bitline_swing: float
    #: Leakage power per SRAM bit (W).
    p_leak_per_bit_w: float

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz


#: The paper's target: Fujitsu FR-V, 0.13 um, 1.3 V, 360 MHz.
FRV_TECH = TechnologyParameters(
    name="frv-0.13um",
    vdd=1.3,
    frequency_hz=360e6,
    c_bitcell_f=1.8e-15,
    c_wordline_per_cell_f=0.9e-15,
    e_sense_per_bit_j=0.045e-12,
    e_decode_per_bit_j=0.30e-12,
    bitline_swing=0.18,
    p_leak_per_bit_w=18e-12,
)
