"""Single-pass multi-architecture trace replay.

The figure and report experiments evaluate many architectures over the
same handful of workloads; the trace cache removed the ISS cost of
that repetition but every evaluation still re-split and re-replayed
the identical access stream.  This package removes the replay
repetition:

* :mod:`repro.replay.columns` — a columnar representation of one
  workload's access stream: the pre-split tag/index/store/kind columns
  (and the narrow-adder MAB key column) computed once per geometry
  with vectorized numpy, cached in process and persisted as ``.npz``
  archives next to the trace cache.
* :mod:`repro.replay.engine` — the replay engine: runs *all requested
  architectures in one pass* over the columns.  Architectures whose
  cache access stream is state-independent (original, two-phase,
  way-prediction, Panwar) share literally one
  :meth:`~repro.cache.cache.SetAssociativeCache.access_fast_batch`
  sweep and derive their counters from the shared packed results;
  stateful controllers replay their own loop but share the columnar
  pre-split.

``evaluate_many`` routes groups of fresh specs sharing
``(cache side, workload, engine="fast")`` through
:func:`~repro.replay.engine.replay_specs` transparently; results are
byte-identical to per-spec evaluation (set ``REPRO_REPLAY=0`` to
disable the grouping for debugging).
"""

from repro.replay.columns import (
    COLUMNS_VERSION,
    DataColumns,
    FetchColumns,
    SharedPass,
    columns_for_stream,
)
from repro.replay.engine import (
    REPLAY_ENV,
    clear_columns_cache,
    plan_groups,
    replay_counters,
    replay_enabled,
    replay_specs,
)

__all__ = [
    "COLUMNS_VERSION",
    "DataColumns",
    "FetchColumns",
    "SharedPass",
    "columns_for_stream",
    "REPLAY_ENV",
    "clear_columns_cache",
    "plan_groups",
    "replay_counters",
    "replay_enabled",
    "replay_specs",
]
