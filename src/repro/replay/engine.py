"""Multi-architecture replay engine: N architectures, one pass.

Two layers:

* :func:`replay_counters` — the kernel-level engine.  Given built
  controllers and one access stream, it partitions them into
  *batchable* architectures (marked ``replay_batchable``: their cache
  access stream is independent of any auxiliary state, so identical
  geometry + LRU policy means identical per-access outcomes) and
  stateful ones.  Each batchable subgroup shares literally one
  :meth:`~repro.cache.cache.SetAssociativeCache.access_fast_batch`
  sweep over a shadow cache; every member derives its counters from
  the shared packed results via its ``replay_counters`` hook.
  Stateful controllers replay their own loop, fed from the shared
  :mod:`~repro.replay.columns` pre-split where they support it
  (``process_columns``).

* :func:`replay_specs` — the spec-level engine behind
  ``evaluate_many``.  All specs must share one ``(cache side,
  workload)``; the workload's columns are resolved once (through the
  in-process and on-disk column caches) and every spec's counters are
  priced into a :class:`~repro.api.result.RunResult` by the same
  helpers the per-spec path uses, so grouping can never change a
  byte.

Set ``REPRO_REPLAY=0`` (or ``off``) to disable grouped replay
everywhere — ``evaluate_many`` and the service worker pool fall back
to strictly per-spec evaluation, which must be (and is checked to be)
byte-identical.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import LRUPolicy
from repro.replay.columns import SharedPass, columns_for_stream
from repro.telemetry import metrics as telemetry
from repro.telemetry.tracing import span as trace_span

#: Environment variable gating grouped replay ("0"/"off" disables).
REPLAY_ENV = "REPRO_REPLAY"


def replay_enabled() -> bool:
    """Whether grouped replay is enabled (default: yes)."""
    env = os.environ.get(REPLAY_ENV)
    if env is None:
        return True
    return env.strip().lower() not in ("", "0", "off", "no", "false")


# ----------------------------------------------------------------------
# kernel-level engine
# ----------------------------------------------------------------------

def _shared_pass_cache(controller) -> Optional[SetAssociativeCache]:
    """The controller's cache, when it can join a shared batch sweep.

    Batchable architectures with the plain LRU policy evolve their
    cache identically for identical input streams; any other policy
    (or a policy subclass) falls back to the controller's own replay.
    """
    if not getattr(controller, "replay_batchable", False):
        return None
    cache = getattr(controller, "cache", None)
    if cache is None or type(cache.policy) is not LRUPolicy:
        return None
    return cache


def replay_counters(
    controllers: Sequence[object], stream, cols=None
) -> List[object]:
    """Replay ``stream`` through every controller in one pass.

    Returns one :class:`~repro.cache.stats.AccessCounters` per
    controller, in input order, byte-identical to calling each
    controller's ``process(stream)`` on a fresh instance.  Only the
    counters are produced: the batchable controllers' own cache and
    side state are left untouched (the engine evaluates throwaway
    instances).
    """
    if cols is None:
        cols = columns_for_stream(stream)
    out: List[object] = [None] * len(controllers)
    shared: Dict[object, List[int]] = {}
    singles: List[int] = []
    for index, controller in enumerate(controllers):
        cache = _shared_pass_cache(controller)
        if cache is not None:
            shared.setdefault(cache.config, []).append(index)
        else:
            singles.append(index)

    for config, members in shared.items():
        shadow = SetAssociativeCache(
            config, LRUPolicy(config.sets, config.ways)
        )
        tags, sets = cols.cache_streams(
            config.offset_bits, config.index_bits
        )
        packed = shadow.access_fast_batch(tags, sets, cols.writes())
        shared_pass = SharedPass(packed)
        telemetry.counter(
            "repro_replay_shared_sweeps_total",
            "Shared cache sweeps performed by the replay engine.",
        ).inc()
        telemetry.counter(
            "repro_replay_shared_members_total",
            "Controllers served by a shared sweep instead of "
            "replaying their own loop.",
        ).inc(len(members))
        for index in members:
            out[index] = controllers[index].replay_counters(
                cols, shared_pass
            )

    if shared:
        telemetry.counter(
            "repro_replay_batchable_members_total",
            "Group members whose counters were derived from a shared "
            "batch sweep.",
        ).inc(sum(len(members) for members in shared.values()))
    if singles:
        telemetry.counter(
            "repro_replay_stateful_members_total",
            "Group members that replayed their own stateful loop "
            "(columnar or scalar).",
        ).inc(len(singles))
    for index in singles:
        controller = controllers[index]
        process_columns = getattr(controller, "process_columns", None)
        if process_columns is not None:
            out[index] = process_columns(cols)
        else:
            out[index] = controller.process(stream)
    return out


# ----------------------------------------------------------------------
# spec-level engine
# ----------------------------------------------------------------------

def plan_groups(specs: Sequence[object]) -> List[List[object]]:
    """Partition unique specs into replay groups and singletons.

    Fast-engine specs sharing ``(cache side, workload)`` replay the
    same stream and form one group; everything else (reference-engine
    specs, lone specs) stays a singleton.  Output order is by first
    appearance, so the plan — and therefore every downstream byte —
    is a pure function of the input sequence.  With replay disabled
    (``REPRO_REPLAY=0``) every spec is its own group.
    """
    groups: List[List[object]] = []
    by_key: Dict[Tuple[str, str], List[object]] = {}
    for spec in specs:
        if replay_enabled() and spec.engine == "fast":
            key = (spec.cache, spec.workload)
            group = by_key.get(key)
            if group is None:
                group = []
                by_key[key] = group
                groups.append(group)
            group.append(spec)
        else:
            groups.append([spec])
    size_histogram = telemetry.histogram(
        "repro_replay_group_size",
        "Specs per planned replay group.",
        buckets=telemetry.SIZE_BUCKETS,
    )
    grouped = telemetry.counter(
        "repro_replay_grouped_specs_total",
        "Specs placed in a multi-spec replay group.",
    )
    for group in groups:
        size_histogram.observe(len(group))
        if len(group) > 1:
            grouped.inc(len(group))
    return groups


@lru_cache(maxsize=32)
def _columns_cached(side: str, workload: str):
    """Columns for one spec-level workload (in-process cache).

    Benchmark workloads get the on-disk column archive keyed by the
    trace cache's content digest; synthetic workloads are cheap to
    split and stay in process only.  The cache key is (side,
    workload) — never the cache geometry — so a parametric sweep over
    MAB or cache shapes shares one columns object, and the columns
    object itself memoizes each derived array under the narrowest
    geometry key it depends on.
    """
    from repro.api.spec import parse_synthetic_params
    from repro.workloads import generate_synthetic, load_workload
    from repro.workloads.suite import trace_cache_dir

    if workload.startswith("synthetic:"):
        params = parse_synthetic_params(workload)
        return columns_for_stream(generate_synthetic(side, params))
    loaded = load_workload(workload)
    stream = loaded.trace.data if side == "dcache" else loaded.fetch
    directory = trace_cache_dir()
    disk_stem = None
    if directory is not None and loaded.trace_key:
        disk_stem = directory / loaded.trace_key
    return columns_for_stream(stream, disk_stem)


def clear_columns_cache() -> None:
    """Drop the in-process columns cache (tests)."""
    _columns_cached.cache_clear()


def replay_specs(specs: Sequence[object]) -> List[object]:
    """Evaluate a shared-workload spec group in one pass.

    All specs must share ``(cache side, workload)`` and use the fast
    engine (:func:`plan_groups` guarantees this).  Returns one
    :class:`~repro.api.result.RunResult` per spec, in input order,
    byte-identical to mapping the per-spec evaluation over the group.
    """
    # ``repro.api`` re-exports the evaluate *function* under the
    # submodule's name, so plain import syntax resolves to it; load
    # the module itself for the shared helpers.
    import importlib

    _evaluate = importlib.import_module("repro.api.evaluate")
    from repro.api.registry import get_architecture

    specs = list(specs)
    first = specs[0]
    for spec in specs[1:]:
        if (spec.cache, spec.workload) != (first.cache, first.workload):
            raise ValueError(
                "replay group mixes workloads: "
                f"{(first.cache, first.workload)} vs "
                f"{(spec.cache, spec.workload)}"
            )
    with trace_span(
        "replay_group", cache=first.cache, workload=first.workload,
        members=len(specs),
    ):
        stream, cycles = _evaluate._resolve_stream(first)
        cols = _columns_cached(first.cache, first.workload)

        built = []
        for spec in specs:
            _evaluate._begin_simulation()
            info = get_architecture(spec.cache, spec.arch)
            params = spec.param_dict
            built.append((spec, info, params, info.build(params)))

        counters = replay_counters(
            [controller for (_, _, _, controller) in built],
            stream, cols,
        )
        return [
            _evaluate._finish_result(spec, info, params, c, cycles)
            for (spec, info, params, _), c in zip(built, counters)
        ]
