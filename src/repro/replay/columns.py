"""Columnar pre-split of one workload's access stream.

Every fast engine starts the same way: vectorize the 32-bit address
arithmetic over the whole trace (cache tag and set index per access,
the narrow-adder MAB key for way-memo controllers, the intra-line mask
for fetch streams) and convert the arrays to plain lists for the
Python replay loop.  That work depends only on the stream and the
cache geometry — never on architecture state — so it is computed here
exactly once per ``(stream, geometry)`` and shared by every
controller replaying the stream.

Two cache levels:

* per-instance memoization — a :class:`DataColumns`/:class:`FetchColumns`
  object computes each geometry's arrays (and their list forms) once;
* an optional on-disk layer — when constructed with a ``disk_stem``
  (derived from the workload's trace-cache key, so the content digest
  keys the archive), the per-geometry arrays are persisted as ``.npz``
  files alongside the trace archives and reloaded instead of
  recomputed.  Writes are atomic and best-effort, mirroring the trace
  cache; unreadable archives are ignored and regenerated.

The tag column is the plain ``addr >> (offset_bits + index_bits)``
split.  For non-bypass accesses the way-memo controllers historically
computed it through the narrow-adder reconstruction
``(base_tag + carry - sign) & tag_mask`` — the two are numerically
identical (that equivalence *is* the paper's Figure 3 datapath), which
the differential and lockstep fuzz suites assert for every
architecture.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.fetch import FetchKind, FetchStream
from repro.sim.trace import DataTrace

#: Version of the on-disk column archive layout; bump to invalidate.
COLUMNS_VERSION = 1


class SharedPass:
    """The packed results of one shared ``access_fast_batch`` sweep.

    Architectures whose access stream is state-independent all observe
    the *same* per-access (hit, way, eviction) outcomes, so the engine
    runs the batch kernel once and hands every such architecture this
    view of it.  The hit vector and hit count are derived lazily and
    shared too.
    """

    __slots__ = ("packed", "_packed64", "_hit", "_hit_count")

    def __init__(self, packed: List[int]):
        self.packed = packed
        self._packed64: Optional[np.ndarray] = None
        self._hit: Optional[np.ndarray] = None
        self._hit_count: Optional[int] = None

    @property
    def packed64(self) -> np.ndarray:
        """The packed results as an int64 array (computed once)."""
        if self._packed64 is None:
            self._packed64 = np.fromiter(
                self.packed, dtype=np.int64, count=len(self.packed)
            )
        return self._packed64

    @property
    def hit(self) -> np.ndarray:
        """Boolean hit vector (packed bit 0), one entry per access."""
        if self._hit is None:
            self._hit = (self.packed64 & 1) == 1
        return self._hit

    @property
    def hit_count(self) -> int:
        if self._hit_count is None:
            self._hit_count = int(self.hit.sum())
        return self._hit_count

    @property
    def ways(self) -> np.ndarray:
        """Resident way per access (packed bits 1-8)."""
        return (self.packed64 >> 1) & 0xFF


class _ColumnsBase:
    """Shared machinery: per-geometry arrays, lists and disk archives."""

    side = ""  # "dcache" | "icache" (set by subclasses)

    def __init__(self, disk_stem: Optional[Path] = None):
        # disk_stem is a path *prefix* (directory + workload trace key);
        # per-geometry archives are "{stem}-cols-v1-{side}-gOxI.npz".
        self._disk_stem = disk_stem
        self._arrays_by_geometry: Dict[Tuple[int, int], Dict[str, np.ndarray]] = {}
        self._lists: Dict[Tuple[str, int, int], list] = {}

    # -- columns the subclasses must provide ----------------------------

    #: numpy int64 views of the stream (bound in subclass __init__).
    base64: np.ndarray
    disp64: np.ndarray
    addr64: np.ndarray
    n: int

    def _extra_arrays(
        self, offset_bits: int, index_bits: int
    ) -> Dict[str, np.ndarray]:
        """Side-specific derived columns (fetch adds lines/intra)."""
        return {}

    # -- geometry-keyed access ------------------------------------------

    def _compute_arrays(
        self, offset_bits: int, index_bits: int
    ) -> Dict[str, np.ndarray]:
        low_bits = offset_bits + index_bits
        low_mask = (1 << low_bits) - 1
        upper_mask = (1 << (32 - low_bits)) - 1
        addr = self.addr64
        tags = addr >> low_bits
        sets = (addr >> offset_bits) & ((1 << index_bits) - 1)

        # Narrow-adder datapath (paper Figure 3), vectorized: the
        # packed MAB key per access, -1 marking a large-displacement
        # bypass.  Depends only on (offset_bits + index_bits), i.e. on
        # the cache geometry — every MAB size shares one key column.
        base = self.base64
        d32 = self.disp64 & 0xFFFFFFFF
        raw = (base & low_mask) + (d32 & low_mask)
        upper = d32 >> low_bits
        sign = np.where(upper == upper_mask, 1, 0)
        bypass = (upper != 0) & (upper != upper_mask)
        base_tag = base >> low_bits
        carry = raw >> low_bits
        keys = np.where(
            bypass, -1,
            (base_tag << 2) | (carry << 1) | sign,
        )
        arrays = {"tags": tags, "sets": sets, "keys": keys}
        arrays.update(self._extra_arrays(offset_bits, index_bits))
        return arrays

    def _disk_path(self, offset_bits: int, index_bits: int) -> Optional[Path]:
        if self._disk_stem is None:
            return None
        return self._disk_stem.parent / (
            f"{self._disk_stem.name}-cols-v{COLUMNS_VERSION}-{self.side}"
            f"-g{offset_bits}x{index_bits}.npz"
        )

    def _load_disk(
        self, offset_bits: int, index_bits: int
    ) -> Optional[Dict[str, np.ndarray]]:
        path = self._disk_path(offset_bits, index_bits)
        if path is None or not path.is_file():
            return None
        try:
            with np.load(str(path)) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except Exception:
            return None  # unreadable archive: ignore and regenerate
        required = set(self._compute_array_names())
        if set(arrays) < required:
            return None
        if any(len(arrays[name]) != self.n for name in required):
            return None
        return arrays

    def _compute_array_names(self) -> Tuple[str, ...]:
        return ("tags", "sets", "keys")

    def _save_disk(
        self, offset_bits: int, index_bits: int,
        arrays: Dict[str, np.ndarray],
    ) -> None:
        path = self._disk_path(offset_bits, index_bits)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp.npz"
            )
            os.close(fd)
            try:
                np.savez(tmp, **arrays)
                # numpy appends .npz to names missing it; mkstemp's
                # suffix already ends with it, so tmp is the real file.
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            pass  # caching is best-effort only

    def _arrays(
        self, offset_bits: int, index_bits: int
    ) -> Dict[str, np.ndarray]:
        key = (offset_bits, index_bits)
        arrays = self._arrays_by_geometry.get(key)
        if arrays is None:
            arrays = self._load_disk(offset_bits, index_bits)
            if arrays is None:
                arrays = self._compute_arrays(offset_bits, index_bits)
                self._save_disk(offset_bits, index_bits, arrays)
            self._arrays_by_geometry[key] = arrays
        return arrays

    def _list(self, name: str, offset_bits: int, index_bits: int) -> list:
        key = (name, offset_bits, index_bits)
        got = self._lists.get(key)
        if got is None:
            got = self._arrays(offset_bits, index_bits)[name].tolist()
            self._lists[key] = got
        return got

    # -- public columns --------------------------------------------------

    def cache_streams(
        self, offset_bits: int, index_bits: int
    ) -> Tuple[List[int], List[int]]:
        """The pre-split (tags, sets) lists for one cache geometry."""
        return (
            self._list("tags", offset_bits, index_bits),
            self._list("sets", offset_bits, index_bits),
        )

    def cache_arrays(
        self, offset_bits: int, index_bits: int
    ) -> Dict[str, np.ndarray]:
        """The per-geometry numpy columns (tags/sets/keys[/lines]).

        The array forms of :meth:`cache_streams` for vectorized
        replay derivations; treat the arrays as read-only — they are
        shared across every controller replaying the stream.
        """
        return self._arrays(offset_bits, index_bits)

    def mab_keys(self, offset_bits: int, index_bits: int) -> List[int]:
        """Packed narrow-adder MAB keys (-1 == bypass) per access."""
        return self._list("keys", offset_bits, index_bits)


class DataColumns(_ColumnsBase):
    """Columnar view of a :class:`~repro.sim.trace.DataTrace`."""

    side = "dcache"

    def __init__(self, trace: DataTrace, disk_stem: Optional[Path] = None):
        super().__init__(disk_stem)
        self.n = len(trace.base)
        self.base64 = trace.base.astype(np.int64)
        self.disp64 = trace.disp.astype(np.int64)
        self.addr64 = (self.base64 + self.disp64) & 0xFFFFFFFF
        self.store_mask = trace.store
        self._stores: Optional[List[bool]] = None
        self._store_addrs: Optional[List[int]] = None
        self._num_stores: Optional[int] = None

    def writes(self) -> List[bool]:
        """The store flags, as the batch kernel's ``writes`` stream."""
        if self._stores is None:
            self._stores = self.store_mask.tolist()
        return self._stores

    def addrs(self) -> List[int]:
        if "addrs" not in self._lists:
            self._lists["addrs"] = self.addr64.tolist()
        return self._lists["addrs"]

    def store_addrs(self) -> List[int]:
        """Effective addresses of the store sub-stream, in order."""
        if self._store_addrs is None:
            self._store_addrs = self.addr64[self.store_mask].tolist()
        return self._store_addrs

    @property
    def num_stores(self) -> int:
        if self._num_stores is None:
            self._num_stores = int(self.store_mask.sum())
        return self._num_stores

    def apply_load_store(self, counters) -> None:
        """Fill the loads/stores split on a counters object."""
        counters.stores = self.num_stores
        counters.loads = counters.accesses - counters.stores


class FetchColumns(_ColumnsBase):
    """Columnar view of a :class:`~repro.sim.fetch.FetchStream`."""

    side = "icache"

    def __init__(self, fetch: FetchStream, disk_stem: Optional[Path] = None):
        super().__init__(disk_stem)
        self.n = len(fetch)
        self.base64 = fetch.base.astype(np.int64)
        self.disp64 = fetch.disp.astype(np.int64)
        self.addr64 = fetch.addr.astype(np.int64)
        self.kind = fetch.kind
        self._kinds: Optional[List[int]] = None
        self._intra: Dict[int, np.ndarray] = {}

    def _extra_arrays(
        self, offset_bits: int, index_bits: int
    ) -> Dict[str, np.ndarray]:
        # line_shift == offset_bits (lines are line_bytes wide).
        return {"lines": self.addr64 >> offset_bits}

    def _compute_array_names(self) -> Tuple[str, ...]:
        return ("tags", "sets", "keys", "lines")

    def kinds(self) -> List[int]:
        if self._kinds is None:
            self._kinds = self.kind.tolist()
        return self._kinds

    def lines(self, offset_bits: int, index_bits: int) -> List[int]:
        """Line numbers (``addr >> offset_bits``) per access."""
        return self._list("lines", offset_bits, index_bits)

    def intra_mask(self, offset_bits: int, index_bits: int) -> np.ndarray:
        """Boolean mask of intra-line sequential fetches.

        True where the fetch is sequential *and* stays within the
        previous access's cache line — a property of the stream alone,
        shared by the Panwar baseline and anything else that elides
        work on intra-line flow.
        """
        got = self._intra.get(offset_bits)
        if got is None:
            lines = self._arrays(offset_bits, index_bits)["lines"]
            prev = np.concatenate((np.int64([-1]), lines[:-1]))
            got = (
                (self.kind == np.uint8(int(FetchKind.SEQ)))
                & (lines == prev)
            )
            self._intra[offset_bits] = got
        return got

    def writes(self) -> None:
        """Fetches never write; the batch kernel treats None as loads."""
        return None

    def apply_load_store(self, counters) -> None:
        """Fetch streams have no load/store split; nothing to fill."""


def columns_for_stream(stream, disk_stem: Optional[Path] = None):
    """Build the columnar view matching ``stream``'s type."""
    if isinstance(stream, DataTrace):
        return DataColumns(stream, disk_stem)
    if isinstance(stream, FetchStream):
        return FetchColumns(stream, disk_stem)
    raise TypeError(
        f"no columnar representation for {type(stream).__name__}"
    )
