"""Columnar pre-split of one workload's access stream.

Every fast engine starts the same way: vectorize the 32-bit address
arithmetic over the whole trace (cache tag and set index per access,
the narrow-adder MAB key for way-memo controllers, the intra-line mask
for fetch streams) and convert the arrays to plain lists for the
Python replay loop.  That work depends only on the stream and (parts
of) the cache geometry — never on architecture state — so it is
computed here exactly once and shared by every controller replaying
the stream.

Each derived column is cached under the *narrowest* key it actually
depends on:

* ``tags`` and the narrow-adder ``keys`` depend only on
  ``offset_bits + index_bits`` (the tag boundary), so every cache
  geometry with the same boundary — and every MAB size — shares one
  array;
* ``sets`` depends on the full ``(offset_bits, index_bits)`` split;
* fetch ``lines`` depend only on ``offset_bits``.

Two cache levels:

* per-instance memoization — a :class:`DataColumns`/:class:`FetchColumns`
  object computes each derived array (and its list form) once;
* an optional on-disk layer — when constructed with a ``disk_stem``
  (derived from the workload's trace-cache key, so the content digest
  keys the archive), the derived arrays are persisted as **one**
  ``.npz`` archive per stream alongside the trace archives — keyed by
  (stream), not (stream, geometry) — and reloaded instead of
  recomputed.  Writes are atomic and best-effort, mirroring the trace
  cache; unreadable archives are ignored and regenerated.

The tag column is the plain ``addr >> (offset_bits + index_bits)``
split.  For non-bypass accesses the way-memo controllers historically
computed it through the narrow-adder reconstruction
``(base_tag + carry - sign) & tag_mask`` — the two are numerically
identical (that equivalence *is* the paper's Figure 3 datapath), which
the differential and lockstep fuzz suites assert for every
architecture.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.fetch import FetchKind, FetchStream
from repro.sim.trace import DataTrace

#: Version of the on-disk column archive layout; bump to invalidate.
#: v2: one archive per (stream, side) holding dependency-keyed arrays
#: (``tags12``, ``sets5x7``, ...) instead of one file per geometry.
COLUMNS_VERSION = 2

#: Per-process column machinery counters: how many derived arrays were
#: actually computed vs served from a disk archive, and how often the
#: archive file itself was read or rewritten.  Tests assert sweep
#: groups compute their pre-split once per workload, not per geometry.
_STATS: Dict[str, int] = {
    "array_computes": 0,
    "tags_computes": 0,
    "sets_computes": 0,
    "keys_computes": 0,
    "lines_computes": 0,
    "archive_loads": 0,
    "archive_array_hits": 0,
    "archive_saves": 0,
}


def column_stats() -> Dict[str, int]:
    """Snapshot of the per-process column compute/archive counters."""
    return dict(_STATS)


def reset_column_stats() -> None:
    """Zero the column counters (tests)."""
    for key in _STATS:
        _STATS[key] = 0


def _count(key: str, amount: int = 1) -> None:
    _STATS[key] += amount


class SharedPass:
    """The packed results of one shared ``access_fast_batch`` sweep.

    Architectures whose access stream is state-independent all observe
    the *same* per-access (hit, way, eviction) outcomes, so the engine
    runs the batch kernel once and hands every such architecture this
    view of it.  The hit vector and hit count are derived lazily and
    shared too.
    """

    __slots__ = ("packed", "_packed64", "_hit", "_hit_count")

    def __init__(self, packed: List[int]):
        self.packed = packed
        self._packed64: Optional[np.ndarray] = None
        self._hit: Optional[np.ndarray] = None
        self._hit_count: Optional[int] = None

    @property
    def packed64(self) -> np.ndarray:
        """The packed results as an int64 array (computed once)."""
        if self._packed64 is None:
            self._packed64 = np.fromiter(
                self.packed, dtype=np.int64, count=len(self.packed)
            )
        return self._packed64

    @property
    def hit(self) -> np.ndarray:
        """Boolean hit vector (packed bit 0), one entry per access."""
        if self._hit is None:
            self._hit = (self.packed64 & 1) == 1
        return self._hit

    @property
    def hit_count(self) -> int:
        if self._hit_count is None:
            self._hit_count = int(self.hit.sum())
        return self._hit_count

    @property
    def ways(self) -> np.ndarray:
        """Resident way per access (packed bits 1-8)."""
        return (self.packed64 >> 1) & 0xFF


class _ColumnsBase:
    """Shared machinery: dependency-keyed arrays, lists, disk archive."""

    side = ""  # "dcache" | "icache" (set by subclasses)

    def __init__(self, disk_stem: Optional[Path] = None):
        # disk_stem is a path *prefix* (directory + workload trace key);
        # the stream's single archive is "{stem}-cols-v2-{side}.npz".
        self._disk_stem = disk_stem
        self._arrays: Dict[str, np.ndarray] = {}
        self._lists: Dict[str, list] = {}
        self._archive: Optional[Dict[str, np.ndarray]] = None
        self._archive_probed = False

    # -- columns the subclasses must provide ----------------------------

    #: numpy int64 views of the stream (bound in subclass __init__).
    base64: np.ndarray
    disp64: np.ndarray
    addr64: np.ndarray
    n: int

    # -- array computations (each keyed by what it depends on) -----------

    def _compute_tags(self, low_bits: int) -> np.ndarray:
        return self.addr64 >> low_bits

    def _compute_sets(self, offset_bits: int, index_bits: int) -> np.ndarray:
        return (self.addr64 >> offset_bits) & ((1 << index_bits) - 1)

    def _compute_keys(self, low_bits: int) -> np.ndarray:
        # Narrow-adder datapath (paper Figure 3), vectorized: the
        # packed MAB key per access, -1 marking a large-displacement
        # bypass.  Depends only on (offset_bits + index_bits), i.e. on
        # the tag boundary — every MAB size and every cache geometry
        # with the same boundary shares one key column.
        low_mask = (1 << low_bits) - 1
        upper_mask = (1 << (32 - low_bits)) - 1
        base = self.base64
        d32 = self.disp64 & 0xFFFFFFFF
        raw = (base & low_mask) + (d32 & low_mask)
        upper = d32 >> low_bits
        sign = np.where(upper == upper_mask, 1, 0)
        bypass = (upper != 0) & (upper != upper_mask)
        base_tag = base >> low_bits
        carry = raw >> low_bits
        return np.where(
            bypass, -1,
            (base_tag << 2) | (carry << 1) | sign,
        )

    # -- disk archive (one file per stream) ------------------------------

    def _disk_path(self) -> Optional[Path]:
        if self._disk_stem is None:
            return None
        return self._disk_stem.parent / (
            f"{self._disk_stem.name}-cols-v{COLUMNS_VERSION}-{self.side}.npz"
        )

    def _archive_arrays(self) -> Dict[str, np.ndarray]:
        """The on-disk archive's arrays, loaded at most once."""
        if not self._archive_probed:
            self._archive_probed = True
            self._archive = {}
            path = self._disk_path()
            if path is not None and path.is_file():
                try:
                    with np.load(str(path)) as archive:
                        self._archive = {
                            name: archive[name] for name in archive.files
                        }
                    _count("archive_loads")
                except Exception:
                    self._archive = {}  # unreadable: regenerate
        return self._archive or {}

    def _save_disk(self) -> None:
        """Rewrite the stream's archive with every known array."""
        path = self._disk_path()
        if path is None:
            return
        arrays = dict(self._archive_arrays())
        arrays.update(self._arrays)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp.npz"
            )
            os.close(fd)
            try:
                np.savez(tmp, **arrays)
                # numpy appends .npz to names missing it; mkstemp's
                # suffix already ends with it, so tmp is the real file.
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            self._archive = arrays
            _count("archive_saves")
        except OSError:
            pass  # caching is best-effort only

    def _array(
        self, name: str, stat: str, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """One derived array: memory, then archive, then compute."""
        got = self._arrays.get(name)
        if got is not None:
            return got
        archived = self._archive_arrays().get(name)
        if archived is not None and len(archived) == self.n:
            _count("archive_array_hits")
            self._arrays[name] = archived
            return archived
        got = compute()
        _count("array_computes")
        _count(stat)
        self._arrays[name] = got
        self._save_disk()
        return got

    def _list(self, name: str, array: Callable[[], np.ndarray]) -> list:
        got = self._lists.get(name)
        if got is None:
            got = array().tolist()
            self._lists[name] = got
        return got

    # -- public columns --------------------------------------------------

    def tags_array(self, offset_bits: int, index_bits: int) -> np.ndarray:
        low = offset_bits + index_bits
        return self._array(
            f"tags{low}", "tags_computes",
            lambda: self._compute_tags(low),
        )

    def sets_array(self, offset_bits: int, index_bits: int) -> np.ndarray:
        return self._array(
            f"sets{offset_bits}x{index_bits}", "sets_computes",
            lambda: self._compute_sets(offset_bits, index_bits),
        )

    def keys_array(self, offset_bits: int, index_bits: int) -> np.ndarray:
        low = offset_bits + index_bits
        return self._array(
            f"keys{low}", "keys_computes",
            lambda: self._compute_keys(low),
        )

    def cache_streams(
        self, offset_bits: int, index_bits: int
    ) -> Tuple[List[int], List[int]]:
        """The pre-split (tags, sets) lists for one cache geometry."""
        low = offset_bits + index_bits
        return (
            self._list(
                f"tags{low}",
                lambda: self.tags_array(offset_bits, index_bits),
            ),
            self._list(
                f"sets{offset_bits}x{index_bits}",
                lambda: self.sets_array(offset_bits, index_bits),
            ),
        )

    def cache_arrays(
        self, offset_bits: int, index_bits: int
    ) -> Dict[str, np.ndarray]:
        """The per-geometry numpy columns (tags/sets/keys).

        The array forms of :meth:`cache_streams` for vectorized
        replay derivations; treat the arrays as read-only — they are
        shared across every controller replaying the stream.
        """
        return {
            "tags": self.tags_array(offset_bits, index_bits),
            "sets": self.sets_array(offset_bits, index_bits),
            "keys": self.keys_array(offset_bits, index_bits),
        }

    def mab_keys(self, offset_bits: int, index_bits: int) -> List[int]:
        """Packed narrow-adder MAB keys (-1 == bypass) per access."""
        low = offset_bits + index_bits
        return self._list(
            f"keys{low}",
            lambda: self.keys_array(offset_bits, index_bits),
        )


class DataColumns(_ColumnsBase):
    """Columnar view of a :class:`~repro.sim.trace.DataTrace`."""

    side = "dcache"

    def __init__(self, trace: DataTrace, disk_stem: Optional[Path] = None):
        super().__init__(disk_stem)
        self.n = len(trace.base)
        self.base64 = trace.base.astype(np.int64)
        self.disp64 = trace.disp.astype(np.int64)
        self.addr64 = (self.base64 + self.disp64) & 0xFFFFFFFF
        self.store_mask = trace.store
        self._stores: Optional[List[bool]] = None
        self._store_addrs: Optional[List[int]] = None
        self._num_stores: Optional[int] = None

    def writes(self) -> List[bool]:
        """The store flags, as the batch kernel's ``writes`` stream."""
        if self._stores is None:
            self._stores = self.store_mask.tolist()
        return self._stores

    def addrs(self) -> List[int]:
        if "addrs" not in self._lists:
            self._lists["addrs"] = self.addr64.tolist()
        return self._lists["addrs"]

    def store_addrs(self) -> List[int]:
        """Effective addresses of the store sub-stream, in order."""
        if self._store_addrs is None:
            self._store_addrs = self.addr64[self.store_mask].tolist()
        return self._store_addrs

    @property
    def num_stores(self) -> int:
        if self._num_stores is None:
            self._num_stores = int(self.store_mask.sum())
        return self._num_stores

    def apply_load_store(self, counters) -> None:
        """Fill the loads/stores split on a counters object."""
        counters.stores = self.num_stores
        counters.loads = counters.accesses - counters.stores


class FetchColumns(_ColumnsBase):
    """Columnar view of a :class:`~repro.sim.fetch.FetchStream`."""

    side = "icache"

    def __init__(self, fetch: FetchStream, disk_stem: Optional[Path] = None):
        super().__init__(disk_stem)
        self.n = len(fetch)
        self.base64 = fetch.base.astype(np.int64)
        self.disp64 = fetch.disp.astype(np.int64)
        self.addr64 = fetch.addr.astype(np.int64)
        self.kind = fetch.kind
        self._kinds: Optional[List[int]] = None
        self._intra: Dict[int, np.ndarray] = {}

    def lines_array(self, offset_bits: int, index_bits: int) -> np.ndarray:
        """Line numbers (``addr >> offset_bits``) per access.

        Depends only on ``offset_bits`` (lines are line_bytes wide);
        ``index_bits`` is accepted for signature symmetry.
        """
        return self._array(
            f"lines{offset_bits}", "lines_computes",
            lambda: self.addr64 >> offset_bits,
        )

    def cache_arrays(
        self, offset_bits: int, index_bits: int
    ) -> Dict[str, np.ndarray]:
        arrays = super().cache_arrays(offset_bits, index_bits)
        arrays["lines"] = self.lines_array(offset_bits, index_bits)
        return arrays

    def kinds(self) -> List[int]:
        if self._kinds is None:
            self._kinds = self.kind.tolist()
        return self._kinds

    def lines(self, offset_bits: int, index_bits: int) -> List[int]:
        """Line numbers (``addr >> offset_bits``) per access."""
        return self._list(
            f"lines{offset_bits}",
            lambda: self.lines_array(offset_bits, index_bits),
        )

    def intra_mask(self, offset_bits: int, index_bits: int) -> np.ndarray:
        """Boolean mask of intra-line sequential fetches.

        True where the fetch is sequential *and* stays within the
        previous access's cache line — a property of the stream alone,
        shared by the Panwar baseline and anything else that elides
        work on intra-line flow.
        """
        got = self._intra.get(offset_bits)
        if got is None:
            lines = self.lines_array(offset_bits, index_bits)
            prev = np.concatenate((np.int64([-1]), lines[:-1]))
            got = (
                (self.kind == np.uint8(int(FetchKind.SEQ)))
                & (lines == prev)
            )
            self._intra[offset_bits] = got
        return got

    def writes(self) -> None:
        """Fetches never write; the batch kernel treats None as loads."""
        return None

    def apply_load_store(self, counters) -> None:
        """Fetch streams have no load/store split; nothing to fill."""


def columns_for_stream(stream, disk_stem: Optional[Path] = None):
    """Build the columnar view matching ``stream``'s type."""
    if isinstance(stream, DataTrace):
        return DataColumns(stream, disk_stem)
    if isinstance(stream, FetchStream):
        return FetchColumns(stream, disk_stem)
    raise TypeError(
        f"no columnar representation for {type(stream).__name__}"
    )
