"""Process-wide metrics registry (counters, gauges, histograms).

One registry per process holds every instrument, keyed by metric name
plus an optional frozen label set.  The design constraints, in order:

* **cheap on hot paths** — an increment is one env check, one lock
  acquisition and one addition; with ``REPRO_TELEMETRY=0`` every
  mutating call returns after the env check, so the simulation loops
  pay (almost) nothing for being observable;
* **non-perturbing** — instruments only ever *read* the values they
  are handed; no result byte depends on the registry (the
  ``--telemetry`` determinism leg proves it);
* **mergeable** — :meth:`MetricsRegistry.snapshot` is a plain JSON
  document and :meth:`MetricsRegistry.merge` folds one into another:
  worker subprocesses ship their registry back over the existing Pipe
  result channel and the service aggregates, so ``/v1/metrics`` shows
  fleet-wide traffic, not just the parent's;
* **zero dependencies** — :func:`render_prometheus` emits the
  Prometheus text exposition format (version 0.0.4) from the snapshot
  alone.

Histograms use **fixed bucket edges** declared at creation (cumulative
``le`` semantics on render, as Prometheus expects), so merged
histograms from different processes are always bucket-compatible.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Environment variable disabling telemetry (``0``/``off``/``false``).
TELEMETRY_ENV = "REPRO_TELEMETRY"

_DISABLED_TOKENS = ("", "0", "off", "no", "false", "none", "disable")

#: Default bucket edges (seconds) for wall-clock histograms.
DURATION_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Default bucket edges for small cardinalities (batch/group sizes).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

LabelPairs = Tuple[Tuple[str, str], ...]


def telemetry_enabled() -> bool:
    """Whether telemetry is on (default: yes; ``REPRO_TELEMETRY=0`` off)."""
    env = os.environ.get(TELEMETRY_ENV)
    if env is None:
        return True
    return env.strip().lower() not in _DISABLED_TOKENS


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        if not telemetry_enabled():
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelPairs):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not telemetry_enabled():
            return
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution (cumulative ``le`` on render).

    ``edges`` are the inclusive upper bounds of the finite buckets, in
    strictly increasing order; observations above the last edge land
    in the implicit ``+Inf`` bucket.  Fixing the edges at creation is
    what makes cross-process merges well defined.
    """

    __slots__ = ("name", "labels", "edges", "counts", "sum", "count", "_lock")

    def __init__(
        self, name: str, labels: LabelPairs, edges: Sequence[float]
    ):
        edges = tuple(float(edge) for edge in edges)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing bucket "
                f"edges, got {edges}"
            )
        self.name = name
        self.labels = labels
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)   # finite buckets + Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not telemetry_enabled():
            return
        index = bisect_left(self.edges, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class MetricsRegistry:
    """All instruments of one process, by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._edges: Dict[str, Tuple[float, ...]] = {}

    # -- creation ------------------------------------------------------

    def _get(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Optional[Mapping[str, str]],
        edges: Optional[Sequence[float]] = None,
    ):
        frozen = _freeze_labels(labels)
        with self._lock:
            declared = self._types.get(name)
            if declared is not None and declared != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {declared}, "
                    f"cannot re-register as {kind}"
                )
            metric = self._metrics.get((name, frozen))
            if metric is None:
                if kind == "counter":
                    metric = Counter(name, frozen)
                elif kind == "gauge":
                    metric = Gauge(name, frozen)
                else:
                    shared = self._edges.get(name)
                    metric = Histogram(
                        name, frozen, shared if shared else edges
                    )
                    self._edges.setdefault(name, metric.edges)
                self._metrics[(name, frozen)] = metric
                self._types[name] = kind
                if help_text:
                    self._help.setdefault(name, help_text)
            return metric

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        return self._get("counter", name, help_text, labels)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        return self._get("gauge", name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DURATION_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        return self._get("histogram", name, help_text, labels, buckets)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The registry as one JSON-able document (for Pipe transfer)."""
        with self._lock:
            metrics = list(self._metrics.values())
            help_map = dict(self._help)
            types = dict(self._types)
        entries: List[Dict[str, Any]] = []
        for metric in metrics:
            entry: Dict[str, Any] = {
                "name": metric.name,
                "type": types[metric.name],
                "labels": list(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry.update(
                    edges=list(metric.edges),
                    counts=list(metric.counts),
                    sum=metric.sum,
                    count=metric.count,
                )
            else:
                entry["value"] = metric.value
            entries.append(entry)
        return {"metrics": entries, "help": help_map}

    def merge(self, document: Optional[Mapping[str, Any]]) -> None:
        """Fold one :meth:`snapshot` into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins — a merged gauge is the child's final
        observation).  Histograms with mismatched edges are skipped
        rather than corrupted (only possible across code versions).
        """
        if not document:
            return
        help_map = document.get("help", {})
        for entry in document.get("metrics", []):
            name = entry.get("name")
            kind = entry.get("type")
            labels = {k: v for k, v in entry.get("labels", [])}
            text = help_map.get(name, "")
            try:
                if kind == "counter":
                    self.counter(name, text, labels).inc(
                        float(entry.get("value", 0.0))
                    )
                elif kind == "gauge":
                    self.gauge(name, text, labels).set(
                        float(entry.get("value", 0.0))
                    )
                elif kind == "histogram":
                    edges = tuple(
                        float(e) for e in entry.get("edges", ())
                    )
                    metric = self.histogram(name, text, edges, labels)
                    if metric.edges != edges:
                        continue
                    counts = entry.get("counts", [])
                    if len(counts) != len(metric.counts):
                        continue
                    with metric._lock:
                        for index, add in enumerate(counts):
                            metric.counts[index] += int(add)
                        metric.sum += float(entry.get("sum", 0.0))
                        metric.count += int(entry.get("count", 0))
            except ValueError:
                continue   # type conflict with a local metric: skip

    def reset(self) -> None:
        """Drop every instrument (tests)."""
        with self._lock:
            self._metrics.clear()
            self._types.clear()
            self._help.clear()
            self._edges.clear()

    # -- rendering -----------------------------------------------------

    def render(
        self, extra: Optional[Iterable[Tuple[str, str, str, float, Optional[Mapping[str, str]]]]] = None,
    ) -> str:
        """Prometheus text exposition (0.0.4) of the whole registry.

        ``extra`` appends computed metrics — ``(name, type, help,
        value, labels)`` tuples — rendered with the same formatting;
        the service uses this for live gauges (queue depth, store
        shape) that are cheaper to read at scrape time than to track.
        """
        snap = self.snapshot()
        by_name: Dict[str, List[Dict[str, Any]]] = {}
        types: Dict[str, str] = {}
        for entry in snap["metrics"]:
            by_name.setdefault(entry["name"], []).append(entry)
            types[entry["name"]] = entry["type"]
        help_map = dict(snap["help"])
        for name, kind, text, value, labels in (extra or ()):
            by_name.setdefault(name, []).append({
                "name": name, "type": kind,
                "labels": sorted((labels or {}).items()), "value": value,
            })
            types.setdefault(name, kind)
            if text:
                help_map.setdefault(name, text)
        lines: List[str] = []
        for name in sorted(by_name):
            if help_map.get(name):
                lines.append(f"# HELP {name} {help_map[name]}")
            lines.append(f"# TYPE {name} {types[name]}")
            for entry in sorted(
                by_name[name], key=lambda e: e["labels"]
            ):
                if entry["type"] == "histogram":
                    lines.extend(_render_histogram(entry))
                else:
                    lines.append(
                        f"{name}{_label_text(entry['labels'])} "
                        f"{_format_value(entry['value'])}"
                    )
        return "\n".join(lines) + "\n"


def _label_text(
    pairs: Sequence[Tuple[str, str]], extra: Optional[str] = None
) -> str:
    parts = [f'{key}="{_escape(value)}"' for key, value in pairs]
    if extra is not None:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _format_edge(edge: float) -> str:
    return str(int(edge)) if float(edge).is_integer() else repr(edge)


def _render_histogram(entry: Mapping[str, Any]) -> List[str]:
    name = entry["name"]
    labels = entry["labels"]
    lines = []
    cumulative = 0
    for edge, count in zip(entry["edges"], entry["counts"]):
        cumulative += count
        le = 'le="' + _format_edge(edge) + '"'
        lines.append(
            f"{name}_bucket{_label_text(labels, le)} {cumulative}"
        )
    inf = 'le="+Inf"'
    lines.append(
        f"{name}_bucket{_label_text(labels, inf)} {entry['count']}"
    )
    lines.append(
        f"{name}_sum{_label_text(labels)} "
        f"{_format_value(entry['sum'])}"
    )
    lines.append(f"{name}_count{_label_text(labels)} {entry['count']}")
    return lines


# ----------------------------------------------------------------------
# process-wide default registry
# ----------------------------------------------------------------------

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def counter(
    name: str, help_text: str = "",
    labels: Optional[Mapping[str, str]] = None,
) -> Counter:
    return _REGISTRY.counter(name, help_text, labels)


def gauge(
    name: str, help_text: str = "",
    labels: Optional[Mapping[str, str]] = None,
) -> Gauge:
    return _REGISTRY.gauge(name, help_text, labels)


def histogram(
    name: str, help_text: str = "",
    buckets: Sequence[float] = DURATION_BUCKETS,
    labels: Optional[Mapping[str, str]] = None,
) -> Histogram:
    return _REGISTRY.histogram(name, help_text, buckets, labels)


def snapshot() -> Dict[str, Any]:
    return _REGISTRY.snapshot()


def merge_snapshot(document: Optional[Mapping[str, Any]]) -> None:
    _REGISTRY.merge(document)


def render_prometheus(extra=None) -> str:
    return _REGISTRY.render(extra)
